#!/usr/bin/env python
"""Isolated GO-enrichment (classify-stage) benchmark.

Times the scoring of a realistic cluster workload — the original network's
MCODE clusters plus the clusters of one chordal filter run, exactly what the
workflow's ``classify`` stage scores — under the two enrichment
implementations and writes the measured trajectory to
``BENCH_enrichment.json``:

* ``label`` — the retained reference path (``engine="reference"``): one
  Python double loop over the endpoints' GO term pairs per edge, scalar
  ``deepest_common_parent`` / ``term_distance`` calls;
* ``batched`` — the index-native engine: interned ``int64`` term ids, one
  concatenated pass over all cluster edges, distinct packed term pairs scored
  by vectorised sorted-ancestor intersection + multi-source bitset frontier
  BFS and memoised in the packed-key pair table, per-edge winners by segment
  max, per-cluster aggregates by segment reductions.

In the full (non ``--quick``) grid the batched engine is additionally timed
under its parallel pair backends (``thread``, ``process-shm``) as
informational rows — the term-space arrays ship once through a
``SharedArena``.

Every cell asserts the two implementations produce byte-identical score
vectors (``score_digest``: sha256 over per-cluster AEES / max score /
max depth / dominant term / edge counts).

Usage::

    PYTHONPATH=src python benchmarks/bench_enrichment.py                 # full grid
    PYTHONPATH=src python benchmarks/bench_enrichment.py --quick         # CI grid
    PYTHONPATH=src python benchmarks/bench_enrichment.py --quick \
        --check BENCH_enrichment.json --threshold 0.25                   # CI gate

JSON schema (``bench_enrichment/v1``)::

    {
      "schema": "bench_enrichment/v1",
      "label": "<variant being measured>",
      "quick": bool, "python": str, "platform": str, "created": str,
      "dataset": "CRE",
      "runs": [ {"dataset", "scale", "scale_factor", "impl", "backend",
                 "n_clusters", "n_edges", "distinct_pairs", "repeats",
                 "seconds", "stages": {...}, "score_digest"} ],
      "speedup": {"CRE/<scale>":
                  {"label_seconds", "batched_seconds", "speedup",
                   "scores_match"}}
    }

``--check`` re-measures the smallest grid and gates on the *speedup ratio*
at the largest shared scale: the fresh ``batched_seconds / label_seconds``
ratio is compared against the committed file's ratio for the same cell, and
the run fails when it regresses more than ``--threshold`` (default 25%).
Both implementations run in the same process on the same machine, so
hardware speed cancels exactly — the same normalization as the other bench
gates.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Optional

from repro.clustering import mcode_clusters
from repro.core.sampling import apply_filter
from repro.expression import make_study
from repro.expression.correlation import (
    correlated_pair_arrays,
    csr_from_pair_arrays,
    network_from_pair_arrays,
)
from repro.ontology import EnrichmentScorer
from repro.ontology.generator import make_study_ontology

SCHEMA = "bench_enrichment/v1"

DATASET = "CRE"
#: Fractions of the paper-sized CRE study; ``large`` is the scale the
#: ISSUE's >=5x classify acceptance criterion is measured at.
SCALES: dict[str, float] = {
    "tiny": 0.02,
    "small": 0.05,
    "medium": 0.10,
    "large": 0.15,
}
SCALE_ORDER = ["tiny", "small", "medium", "large"]

FILTER = dict(method="chordal", ordering="natural", n_partitions=4)

#: Informational parallel backends measured in the full grid.
EXTRA_BACKENDS = ["thread", "process-shm"]


def build_workload(scale_factor: float) -> dict[str, Any]:
    """The classify-stage scoring workload of one cell (built once, untimed).

    Original-network clusters plus one chordal filter run's clusters — the
    same subgraph population ``classify_matches`` scores in the workflow —
    and a fresh (DAG, annotations) pair.
    """
    study = make_study(DATASET, scale=scale_factor)
    ii, jj, rho = correlated_pair_arrays(study.matrix)
    network = network_from_pair_arrays(study.matrix, ii, jj, rho, include_all_genes=False)
    csr = csr_from_pair_arrays(study.matrix, ii, jj, include_all_genes=False)
    original = mcode_clusters(network, source=f"{study.name}/original", csr=csr)
    result = apply_filter(network, **FILTER)
    filtered = mcode_clusters(result.graph, source=f"{study.name}/filtered")
    graphs = [c.subgraph for c in original] + [c.subgraph for c in filtered]
    return {"study": study, "graphs": graphs}


def score_digest(scores: Any) -> str:
    """Exact digest of the per-cluster score vectors."""
    payload = {
        "aees": [float(v).hex() for v in scores.aees],
        "max_score": [float(v).hex() for v in scores.max_score],
        "max_depth": [int(v) for v in scores.max_depth],
        "n_edges": [int(v) for v in scores.n_edges],
        "dominant": scores.dominant,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def run_impl(workload: dict[str, Any], impl: str, backend: str) -> dict[str, Any]:
    """One timed scoring pass; a fresh ontology + scorer per call so index
    construction and pair-table fills are part of what is measured."""
    stages: dict[str, float] = {}
    t = time.perf_counter()

    def lap(name: str) -> None:
        nonlocal t
        now = time.perf_counter()
        stages[name] = round(now - t, 6)
        t = now

    dag, annotations = make_study_ontology(workload["study"], depth=8, branching=3)
    lap("ontology")
    engine = "reference" if impl == "label" else "batched"
    scorer = EnrichmentScorer(dag, annotations, engine=engine, backend=backend)
    if engine == "batched":
        # Interning is the engine's one-off cost; lap it separately.
        dag.term_index()
        annotations.indexed()
        lap("interning")
    scores = scorer.score_cluster_graphs(workload["graphs"])
    lap("score")
    digest = score_digest(scores)
    lap("digest")
    distinct = scorer.pair_table_size
    scorer.close()
    return {
        "stages": stages,
        "digest": digest,
        "n_clusters": len(workload["graphs"]),
        "n_edges": int(scores.n_edges.sum()),
        "distinct_pairs": distinct,
        # The timed portion excludes the (identical) ontology generation.
        "seconds": sum(v for k, v in stages.items() if k != "ontology"),
    }


def run_grid(quick: bool, verbose: bool = True) -> list[dict[str, Any]]:
    scales = ["tiny", "small"] if quick else SCALE_ORDER
    runs: list[dict[str, Any]] = []
    for scale in scales:
        factor = SCALES[scale]
        workload = build_workload(factor)
        cells = [("label", "serial"), ("batched", "serial")]
        if not quick:
            cells += [("batched", b) for b in EXTRA_BACKENDS]
        for impl, backend in cells:
            # The batched leg is tens of milliseconds — best-of-3 keeps the
            # gated ratio stable on noisy CI runners; the label leg is
            # seconds, so one repeat suffices at the big scales.
            if impl == "batched":
                repeats = 3
            else:
                repeats = 2 if scale in ("tiny", "small") else 1
            best: Optional[dict[str, Any]] = None
            for _ in range(repeats):
                out = run_impl(workload, impl, backend)
                if best is None or out["seconds"] < best["seconds"]:
                    best = out
            assert best is not None
            row = {
                "dataset": DATASET,
                "scale": scale,
                "scale_factor": factor,
                "impl": impl,
                "backend": backend,
                "n_clusters": best["n_clusters"],
                "n_edges": best["n_edges"],
                "distinct_pairs": best["distinct_pairs"],
                "repeats": repeats,
                "seconds": round(best["seconds"], 6),
                "stages": best["stages"],
                "score_digest": best["digest"],
            }
            runs.append(row)
            if verbose:
                print(
                    f"{DATASET:>4} {scale:>6} {impl:>8}/{backend:<11} "
                    f"{best['seconds']:8.3f}s  clusters={row['n_clusters']} "
                    f"edges={row['n_edges']} pairs={row['distinct_pairs']} "
                    f"digest={row['score_digest']}",
                    flush=True,
                )
    return runs


def _speedup_table(runs: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    by_cell: dict[str, dict[str, dict[str, Any]]] = {}
    for row in runs:
        if row["backend"] != "serial":
            continue
        by_cell.setdefault(f"{row['dataset']}/{row['scale']}", {})[row["impl"]] = row
    table: dict[str, dict[str, Any]] = {}
    for cell, impls in by_cell.items():
        if "label" not in impls or "batched" not in impls:
            continue
        lab, fast = impls["label"], impls["batched"]
        table[cell] = {
            "label_seconds": lab["seconds"],
            "batched_seconds": fast["seconds"],
            "speedup": round(lab["seconds"] / fast["seconds"], 3) if fast["seconds"] else None,
            "scores_match": lab["score_digest"] == fast["score_digest"],
        }
    return table


def _headline_cell(table: dict[str, dict[str, Any]]) -> Optional[str]:
    """The acceptance cell: the largest measured scale with both impls."""
    for scale in reversed(SCALE_ORDER):
        cell = f"{DATASET}/{scale}"
        if cell in table:
            return cell
    return None


def check_regression(
    runs: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate on the committed baseline, normalized for hardware speed."""
    fresh = _speedup_table(runs)
    for cell, entry in fresh.items():
        if not entry["scores_match"]:
            print(
                f"check: FAIL — {cell}: label and batched score digests differ",
                file=sys.stderr,
            )
            return 1
    committed_table = committed.get("speedup", {})
    shared = {c: fresh[c] for c in fresh if c in committed_table}
    headline = _headline_cell(shared)
    if headline is None:
        print("check: no shared cell between fresh and committed runs", file=sys.stderr)
        return 2
    old = committed_table[headline]
    new = shared[headline]
    old_ratio = old["batched_seconds"] / old["label_seconds"]
    new_ratio = new["batched_seconds"] / new["label_seconds"]
    rel = new_ratio / old_ratio if old_ratio else float("inf")
    print(
        f"check: {headline}: committed batched {old['batched_seconds']:.3f}s / label "
        f"{old['label_seconds']:.3f}s, fresh batched {new['batched_seconds']:.3f}s / "
        f"label {new['label_seconds']:.3f}s (absolute, informational)"
    )
    print(
        f"check: batched/label ratio: committed {old_ratio:.4f}, fresh {new_ratio:.4f}, "
        f"relative {rel:.2f}"
    )
    if rel > 1.0 + threshold:
        print(
            f"check: FAIL — batched enrichment regressed "
            f"{(rel - 1.0) * 100:.0f}% vs the reference baseline "
            f"(> {threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("check: OK")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI grid (tiny + small scales)")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_enrichment.json, or "
        "bench_enrichment_fresh.json when --check is given so the committed "
        "baseline is never clobbered by a check run)",
    )
    parser.add_argument("--label", default="batched-enrichment-engine", help="label for this variant")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare the fresh headline batched/label ratio against a committed bench file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_enrichment_fresh.json" if args.check else "BENCH_enrichment.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    runs = run_grid(args.quick)
    table = _speedup_table(runs)
    headline = _headline_cell(table)
    if headline:
        entry = table[headline]
        print(
            f"headline {headline}: {entry['speedup']}x "
            f"(scores_match={entry['scores_match']})"
        )

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "dataset": DATASET,
        "filter": FILTER,
        "runs": runs,
        "speedup": table,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    if committed is not None:
        return check_regression(runs, committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
