#!/usr/bin/env python
"""End-to-end analysis-workflow benchmark.

Times the paper's full analysis sequence — expression matrix → thresholded
correlation network → sampling filter → MCODE clusters → overlap matching →
AEES quadrant classification — under two implementations of the analysis
stage and writes the measured trajectory to ``BENCH_workflow.json``:

* ``label`` — the retained seed path: per-pair tile extraction +
  ``Graph.add_edge`` network build, ``reference_mcode_clusters``,
  ``reference_match_clusters``, per-pair early-exit ontology BFS
  (``GODag.reference_term_distance``), the reference per-edge enrichment
  scorer (``engine="reference"``) and one enrichment pass per overlap
  criterion;
* ``csr`` — the index-native path: vectorised tile extraction straight into
  CSR edge arrays, CSR MCODE, membership-matrix overlap matching, and the
  batched enrichment engine (interned term ids, packed-pair memo table,
  segment reductions — see ``benchmarks/bench_enrichment.py`` for the
  isolated classify measurement) with one shared pass per filter run.

``bench_pipeline.py`` times the sampling filter in isolation; this harness
times everything *around* it, which is where the workflow spent most of its
time after PR 2.  Every cell runs both implementations on the same study and
asserts their cluster member sets, scores and quadrant counts are identical
(the ``clusters_match`` flag in the JSON).

Usage::

    PYTHONPATH=src python benchmarks/bench_workflow.py                 # full grid
    PYTHONPATH=src python benchmarks/bench_workflow.py --quick         # CI grid
    PYTHONPATH=src python benchmarks/bench_workflow.py --quick \
        --check BENCH_workflow.json --threshold 0.25                   # CI gate

JSON schema (``bench_workflow/v1``)::

    {
      "schema": "bench_workflow/v1",
      "label": "<variant being measured>",
      "quick": bool, "python": str, "platform": str, "created": str,
      "dataset": "CRE",
      "filter": {"method", "ordering", "n_partitions"},
      "runs": [ {"dataset", "scale", "scale_factor", "impl", "n_vertices",
                 "n_edges", "original_clusters", "filtered_clusters",
                 "repeats", "seconds", "stages": {...}, "clusters_digest"} ],
      "speedup": {"CRE/<scale>":
                  {"label_seconds", "csr_seconds", "speedup", "clusters_match"}}
    }

``--check`` re-measures the smallest grid and gates on the *speedup ratio* at
the largest shared scale: the fresh ``csr_seconds / label_seconds`` ratio is
compared against the committed file's ratio for the same cell, and the run
fails when it regresses more than ``--threshold`` (default 25%).  Both
implementations are measured in the same process on the same machine, so
hardware speed cancels exactly — the same normalization idea as
``bench_pipeline.py --check``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Callable, Optional

import numpy as np

from repro.clustering import (
    mcode_clusters,
    match_and_lost_clusters,
    found_clusters,
    reference_lost_clusters,
    reference_match_clusters,
    reference_mcode_clusters,
)
from repro.clustering.evaluation import classify_matches, quadrant_counts
from repro.core.sampling import apply_filter
from repro.expression import make_study
from repro.expression.correlation import (
    CorrelationThreshold,
    correlated_pair_arrays,
    csr_from_pair_arrays,
    network_from_pair_arrays,
)
from repro.graph import Graph
from repro.ontology.enrichment import EnrichmentScorer
from repro.ontology.generator import make_study_ontology

SCHEMA = "bench_workflow/v1"

DATASET = "CRE"
#: Benchmark scales: fractions of the paper-sized CRE study.  ``large`` is
#: the scale the ISSUE's >=2x acceptance criterion is measured at.
SCALES: dict[str, float] = {
    "tiny": 0.02,
    "small": 0.05,
    "medium": 0.10,
    "large": 0.15,
}
SCALE_ORDER = ["tiny", "small", "medium", "large"]

FILTER = dict(method="chordal", ordering="natural", n_partitions=4)


class _SeedDistanceDag:
    """GODag proxy forcing the seed per-pair BFS (plus the seed's pair cache).

    The baseline measurement must reflect the pre-index-native ontology cost:
    one early-exit BFS per *pair* of annotation terms, memoised per pair —
    not per source — exactly as the seed ``term_distance`` behaved.
    """

    def __init__(self, dag: Any) -> None:
        self._dag = dag
        self._pair_cache: dict[tuple[str, str], int] = {}

    def __getattr__(self, name: str) -> Any:
        return getattr(self._dag, name)

    def term_distance(self, term_a: str, term_b: str) -> int:
        key = (term_a, term_b) if term_a < term_b else (term_b, term_a)
        hit = self._pair_cache.get(key)
        if hit is None:
            hit = self._dag.reference_term_distance(term_a, term_b)
            self._pair_cache[key] = hit
        return hit


def _seed_pair_extraction(matrix: Any) -> list[tuple[str, str, float]]:
    """The seed per-pair tile loop (pre-vectorisation ``correlated_pairs``)."""
    threshold = CorrelationThreshold()
    std = matrix.standardized()
    n_samples = std.n_samples
    if n_samples < 2 or matrix.n_genes < 2:
        return []
    cutoff = threshold.effective_cutoff(n_samples)
    values = std.values
    genes = matrix.genes
    n = matrix.n_genes
    block_size = 2048
    pairs: list[tuple[str, str, float]] = []
    for bi in range(0, n, block_size):
        rows = values[bi : bi + block_size]
        for bj in range(bi, n, block_size):
            cols = values[bj : bj + block_size]
            corr = rows @ cols.T / n_samples
            mask = corr >= cutoff
            ii, jj = np.nonzero(mask)
            for i, j in zip(ii, jj):
                gi = bi + int(i)
                gj = bj + int(j)
                if gj <= gi:
                    continue
                rho = float(np.clip(corr[i, j], -1.0, 1.0))
                pairs.append((genes[gi], genes[gj], rho))
    return pairs


def _fingerprint(original, filtered, found, lost, node_counts, edge_counts) -> str:
    """Exact digest of cluster member sets, scores, lost/found and quadrants."""
    payload = {
        "original": [
            (sorted(map(str, c.members)), float(c.score).hex()) for c in original
        ],
        "filtered": [
            (sorted(map(str, c.members)), float(c.score).hex()) for c in filtered
        ],
        "found": [sorted(map(str, c.members)) for c in found],
        "lost": [sorted(map(str, c.members)) for c in lost],
        "node_counts": node_counts.as_dict(),
        "edge_counts": edge_counts.as_dict(),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def run_label_workflow(study: Any, dag: Any, annotations: Any) -> dict[str, Any]:
    """One timed pass of the seed (label / dict-graph) analysis stage."""
    stages: dict[str, float] = {}
    t = time.perf_counter()

    def lap(name: str) -> None:
        nonlocal t
        now = time.perf_counter()
        stages[name] = round(now - t, 6)
        t = now

    network = Graph()
    for ga, gb, rho in _seed_pair_extraction(study.matrix):
        network.add_edge(ga, gb, rho=rho)
    lap("network")
    original = reference_mcode_clusters(network, source=f"{study.name}/original")
    lap("cluster_original")
    result = apply_filter(network, **FILTER)
    lap("filter")
    filtered = reference_mcode_clusters(result.graph, source=f"{study.name}/filtered")
    lap("cluster_filtered")
    matches = reference_match_clusters(original, filtered)
    found = found_clusters(matches)
    lost = reference_lost_clusters(original, filtered)
    lap("match")
    # engine="reference" keeps the retained per-edge double loop (the seed
    # enrichment path); the default batched engine would bypass the proxy's
    # seed distance function entirely.
    scorer = EnrichmentScorer(_SeedDistanceDag(dag), annotations, engine="reference")
    scored_node = classify_matches(matches, scorer, overlap_attr="node_overlap")
    scored_edge = classify_matches(matches, scorer, overlap_attr="edge_overlap")
    node_counts = quadrant_counts(scored_node)
    edge_counts = quadrant_counts(scored_edge)
    lap("classify")
    return {
        "stages": stages,
        "network": network,
        "digest": _fingerprint(original, filtered, found, lost, node_counts, edge_counts),
        "original_clusters": len(original),
        "filtered_clusters": len(filtered),
        "found": len(found),
        "lost": len(lost),
    }


def run_csr_workflow(study: Any, dag: Any, annotations: Any) -> dict[str, Any]:
    """One timed pass of the index-native analysis stage."""
    stages: dict[str, float] = {}
    t = time.perf_counter()

    def lap(name: str) -> None:
        nonlocal t
        now = time.perf_counter()
        stages[name] = round(now - t, 6)
        t = now

    ii, jj, rho = correlated_pair_arrays(study.matrix)
    network = network_from_pair_arrays(study.matrix, ii, jj, rho, include_all_genes=False)
    csr = csr_from_pair_arrays(study.matrix, ii, jj, include_all_genes=False)
    lap("network")
    original = mcode_clusters(network, source=f"{study.name}/original", csr=csr)
    lap("cluster_original")
    result = apply_filter(network, **FILTER)
    lap("filter")
    filtered = mcode_clusters(result.graph, source=f"{study.name}/filtered")
    lap("cluster_filtered")
    matches, lost = match_and_lost_clusters(original, filtered)
    found = found_clusters(matches)
    lap("match")
    scorer = EnrichmentScorer(dag, annotations)
    scored_node = classify_matches(matches, scorer, overlap_attr="node_overlap")
    scored_edge = classify_matches(
        matches, scorer, overlap_attr="edge_overlap", aees=[s.aees for s in scored_node]
    )
    node_counts = quadrant_counts(scored_node)
    edge_counts = quadrant_counts(scored_edge)
    lap("classify")
    return {
        "stages": stages,
        "network": network,
        "digest": _fingerprint(original, filtered, found, lost, node_counts, edge_counts),
        "original_clusters": len(original),
        "filtered_clusters": len(filtered),
        "found": len(found),
        "lost": len(lost),
    }


IMPLS: dict[str, Callable[..., dict[str, Any]]] = {
    "label": run_label_workflow,
    "csr": run_csr_workflow,
}


def run_grid(quick: bool, verbose: bool = True) -> list[dict[str, Any]]:
    scales = ["tiny", "small"] if quick else SCALE_ORDER
    runs: list[dict[str, Any]] = []
    for scale in scales:
        factor = SCALES[scale]
        study = make_study(DATASET, scale=factor)
        for impl, fn in IMPLS.items():
            # The label implementation is expensive at the bigger scales;
            # one repeat there keeps the full grid at minutes.
            repeats = 2 if (impl == "csr" or scale in ("tiny", "small")) else 1
            best: Optional[dict[str, Any]] = None
            best_seconds = float("inf")
            for _ in range(repeats):
                # Fresh ontology per repeat: the DAG's distance caches are
                # part of what is being measured.
                dag, annotations = make_study_ontology(study, depth=8, branching=3)
                t0 = time.perf_counter()
                out = fn(study, dag, annotations)
                seconds = time.perf_counter() - t0
                if seconds < best_seconds:
                    best_seconds, best = seconds, out
            assert best is not None
            row = {
                "dataset": DATASET,
                "scale": scale,
                "scale_factor": factor,
                "impl": impl,
                "n_vertices": best["network"].n_vertices,
                "n_edges": best["network"].n_edges,
                "original_clusters": best["original_clusters"],
                "filtered_clusters": best["filtered_clusters"],
                "repeats": repeats,
                "seconds": round(best_seconds, 6),
                "stages": best["stages"],
                "clusters_digest": best["digest"],
            }
            runs.append(row)
            if verbose:
                print(
                    f"{DATASET:>4} {scale:>6} {impl:>6}  {best_seconds:8.3f}s  "
                    f"n={row['n_vertices']} e={row['n_edges']} "
                    f"clusters={row['original_clusters']}/{row['filtered_clusters']} "
                    f"digest={row['clusters_digest']}",
                    flush=True,
                )
    return runs


def _speedup_table(runs: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    by_cell: dict[str, dict[str, dict[str, Any]]] = {}
    for row in runs:
        by_cell.setdefault(f"{row['dataset']}/{row['scale']}", {})[row["impl"]] = row
    table: dict[str, dict[str, Any]] = {}
    for cell, impls in by_cell.items():
        if "label" not in impls or "csr" not in impls:
            continue
        lab, csr = impls["label"], impls["csr"]
        table[cell] = {
            "label_seconds": lab["seconds"],
            "csr_seconds": csr["seconds"],
            "speedup": round(lab["seconds"] / csr["seconds"], 3) if csr["seconds"] else None,
            "clusters_match": lab["clusters_digest"] == csr["clusters_digest"],
        }
    return table


def _headline_cell(table: dict[str, dict[str, Any]]) -> Optional[str]:
    """The acceptance cell: the largest measured scale with both impls."""
    for scale in reversed(SCALE_ORDER):
        cell = f"{DATASET}/{scale}"
        if cell in table:
            return cell
    return None


def check_regression(
    runs: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate on the committed baseline, normalized for hardware speed.

    The gated quantity is the headline cell's ``csr_seconds / label_seconds``
    ratio — both measured in the same fresh run, so machine speed cancels —
    compared against the committed file's ratio for the same cell.  A cell
    whose implementations disagree on cluster output fails outright.
    """
    fresh = _speedup_table(runs)
    for cell, entry in fresh.items():
        if not entry["clusters_match"]:
            print(f"check: FAIL — {cell}: label and csr cluster outputs differ", file=sys.stderr)
            return 1
    committed_table = committed.get("speedup", {})
    shared = {c: fresh[c] for c in fresh if c in committed_table}
    headline = _headline_cell(shared)
    if headline is None:
        print("check: no shared cell between fresh and committed runs", file=sys.stderr)
        return 2
    old = committed_table[headline]
    new = shared[headline]
    old_ratio = old["csr_seconds"] / old["label_seconds"]
    new_ratio = new["csr_seconds"] / new["label_seconds"]
    rel = new_ratio / old_ratio if old_ratio else float("inf")
    print(
        f"check: {headline}: committed csr {old['csr_seconds']:.3f}s / label "
        f"{old['label_seconds']:.3f}s, fresh csr {new['csr_seconds']:.3f}s / "
        f"label {new['label_seconds']:.3f}s (absolute, informational)"
    )
    print(
        f"check: csr/label ratio: committed {old_ratio:.3f}, fresh {new_ratio:.3f}, "
        f"relative {rel:.2f}"
    )
    if rel > 1.0 + threshold:
        print(
            f"check: FAIL — index-native workflow regressed "
            f"{(rel - 1.0) * 100:.0f}% vs the label baseline "
            f"(> {threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("check: OK")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI grid (tiny + small scales)")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_workflow.json, or "
        "bench_workflow_fresh.json when --check is given so the committed "
        "baseline is never clobbered by a check run)",
    )
    parser.add_argument("--label", default="index-native-analysis", help="label for this variant")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare the fresh headline csr/label ratio against a committed bench file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_workflow_fresh.json" if args.check else "BENCH_workflow.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    runs = run_grid(args.quick)
    table = _speedup_table(runs)
    headline = _headline_cell(table)
    if headline:
        entry = table[headline]
        print(
            f"headline {headline}: {entry['speedup']}x "
            f"(clusters_match={entry['clusters_match']})"
        )

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "dataset": DATASET,
        "filter": FILTER,
        "runs": runs,
        "speedup": table,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    if committed is not None:
        return check_regression(runs, committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
