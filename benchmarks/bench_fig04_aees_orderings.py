"""Figure 4 — per-cluster AEES across vertex orderings for YNG and MID.

Paper claim: the chordal filter applied under the four orderings (NO, HD, LD,
RCM) produces cluster sets whose enrichment scores are essentially the same as
each other (H0b), and the YNG/MID datasets — pre-filtered to differentially
expressed genes — contain only a few clusters of real biological relevance.
"""

from __future__ import annotations

from repro.pipeline import fig04_aees_by_ordering, format_table


def test_fig04_aees_by_ordering(benchmark, once):
    out = once(benchmark, fig04_aees_by_ordering)
    rows = out["rows"]
    means = out["per_network_mean"]

    print()
    print(format_table(rows[:40], columns=["dataset", "network", "cluster", "aees"],
                       title="Figure 4 (excerpt): per-cluster AEES (YNG / MID)"))
    print()
    print(format_table(
        [{"network": k, "mean_aees": v} for k, v in sorted(means.items())],
        title="Figure 4: mean AEES per network",
    ))

    # qualitative shape: every ordering produced clusters, and the filtered
    # means stay within a small band of each other (ordering robustness, H0b)
    filtered = {k: v for k, v in means.items() if not k.endswith("ORIG")}
    assert filtered
    values = list(filtered.values())
    assert max(values) - min(values) < 4.0
