#!/usr/bin/env python
"""Execution-backend benchmark: serial vs thread vs process vs process-shm.

Times the parallel chordal samplers under every execution backend of
:func:`repro.parallel.runner.available_backends` across dataset scales and
partition counts, and writes the measured trajectory to
``BENCH_parallel.json``.  Where ``bench_pipeline.py`` tracks the end-to-end
filter latency of the index-native pipeline, this harness isolates the
*execution layer* introduced with the shared-memory runtime: the same rank
computation shipped four different ways —

* ``serial``      — in-process loop (the deterministic reference),
* ``thread``      — one GIL-bound thread per rank,
* ``process``     — real processes, rank payloads pickled through pipes,
* ``process-shm`` — real processes, rank payloads as shared-memory arena
  refs (segment names + slice bounds), ranks slicing their own subgraphs
  from zero-copy views.

Because the backends compute identical results, every (sampler, scale, P)
group is also an output-invariance check: the harness fails outright when
``edges_kept`` differs inside a group.

Backends are measured **interleaved** (round-robin per repeat) and the
reported ``seconds`` is the *median* over repeats — on a busy machine the
median of interleaved runs is far more stable than best-of for comparing
two backends whose difference is a few percent.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py                 # full grid
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick         # CI grid
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick \
        --check BENCH_parallel.json --threshold 0.25                   # CI gate

JSON schema (``bench_parallel/v1``)::

    {
      "schema": "bench_parallel/v1",
      "label": str, "quick": bool, "python": str, "platform": str,
      "cpu_count": int, "created": str,
      "runs": [ {"sampler", "scale", "backend", "ordering", "n_partitions",
                 "n_vertices", "n_edges", "repeats", "seconds",
                 "edges_kept"} ],
      "headline": {"cell", "process_seconds", "process_shm_seconds",
                   "shm_speedup", "edges_kept_identical"}
    }

``--check`` re-measures the headline sampler cells and gates on the
*hardware-normalized* ratio: the ``process-shm`` time at the largest shared
scale / P16 divided by the same run's ``serial`` P1 time.  Machine speed
cancels; what remains is the execution layer's overhead on top of one
serial pass — exactly what this runtime optimises.  The check exits
non-zero when that ratio regresses more than ``--threshold`` (default 25%)
against the committed file, or when any backend disagrees on
``edges_kept``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from multiprocessing import cpu_count
from typing import Any, Callable, Optional

from repro.core.parallel_comm import parallel_chordal_comm_filter
from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter
from repro.graph.generators import correlation_like_graph
from repro.parallel.runner import shutdown_worker_pool
from repro.parallel.shm import arena_scope

SCHEMA = "bench_parallel/v1"
ORDERING = "rcm"  # the headline ordering of the pipeline benchmark

#: Benchmark networks, shared with bench_pipeline.py so trajectories align.
SCALES: dict[str, dict[str, int]] = {
    "small": dict(n_modules=4, module_size=10, n_background=200),
    "medium": dict(n_modules=8, module_size=12, n_background=800),
    "large": dict(n_modules=16, module_size=14, n_background=2800),
}
SCALE_ORDER = ["small", "medium", "large"]

NOCOMM_BACKENDS = ["serial", "thread", "process", "process-shm"]


def _filter_call(sampler: str) -> Callable[..., Any]:
    if sampler == "nocomm":
        return lambda g, P, backend: parallel_chordal_nocomm_filter(
            g, P, ordering=ORDERING, backend=backend
        )
    return lambda g, P, backend: parallel_chordal_comm_filter(
        g, P, ordering=ORDERING, backend=backend
    )


def _groups(quick: bool) -> list[dict[str, Any]]:
    """Measurement groups: same (sampler, scale, P), several backends."""
    scales = ["small", "medium"] if quick else SCALE_ORDER
    groups: list[dict[str, Any]] = []
    for scale in scales:
        # The serial P1 base every check run normalizes against.
        groups.append(dict(sampler="nocomm", scale=scale, P=1, backends=["serial"], repeats=5))
        for P in (4, 16):
            repeats = 9 if (not quick and scale == "large" and P == 16) else 5
            groups.append(
                dict(sampler="nocomm", scale=scale, P=P, backends=list(NOCOMM_BACKENDS), repeats=repeats)
            )
    # The with-communication sampler spawns one interpreter per rank per
    # call on the process backends; keep its grid small but representative.
    comm_scales = ["small"] if quick else ["small", "medium"]
    for scale in comm_scales:
        groups.append(dict(sampler="comm", scale=scale, P=4, backends=["thread"], repeats=3))
        groups.append(dict(sampler="comm", scale=scale, P=16, backends=["thread"], repeats=3))
    groups.append(
        dict(
            sampler="comm",
            scale="small",
            P=4,
            backends=["process", "process-shm"],
            repeats=1 if quick else 3,
        )
    )
    return groups


def run_grid(quick: bool, verbose: bool = True) -> tuple[list[dict[str, Any]], bool]:
    """Measure every group; returns (rows, edges_kept_consistent).

    The whole grid runs inside one :func:`arena_scope`, mirroring how the
    batch engine wraps a scale-group: ``process-shm`` cells therefore
    measure the runtime's steady state — the first call of a payload pays
    the export, later calls content-dedup onto the existing segments and
    hit the workers' per-(payload, rank) slice memo.  The first
    (cold-export) call of each group is inside the median like any other
    repeat.
    """
    graphs: dict[str, Any] = {}
    runs: list[dict[str, Any]] = []
    consistent = True
    with arena_scope():
        for group in _groups(quick):
            _measure_group(group, graphs, runs)
    shutdown_worker_pool()
    for group_key, kept in _kept_by_group(runs).items():
        if len(kept) > 1:
            consistent = False
            print(f"INCONSISTENT edges_kept in {group_key}: {sorted(kept)}", file=sys.stderr)
    if verbose:
        for row in runs:
            print(
                f"{row['sampler']:>7} {row['scale']:>6} {row['backend']:>12} "
                f"P={row['n_partitions']:>2} {row['seconds']:8.4f}s  kept={row['edges_kept']}",
                flush=True,
            )
    return runs, consistent


def _kept_by_group(runs: list[dict[str, Any]]) -> dict[str, set[int]]:
    by_group: dict[str, set[int]] = {}
    for row in runs:
        key = f"{row['sampler']}/{row['scale']}/P{row['n_partitions']}"
        by_group.setdefault(key, set()).add(row["edges_kept"])
    return by_group


def _measure_group(
    group: dict[str, Any], graphs: dict[str, Any], runs: list[dict[str, Any]]
) -> None:
    scale = group["scale"]
    if scale not in graphs:
        graphs[scale] = correlation_like_graph(seed=7, **SCALES[scale])
    g = graphs[scale]
    call = _filter_call(group["sampler"])
    times: dict[str, list[float]] = {b: [] for b in group["backends"]}
    kept: dict[str, int] = {}
    for rep in range(group["repeats"]):
        # Alternate the visiting order each round so systematic drift
        # (cache warm-up, machine load ramps) cancels across backends.
        ordered = group["backends"] if rep % 2 == 0 else list(reversed(group["backends"]))
        for backend in ordered:
            t0 = time.perf_counter()
            result = call(g, group["P"], backend)
            times[backend].append(time.perf_counter() - t0)
            kept[backend] = result.n_edges_kept
    for backend in group["backends"]:
        runs.append(
            {
                "sampler": group["sampler"],
                "scale": scale,
                "backend": backend,
                "ordering": ORDERING,
                "n_partitions": group["P"],
                "n_vertices": g.n_vertices,
                "n_edges": g.n_edges,
                "repeats": group["repeats"],
                "seconds": round(statistics.median(times[backend]), 6),
                "edges_kept": kept[backend],
            }
        )


def _key(row: dict[str, Any]) -> str:
    return f"{row['sampler']}/{row['scale']}/{row['backend']}/P{row['n_partitions']}"


def _headline(runs: list[dict[str, Any]]) -> Optional[dict[str, Any]]:
    """The acceptance cell: nocomm process vs process-shm at the largest scale, P16."""
    by_key = {_key(r): r for r in runs}
    for scale in reversed(SCALE_ORDER):
        pickle_row = by_key.get(f"nocomm/{scale}/process/P16")
        shm_row = by_key.get(f"nocomm/{scale}/process-shm/P16")
        if pickle_row and shm_row:
            return {
                "cell": f"nocomm/{scale}/P16",
                "process_seconds": pickle_row["seconds"],
                "process_shm_seconds": shm_row["seconds"],
                "shm_speedup": round(pickle_row["seconds"] / shm_row["seconds"], 3)
                if shm_row["seconds"]
                else None,
                "edges_kept_identical": pickle_row["edges_kept"] == shm_row["edges_kept"],
            }
    return None


def check_regression(
    runs: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate on the committed baseline, normalized for hardware speed.

    The gated quantity — process-shm P16 time over the same run's serial P1
    time — cancels clock speed but **not** core topology: a P16 run on one
    core serialises the ranks that a many-core box overlaps.  The gate is
    therefore calibrated for same-topology comparisons and prints a warning
    (rather than failing spuriously or silently tightening) when the fresh
    machine's core count differs from the committed baseline's.
    """
    committed_cpus = committed.get("cpu_count")
    if committed_cpus is not None and committed_cpus != cpu_count():
        print(
            f"check: WARNING — committed baseline measured with cpu_count="
            f"{committed_cpus}, this machine has {cpu_count()}; the normalized "
            f"ratio shifts with core topology, so treat this gate as coarse",
            file=sys.stderr,
        )
    committed_runs = {_key(r): r for r in committed.get("runs", [])}
    fresh = {_key(r): r for r in runs}
    shared_scales = [
        s
        for s in SCALE_ORDER
        if f"nocomm/{s}/process-shm/P16" in fresh
        and f"nocomm/{s}/process-shm/P16" in committed_runs
        and f"nocomm/{s}/serial/P1" in fresh
        and f"nocomm/{s}/serial/P1" in committed_runs
    ]
    if not shared_scales:
        print("check: no shared nocomm process-shm/P16 cell", file=sys.stderr)
        return 2
    scale = shared_scales[-1]
    head = f"nocomm/{scale}/process-shm/P16"
    base = f"nocomm/{scale}/serial/P1"
    old_ratio = committed_runs[head]["seconds"] / committed_runs[base]["seconds"]
    new_ratio = fresh[head]["seconds"] / fresh[base]["seconds"]
    rel = new_ratio / old_ratio if old_ratio else float("inf")
    print(
        f"check: {head}: committed {committed_runs[head]['seconds']:.4f}s, "
        f"fresh {fresh[head]['seconds']:.4f}s (absolute, informational)"
    )
    print(
        f"check: overhead vs {base}: committed {old_ratio:.2f}x, fresh {new_ratio:.2f}x, "
        f"relative {rel:.2f}"
    )
    if rel > 1.0 + threshold:
        print(
            f"check: FAIL — process-shm execution overhead regressed "
            f"{(rel - 1.0) * 100:.0f}% (> {threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("check: OK")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI grid")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_parallel.json, or "
        "bench_parallel_fresh.json when --check is given)",
    )
    parser.add_argument("--label", default="shm-runtime", help="label for this runtime variant")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare the fresh normalized process-shm/P16 overhead against a committed file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_parallel_fresh.json" if args.check else "BENCH_parallel.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    runs, consistent = run_grid(args.quick)
    headline = _headline(runs)
    if headline:
        print(
            f"headline {headline['cell']}: process {headline['process_seconds']:.4f}s, "
            f"shm {headline['process_shm_seconds']:.4f}s, speedup {headline['shm_speedup']}"
        )

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": cpu_count(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "runs": runs,
        "headline": headline,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    if not consistent:
        print("FAIL: edges_kept differed between backends", file=sys.stderr)
        return 1
    if committed is not None:
        return check_regression(runs, committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
