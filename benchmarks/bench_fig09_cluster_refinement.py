"""Figure 9 — filtering sharpens the function of a noisy cluster (case study).

Paper claim: an original UNT cluster with mediocre enrichment (AEES 2.33)
yields, after High-Degree chordal filtering, a cluster scoring 4.17 whose
dominating annotation (apoptosis regulation) becomes visible once the
spuriously attached genes are removed — an improvement of ~2 enrichment points
with 66.7% node / 28% edge overlap to the original.
"""

from __future__ import annotations

from repro.pipeline import fig09_cluster_refinement, format_kv


def test_fig09_cluster_refinement(benchmark, once):
    out = once(benchmark, fig09_cluster_refinement)
    best = out["best_improvement"]

    print()
    assert best is not None, "no matched cluster pair found"
    print(format_kv(best, title="Figure 9: largest AEES improvement (original -> filtered cluster)"))

    # the filter improves the enrichment of at least one matched cluster
    assert best["aees_gain"] > 0.0
    # the filtered counterpart must still overlap its original cluster
    assert best["node_overlap"] > 0.0
    assert best["dominant_term"] is not None
