#!/usr/bin/env python
"""Scale-out runtime benchmark: file arenas, socket SPMD, streaming CSR.

Measures the three headline promises of the scale-out tier and writes the
trajectory to ``BENCH_scaleout.json``:

* **file-arena attach vs rebuild** — exporting a CSR-sized bundle into a
  fresh file-backed arena (cold: copy + manifest write) against re-opening
  the directory and re-exporting equal content (warm: manifest adoption +
  content-digest hit, no copy).  The warm path is what a restarted
  ``repro serve --arena-dir`` pays instead of rebuilding its bundles.
* **process-sock vs process-shm** — the nocomm parallel filter at the
  largest scale over the TCP transport against the shared-memory transport,
  with the serial P1 base for hardware normalization.  Both must keep the
  identical edge set (checked, fails the run otherwise).
* **huge-scale streaming build** — :meth:`CSRGraph.from_edge_stream` over
  the seeded ring-chord edge stream at ~100× the ``large`` filter scale,
  the graph size the in-RAM generators cannot reach.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaleout.py             # full grid
    PYTHONPATH=src python benchmarks/bench_scaleout.py --quick     # CI grid
    PYTHONPATH=src python benchmarks/bench_scaleout.py --quick \
        --check BENCH_scaleout.json --threshold 0.25               # CI gate

JSON schema (``bench_scaleout/v1``)::

    {
      "schema": "bench_scaleout/v1",
      "label": str, "quick": bool, "python": str, "platform": str,
      "cpu_count": int, "created": str,
      "runs": [ {"cell", "op", ..., "seconds"} ],
      "headline": {"attach_speedup", "sock_cell", "sock_seconds",
                   "shm_seconds", "edges_kept_identical",
                   "huge_n_vertices", "huge_build_seconds"}
    }

``--check`` gates on the *hardware-normalized* socket-transport overhead:
the ``process-sock`` time divided by the same run's ``serial`` P1 time.
Machine speed cancels; the gate fails when that ratio regresses more than
``--threshold`` (default 25%) against the committed file, or when the two
transports disagree on ``edges_kept``.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import statistics
import sys
import tempfile
import time
from datetime import datetime, timezone
from multiprocessing import cpu_count
from typing import Any, Optional

import numpy as np

from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter
from repro.graph.csr import CSRGraph
from repro.graph.generators import correlation_like_graph, ring_chord_edge_stream
from repro.parallel.runner import shutdown_worker_pool
from repro.parallel.shm import SharedArena, arena_scope
from repro.parallel.sock import shutdown_sock_pool

SCHEMA = "bench_scaleout/v1"
ORDERING = "rcm"

#: Filter scales, aligned with bench_parallel.py so trajectories compare.
SCALES: dict[str, dict[str, int]] = {
    "medium": dict(n_modules=8, module_size=12, n_background=800),
    "large": dict(n_modules=16, module_size=14, n_background=2800),
}

#: ``huge`` is ~100× the ``large`` filter scale's vertex count — reachable
#: only through the streaming builder (the in-RAM generators build Python
#: structures edge by edge and would dominate the measurement).
HUGE_N = 300_000
HUGE_N_QUICK = 30_000


def bench_arena(quick: bool) -> list[dict[str, Any]]:
    """Cold export vs warm manifest re-adoption of a CSR-sized bundle."""
    n = 200_000 if not quick else 40_000
    payload = {
        "indptr": np.arange(n + 1, dtype=np.int64),
        "indices": np.arange(4 * n, dtype=np.int64),
        "position": np.arange(n, dtype=np.int64),
    }
    nbytes = sum(a.nbytes for a in payload.values())
    repeats = 3 if quick else 5
    cold_times, warm_times = [], []
    for _ in range(repeats):
        d = tempfile.mkdtemp(prefix="bench-arena-")
        try:
            t0 = time.perf_counter()
            arena = SharedArena(path=d)
            arena.export_bundle(payload)
            arena.close()
            cold_times.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            warm = SharedArena(path=d)
            warm.export_bundle({k: v.copy() for k, v in payload.items()})
            warm_times.append(time.perf_counter() - t0)
            warm.unlink()
        finally:
            shutil.rmtree(d, ignore_errors=True)
    return [
        {
            "cell": "arena",
            "op": "rebuild",
            "bytes": nbytes,
            "repeats": repeats,
            "seconds": round(statistics.median(cold_times), 6),
        },
        {
            "cell": "arena",
            "op": "attach",
            "bytes": nbytes,
            "repeats": repeats,
            "seconds": round(statistics.median(warm_times), 6),
        },
    ]


def bench_transports(quick: bool) -> tuple[list[dict[str, Any]], bool]:
    """nocomm filter per scale: serial base, process-shm and process-sock at P4."""
    scales = ["medium"] if quick else ["medium", "large"]
    backends = [("serial", 1), ("process-shm", 4), ("process-sock", 4)]
    repeats = 3 if quick else 5
    rows: list[dict[str, Any]] = []
    consistent = True
    with arena_scope():
        for scale in scales:
            g = correlation_like_graph(seed=7, **SCALES[scale])
            times: dict[str, list[float]] = {b: [] for b, _ in backends}
            kept: dict[str, int] = {}
            for rep in range(repeats):
                ordered = backends if rep % 2 == 0 else list(reversed(backends))
                for backend, P in ordered:
                    t0 = time.perf_counter()
                    result = parallel_chordal_nocomm_filter(
                        g, P, ordering=ORDERING, backend=backend
                    )
                    times[backend].append(time.perf_counter() - t0)
                    kept[backend] = result.n_edges_kept
            rows += [
                {
                    "cell": "transport",
                    "op": backend,
                    "scale": scale,
                    "n_partitions": P,
                    "n_vertices": g.n_vertices,
                    "n_edges": g.n_edges,
                    "repeats": repeats,
                    "seconds": round(statistics.median(times[backend]), 6),
                    "edges_kept": kept[backend],
                }
                for backend, P in backends
            ]
            # serial runs at P=1, so its kept set legitimately differs; the
            # identity pin is between the transports sharing the P=4 grid.
            if kept["process-shm"] != kept["process-sock"]:
                consistent = False
                print(
                    f"INCONSISTENT edges_kept at {scale}: {kept}", file=sys.stderr
                )
    shutdown_worker_pool()
    shutdown_sock_pool()
    return rows, consistent


def bench_huge(quick: bool) -> list[dict[str, Any]]:
    """Streaming CSR build at the huge scale (chunked two-pass, bounded RSS)."""
    n = HUGE_N_QUICK if quick else HUGE_N
    stream = ring_chord_edge_stream(n, seed=2)
    repeats = 2 if quick else 3
    build_times = []
    n_edges = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        csr = CSRGraph.from_edge_stream(n, stream)
        build_times.append(time.perf_counter() - t0)
        n_edges = csr.n_edges
    return [
        {
            "cell": "huge",
            "op": "from_edge_stream",
            "n_vertices": n,
            "n_edges": n_edges,
            "repeats": repeats,
            "seconds": round(statistics.median(build_times), 6),
        }
    ]


def _by_cell_op(runs: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Key rows by cell/op, with the scale spliced in for transport cells."""
    return {
        f"{r['cell']}/{r['scale']}/{r['op']}" if r["cell"] == "transport" else f"{r['cell']}/{r['op']}": r
        for r in runs
    }


def _largest_transport_scale(by: dict[str, dict[str, Any]]) -> Optional[str]:
    for scale in reversed(list(SCALES)):
        if f"transport/{scale}/process-sock" in by:
            return scale
    return None


def _headline(runs: list[dict[str, Any]]) -> dict[str, Any]:
    by = _by_cell_op(runs)
    rebuild, attach = by["arena/rebuild"], by["arena/attach"]
    scale = _largest_transport_scale(by)
    sock = by[f"transport/{scale}/process-sock"]
    shm = by[f"transport/{scale}/process-shm"]
    huge = by["huge/from_edge_stream"]
    return {
        "attach_speedup": round(rebuild["seconds"] / attach["seconds"], 3)
        if attach["seconds"]
        else None,
        "sock_cell": f"nocomm/{sock['scale']}/P{sock['n_partitions']}",
        "sock_seconds": sock["seconds"],
        "shm_seconds": shm["seconds"],
        "edges_kept_identical": sock["edges_kept"] == shm["edges_kept"],
        "huge_n_vertices": huge["n_vertices"],
        "huge_build_seconds": huge["seconds"],
    }


def check_regression(
    runs: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate the normalized socket-transport overhead against the baseline."""
    committed_cpus = committed.get("cpu_count")
    if committed_cpus is not None and committed_cpus != cpu_count():
        print(
            f"check: WARNING — committed baseline measured with cpu_count="
            f"{committed_cpus}, this machine has {cpu_count()}; normalized "
            f"ratios shift with core topology, so treat this gate as coarse",
            file=sys.stderr,
        )
    old = _by_cell_op(committed.get("runs", []))
    new = _by_cell_op(runs)
    shared = [
        scale
        for scale in SCALES
        if all(
            f"transport/{scale}/{op}" in table
            for op in ("process-sock", "serial")
            for table in (old, new)
        )
    ]
    if not shared:
        print("check: no shared transport scale between baseline and fresh run", file=sys.stderr)
        return 2
    scale = shared[-1]
    old_ratio = (
        old[f"transport/{scale}/process-sock"]["seconds"]
        / old[f"transport/{scale}/serial"]["seconds"]
    )
    new_ratio = (
        new[f"transport/{scale}/process-sock"]["seconds"]
        / new[f"transport/{scale}/serial"]["seconds"]
    )
    rel = new_ratio / old_ratio if old_ratio else float("inf")
    print(
        f"check: process-sock overhead vs serial P1 at {scale}: committed "
        f"{old_ratio:.2f}x, fresh {new_ratio:.2f}x, relative {rel:.2f}"
    )
    if rel > 1.0 + threshold:
        print(
            f"check: FAIL — socket-transport overhead regressed "
            f"{(rel - 1.0) * 100:.0f}% (> {threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("check: OK")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI grid")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_scaleout.json, or "
        "bench_scaleout_fresh.json when --check is given)",
    )
    parser.add_argument("--label", default="scaleout-runtime", help="label for this variant")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare the fresh normalized process-sock overhead against a committed file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_scaleout_fresh.json" if args.check else "BENCH_scaleout.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    runs = bench_arena(args.quick)
    transport_rows, consistent = bench_transports(args.quick)
    runs += transport_rows
    runs += bench_huge(args.quick)
    for row in runs:
        print(
            f"{row['cell']:>9} {row['op']:>17} {row['seconds']:8.4f}s"
            + (f"  kept={row['edges_kept']}" if "edges_kept" in row else ""),
            flush=True,
        )
    headline = _headline(runs)
    print(
        f"headline: attach speedup {headline['attach_speedup']}x, "
        f"{headline['sock_cell']} sock {headline['sock_seconds']:.4f}s vs "
        f"shm {headline['shm_seconds']:.4f}s, huge({headline['huge_n_vertices']}) "
        f"build {headline['huge_build_seconds']:.4f}s"
    )

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": cpu_count(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "runs": runs,
        "headline": headline,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    if not consistent:
        print("FAIL: edges_kept differed between transports", file=sys.stderr)
        return 1
    if committed is not None:
        return check_regression(runs, committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
