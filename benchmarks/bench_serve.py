#!/usr/bin/env python
"""Warm-serve vs cold-CLI benchmark for the resident analysis service.

Measures what the ``repro serve`` daemon actually buys: a cold CLI run pays
interpreter start-up, dataset generation, network thresholding, GO index and
scorer construction and original-cluster discovery on *every* invocation,
while the daemon pays them once and serves requests from warm state — with an
LRU result cache in front of the handlers.  For each grid cell this harness
times, per op (``classify`` is the headline, ``filter`` for context):

* ``cold_seconds`` — one ``python -m repro … --json`` subprocess (the real
  cold path, interpreter and all);
* ``warm_miss_seconds`` — the first served request of that spec: warm
  bundles, cache miss (the handler runs);
* ``warm_hit_p50`` / ``warm_hit_p99`` / ``req_per_s`` — repeated identical
  requests served from the result cache, i.e. steady-state serving.

Cold and warm responses are byte-compared in every cell (the ``identical``
flag) — the speedup is only meaningful while the bytes match.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py                # full grid
    PYTHONPATH=src python benchmarks/bench_serve.py --quick        # CI grid
    PYTHONPATH=src python benchmarks/bench_serve.py --quick \
        --check BENCH_serve.json --threshold 0.25                  # CI gate

JSON schema (``bench_serve/v1``)::

    {
      "schema": "bench_serve/v1",
      "label": str, "quick": bool, "python": str, "platform": str,
      "created": str, "dataset": "CRE",
      "server": {"workers", "cache_size"},
      "runs": [ {"dataset", "scale", "scale_factor", "op", "cold_seconds",
                 "warm_miss_seconds", "warm_hit_p50", "warm_hit_p99",
                 "req_per_s", "hit_requests", "identical"} ],
      "speedup": {"CRE/<scale>": {"cold_seconds", "warm_miss_seconds",
                  "warm_hit_p50", "warm_hit_p99", "req_per_s",
                  "speedup_p50", "miss_speedup", "identical"}}
    }

``--check`` re-measures the quick grid and gates on the headline cell's
``warm_hit_p50 / cold_seconds`` ratio — both sides of the ratio measured in
the same fresh run on the same machine, so hardware speed cancels — against
the committed file's ratio, failing on a regression beyond ``--threshold``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from typing import Any, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.serve import ReproServer, ServeClient  # noqa: E402

SCHEMA = "bench_serve/v1"

DATASET = "CRE"
#: Same scale ladder as ``bench_workflow.py``; ``large`` is the acceptance
#: cell (the ISSUE's >=5x warm-p50 criterion is measured on large classify).
SCALES: dict[str, float] = {
    "tiny": 0.02,
    "small": 0.05,
    "medium": 0.10,
    "large": 0.15,
}
SCALE_ORDER = ["tiny", "small", "medium", "large"]

SERVER = dict(workers=2, cache_size=256)

#: Repeated identical requests per cell (first = the miss, rest = hits).
HIT_REQUESTS = 20


def canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(int(round(q * (len(sorted_values) - 1))), len(sorted_values) - 1)
    return sorted_values[idx]


def _cold_cli(op: str, scale_factor: float) -> tuple[float, str]:
    """One cold CLI subprocess for ``op``; returns (seconds, canonical json)."""
    command = {"filter": "filter", "classify": "analyze"}[op]
    argv = [
        sys.executable, "-m", "repro", command,
        "--dataset", DATASET, "--scale", str(scale_factor), "--json",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    t0 = time.perf_counter()
    proc = subprocess.run(argv, capture_output=True, text=True, env=env, check=True)
    seconds = time.perf_counter() - t0
    return seconds, proc.stdout.strip()


def _warm_requests(
    client: ServeClient, op: str, scale_factor: float
) -> tuple[float, list[float], str]:
    """First-request (miss) seconds, sorted hit latencies, canonical payload."""
    params = {"dataset": DATASET, "scale": scale_factor}
    t0 = time.perf_counter()
    first = client.request(op, **params)
    miss_seconds = time.perf_counter() - t0
    assert first["ok"], first
    assert first["cached"] is False, "expected the first request to be a cache miss"
    hits: list[float] = []
    for _ in range(HIT_REQUESTS):
        t0 = time.perf_counter()
        response = client.request(op, **params)
        hits.append(time.perf_counter() - t0)
        assert response["ok"] and response["cached"] is True, response
    return miss_seconds, sorted(hits), canonical(first["result"])


def run_grid(quick: bool, verbose: bool = True) -> list[dict[str, Any]]:
    scales = ["tiny", "small"] if quick else SCALE_ORDER
    runs: list[dict[str, Any]] = []
    for scale in scales:
        factor = SCALES[scale]
        # One daemon per scale cell: its default scale IS the cell, so the
        # served and cold requests name exactly the same work.
        with ReproServer(default_scale=factor, **SERVER) as server:
            with ServeClient(port=server.port, timeout=3600.0) as client:
                for op in ("filter", "classify"):
                    cold_seconds, cold_json = _cold_cli(op, factor)
                    miss_seconds, hits, warm_json = _warm_requests(client, op, factor)
                    row = {
                        "dataset": DATASET,
                        "scale": scale,
                        "scale_factor": factor,
                        "op": op,
                        "cold_seconds": round(cold_seconds, 6),
                        "warm_miss_seconds": round(miss_seconds, 6),
                        "warm_hit_p50": round(_percentile(hits, 0.50), 6),
                        "warm_hit_p99": round(_percentile(hits, 0.99), 6),
                        "req_per_s": round(len(hits) / sum(hits), 1) if sum(hits) else None,
                        "hit_requests": len(hits),
                        "identical": warm_json == cold_json,
                    }
                    runs.append(row)
                    if verbose:
                        print(
                            f"{DATASET:>4} {scale:>6} {op:>9}  cold {cold_seconds:7.3f}s  "
                            f"miss {miss_seconds:7.3f}s  hit p50 {row['warm_hit_p50'] * 1000:7.2f}ms  "
                            f"p99 {row['warm_hit_p99'] * 1000:7.2f}ms  "
                            f"{row['req_per_s']:>8} req/s  identical={row['identical']}",
                            flush=True,
                        )
    return runs


def _speedup_table(runs: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    table: dict[str, dict[str, Any]] = {}
    for row in runs:
        if row["op"] != "classify":
            continue
        table[f"{row['dataset']}/{row['scale']}"] = {
            "cold_seconds": row["cold_seconds"],
            "warm_miss_seconds": row["warm_miss_seconds"],
            "warm_hit_p50": row["warm_hit_p50"],
            "warm_hit_p99": row["warm_hit_p99"],
            "req_per_s": row["req_per_s"],
            "speedup_p50": (
                round(row["cold_seconds"] / row["warm_hit_p50"], 1)
                if row["warm_hit_p50"]
                else None
            ),
            "miss_speedup": (
                round(row["cold_seconds"] / row["warm_miss_seconds"], 2)
                if row["warm_miss_seconds"]
                else None
            ),
            "identical": row["identical"],
        }
    return table


def _headline_cell(table: dict[str, dict[str, Any]]) -> Optional[str]:
    """The acceptance cell: the largest measured scale (CRE/large classify)."""
    for scale in reversed(SCALE_ORDER):
        cell = f"{DATASET}/{scale}"
        if cell in table:
            return cell
    return None


def check_regression(
    runs: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate on the committed baseline, normalized for hardware speed.

    The gated quantity is the headline cell's ``warm_hit_p50 / cold_seconds``
    ratio — numerator and denominator from the same fresh run, so machine
    speed cancels — against the committed file's ratio for the same cell.
    A cell whose warm and cold bytes differ fails outright.
    """
    fresh = _speedup_table(runs)
    for cell, entry in fresh.items():
        if not entry["identical"]:
            print(f"check: FAIL — {cell}: served and cold payloads differ", file=sys.stderr)
            return 1
    committed_table = committed.get("speedup", {})
    shared = {c: fresh[c] for c in fresh if c in committed_table}
    headline = _headline_cell(shared)
    if headline is None:
        print("check: no shared cell between fresh and committed runs", file=sys.stderr)
        return 2
    old = committed_table[headline]
    new = shared[headline]
    old_ratio = old["warm_hit_p50"] / old["cold_seconds"]
    new_ratio = new["warm_hit_p50"] / new["cold_seconds"]
    rel = new_ratio / old_ratio if old_ratio else float("inf")
    print(
        f"check: {headline}: committed warm p50 {old['warm_hit_p50'] * 1000:.2f}ms / "
        f"cold {old['cold_seconds']:.3f}s, fresh warm p50 "
        f"{new['warm_hit_p50'] * 1000:.2f}ms / cold {new['cold_seconds']:.3f}s "
        f"(absolute, informational)"
    )
    print(
        f"check: warm/cold ratio: committed {old_ratio:.5f}, fresh {new_ratio:.5f}, "
        f"relative {rel:.2f}"
    )
    if rel > 1.0 + threshold:
        print(
            f"check: FAIL — warm serving regressed {(rel - 1.0) * 100:.0f}% vs the "
            f"cold CLI (> {threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("check: OK")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI grid (tiny + small scales)")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_serve.json, or bench_serve_fresh.json "
        "when --check is given so the committed baseline is never clobbered)",
    )
    parser.add_argument("--label", default="warm-serve", help="label for this variant")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare the fresh headline warm/cold ratio against a committed bench file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_serve_fresh.json" if args.check else "BENCH_serve.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    runs = run_grid(args.quick)
    table = _speedup_table(runs)
    headline = _headline_cell(table)
    if headline:
        entry = table[headline]
        print(
            f"headline {headline} classify: cold {entry['cold_seconds']:.3f}s → warm p50 "
            f"{entry['warm_hit_p50'] * 1000:.2f}ms ({entry['speedup_p50']}x), "
            f"miss {entry['warm_miss_seconds']:.3f}s ({entry['miss_speedup']}x), "
            f"{entry['req_per_s']} req/s (identical={entry['identical']})"
        )

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "dataset": DATASET,
        "server": SERVER,
        "runs": runs,
        "speedup": table,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    if committed is not None:
        return check_regression(runs, committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
