"""Figure 6 — node overlap vs AEES for all four networks and four orderings.

Paper claim: points from different orderings frequently land on the same
coordinates (ordering robustness), and node overlap picks out the few known
clusters with high relevance.
"""

from __future__ import annotations

from collections import Counter

from repro.pipeline import fig06_node_overlap_vs_aees, format_table


def test_fig06_node_overlap_vs_aees(benchmark, once):
    out = once(benchmark, fig06_node_overlap_vs_aees)
    points = out["points"]

    print()
    print(format_table(points[:40], columns=["dataset", "filter", "aees", "overlap"],
                       title="Figure 6 (excerpt): node overlap vs AEES"))
    coords = Counter((round(p["aees"], 2), round(p["overlap"], 2)) for p in points)
    repeated = sum(1 for c in coords.values() if c > 1)
    print(f"coordinates shared by more than one ordering: {repeated} of {len(coords)}")

    assert points
    assert all(0.0 <= p["overlap"] <= 1.0 for p in points)
    # ordering robustness: many points coincide across orderings
    assert repeated > 0
