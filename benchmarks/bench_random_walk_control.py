"""Section IV.B (text claim, H0a) — the random-walk control filter finds no clusters.

Paper claim: "random walk filtered networks find no clusters at all ... there
are not enough edges retained using the random walk method to identify very
dense groups of nodes", while the chordal filter keeps finding the clusters of
interest.  On synthetic data the random walk occasionally retains a couple of
dense groups, so the reproduced claim is "at least an order of magnitude fewer
clusters than the chordal filter" (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.pipeline import format_table, random_walk_control


def test_random_walk_control(benchmark, once):
    out = once(benchmark, random_walk_control)
    rows = out["rows"]

    print()
    print(format_table(
        rows,
        columns=[
            "dataset",
            "original_clusters",
            "chordal_clusters",
            "random_walk_clusters",
            "original_edges",
            "chordal_edges",
            "random_walk_edges",
        ],
        title="Random-walk control (H0a): clusters and edges retained per filter",
    ))

    for row in rows:
        assert row["chordal_clusters"] > 0
        assert row["random_walk_clusters"] <= row["chordal_clusters"] // 4
        assert row["random_walk_edges"] < row["chordal_edges"]
