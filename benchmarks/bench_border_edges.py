"""Section III.A ablation — border edges, duplicates and communication volume.

The paper discusses two costs of parallelisation: the earlier algorithm's
border-edge exchange (communication volume growing with b, receiver work
O(b²/d)) and the new algorithm's duplicate border edges (bounded by b, removed
sequentially).  This bench sweeps processor counts and partitioners and
reports both, ablating the partitioner choice called out in DESIGN.md §6.
"""

from __future__ import annotations

from repro.pipeline import border_edge_study, format_table


def test_border_edge_study(benchmark, once):
    out = once(benchmark, border_edge_study)
    rows = out["rows"]

    print()
    print(format_table(
        rows,
        columns=[
            "partitioner",
            "processors",
            "border_edges",
            "nocomm_duplicates",
            "nocomm_edges_kept",
            "comm_edges_kept",
            "comm_messages",
            "comm_items",
        ],
        title=f"Border-edge behaviour on {out['dataset']} (no-comm duplicates vs with-comm traffic)",
    ))

    for row in rows:
        # duplicates are bounded by the number of border edges (paper, Section III.A)
        assert 0 <= row["nocomm_duplicates"] <= row["border_edges"]
        # with communication, traffic is proportional to the border edges exchanged
        if row["border_edges"]:
            assert row["comm_items"] > 0

    # more processors -> more border edges (for a fixed partitioner)
    by_method: dict[str, list] = {}
    for row in rows:
        by_method.setdefault(row["partitioner"], []).append(row)
    for method, method_rows in by_method.items():
        method_rows.sort(key=lambda r: r["processors"])
        assert method_rows[-1]["border_edges"] >= method_rows[0]["border_edges"], method
