"""Figure 5 — node/edge overlap of filtered vs original clusters (UNT, CRE).

Paper claim: despite removing edges, the chordal filter leaves many original
clusters with high (sometimes 100%) node and edge overlap, and additionally
uncovers new clusters that the original network hid (points near the origin in
the bottom panels).
"""

from __future__ import annotations

from repro.pipeline import fig05_overlap_scatter, format_table


def test_fig05_overlap_scatter(benchmark, once):
    out = once(benchmark, fig05_overlap_scatter)

    for name, data in out["datasets"].items():
        print()
        print(format_table(
            data["overlap_points"][:25],
            columns=["filter", "node_overlap", "edge_overlap", "cluster_size"],
            title=f"Figure 5 ({name}, excerpt): overlap of filtered clusters with original clusters",
        ))
        print(f"{name}: clusters with 100% node & edge overlap: {data['n_full_overlap']}")
        print(f"{name}: newly discovered clusters (no original counterpart): {len(data['new_cluster_points'])}")

    for name, data in out["datasets"].items():
        points = data["overlap_points"]
        assert points, f"{name}: the chordal filter must retain overlapping clusters"
        # a solid fraction of retained clusters keep >50% of the original nodes
        high = sum(1 for p in points if p["node_overlap"] > 0.5)
        assert high >= len(points) // 3
