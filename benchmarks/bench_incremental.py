#!/usr/bin/env python
"""Delta-update vs cold-rebuild benchmark for the incremental recompute engine.

Measures what :mod:`repro.incremental` actually buys a warm service: a bundle
that has absorbed a history of dataset mutations can take the *next* mutation
as a structural-sharing delta (:func:`apply_update`), while the only correct
alternative for cold machinery is a full reference rebuild — ``prepare_dataset``
plus a replay of the entire update log (:func:`replay_reference`), which is
exactly what the daemon's ``reload`` op must do to reach the same logical
state.  For each grid cell this harness warms a bundle with ``HISTORY`` mixed
updates, then times, per update kind:

* ``update_seconds`` — one delta absorption into the warm bundle;
* ``rebuild_seconds`` — the cold replay to the identical post-update state;
* ``speedup`` — their ratio, and ``identical`` — whether the delta bundle's
  canonical ``classify`` payload byte-equals the replay's (the speedup is
  only meaningful while the bytes match).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py              # full grid
    PYTHONPATH=src python benchmarks/bench_incremental.py --quick      # CI grid
    PYTHONPATH=src python benchmarks/bench_incremental.py --quick \
        --check BENCH_incremental.json --threshold 0.25                # CI gate

JSON schema (``bench_incremental/v1``)::

    {
      "schema": "bench_incremental/v1",
      "label": str, "quick": bool, "python": str, "platform": str,
      "created": str, "dataset": "CRE", "history": int,
      "runs": [ {"dataset", "scale", "scale_factor", "kind", "mode",
                 "history_depth", "update_seconds", "rebuild_seconds",
                 "speedup", "identical"} ],
      "speedup": {"CRE/<scale>/<kind>": {"update_seconds", "rebuild_seconds",
                  "speedup", "identical"}}
    }

``--check`` re-measures the quick grid and gates on each shared cell's
``speedup`` — both sides of the ratio measured in the same fresh run on the
same machine, so hardware speed cancels — against the committed file's value,
failing on a regression beyond ``--threshold``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.incremental import UpdateSpec, apply_update, replay_reference  # noqa: E402
from repro.pipeline.workflow import analysis_payload, analyze_filter, prepare_dataset  # noqa: E402

SCHEMA = "bench_incremental/v1"

DATASET = "CRE"
#: Same scale ladder as ``bench_serve.py``; ``large`` is the acceptance cell
#: (the ISSUE's >=10x single-sample / single-annotation criterion).
SCALES: dict[str, float] = {
    "tiny": 0.02,
    "small": 0.05,
    "medium": 0.10,
    "large": 0.15,
}
SCALE_ORDER = ["tiny", "small", "medium", "large"]

#: Mixed updates absorbed before measuring — the warm bundle's mutation
#: history, which a cold rebuild must replay in full.
HISTORY = 8

#: The measured update kinds, applied in this order (history keeps growing).
KINDS: dict[str, dict[str, int]] = {
    "single_annotation": dict(add_annotations=1),
    "single_term": dict(add_terms=1),
    "single_gene": dict(add_genes=1),
    "mixed": dict(add_samples=1, add_genes=2, add_annotations=2, add_terms=1),
    "single_sample": dict(add_samples=1),
}
KIND_ORDER = list(KINDS)

#: Acceptance cells: these kinds are gated by --check (and the ISSUE floor).
HEADLINE_KINDS = ("single_sample", "single_annotation")


def canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _classify_bytes(bundle) -> str:
    return canonical(analysis_payload(analyze_filter(bundle)))


def _history_spec(step: int) -> UpdateSpec:
    """The warm-up history: deterministic mixed specs, one per step."""
    cycle = [
        dict(add_annotations=2),
        dict(add_samples=1, add_genes=1),
        dict(add_terms=1, add_annotations=1),
        dict(add_genes=2),
    ]
    return UpdateSpec(seed=700 + step, **cycle[step % len(cycle)])


def run_grid(quick: bool, verbose: bool = True) -> list[dict[str, Any]]:
    scales = ["tiny", "small"] if quick else SCALE_ORDER
    runs: list[dict[str, Any]] = []
    for scale in scales:
        factor = SCALES[scale]
        bundle = prepare_dataset(DATASET, scale=factor)
        history: list[UpdateSpec] = []
        for step in range(HISTORY):
            spec = _history_spec(step)
            bundle, _ = apply_update(bundle, spec, history=history)
            history.append(spec)
        for kind in KIND_ORDER:
            spec = UpdateSpec(seed=900 + len(history), **KINDS[kind])
            t0 = time.perf_counter()
            bundle, report = apply_update(bundle, spec, history=history)
            update_seconds = time.perf_counter() - t0
            history.append(spec)
            t0 = time.perf_counter()
            reference = replay_reference(DATASET, factor, None, history)
            rebuild_seconds = time.perf_counter() - t0
            row = {
                "dataset": DATASET,
                "scale": scale,
                "scale_factor": factor,
                "kind": kind,
                "mode": report.mode,
                "history_depth": len(history),
                "update_seconds": round(update_seconds, 6),
                "rebuild_seconds": round(rebuild_seconds, 6),
                "speedup": (
                    round(rebuild_seconds / update_seconds, 1) if update_seconds else None
                ),
                "identical": _classify_bytes(bundle) == _classify_bytes(reference),
            }
            runs.append(row)
            if verbose:
                print(
                    f"{DATASET:>4} {scale:>6} {kind:>17}  update {update_seconds * 1000:8.2f}ms  "
                    f"rebuild {rebuild_seconds:7.3f}s  {row['speedup']:>7}x  "
                    f"mode={report.mode}  identical={row['identical']}",
                    flush=True,
                )
    return runs


def _speedup_table(runs: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    return {
        f"{row['dataset']}/{row['scale']}/{row['kind']}": {
            "update_seconds": row["update_seconds"],
            "rebuild_seconds": row["rebuild_seconds"],
            "speedup": row["speedup"],
            "identical": row["identical"],
        }
        for row in runs
    }


def _headline_cells(table: dict[str, dict[str, Any]]) -> list[str]:
    """The acceptance cells at the largest measured scale."""
    for scale in reversed(SCALE_ORDER):
        cells = [f"{DATASET}/{scale}/{kind}" for kind in HEADLINE_KINDS]
        if all(cell in table for cell in cells):
            return cells
    return []


def check_regression(
    runs: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate on the committed baseline, normalized for hardware speed.

    The gated quantity is each headline cell's ``rebuild_seconds /
    update_seconds`` speedup — numerator and denominator from the same fresh
    run, so machine speed cancels — against the committed file's value for the
    same cell.  A cell whose delta and replay bytes differ fails outright.
    """
    fresh = _speedup_table(runs)
    for cell, entry in fresh.items():
        if not entry["identical"]:
            print(f"check: FAIL — {cell}: delta and replayed payloads differ", file=sys.stderr)
            return 1
    committed_table = committed.get("speedup", {})
    shared = {c: fresh[c] for c in fresh if c in committed_table}
    headline = _headline_cells(shared)
    if not headline:
        print("check: no shared headline cell between fresh and committed runs", file=sys.stderr)
        return 2
    status = 0
    for cell in headline:
        old = committed_table[cell]["speedup"]
        new = shared[cell]["speedup"]
        rel = new / old if old else float("inf")
        print(
            f"check: {cell}: committed {old}x, fresh {new}x, relative {rel:.2f}"
        )
        if rel < 1.0 - threshold:
            print(
                f"check: FAIL — {cell} delta speedup regressed "
                f"{(1.0 - rel) * 100:.0f}% vs committed (> {threshold * 100:.0f}% allowed)",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print("check: OK")
    return status


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI grid (tiny + small scales)")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_incremental.json, or "
        "bench_incremental_fresh.json when --check is given so the committed "
        "baseline is never clobbered)",
    )
    parser.add_argument("--label", default="delta-update", help="label for this variant")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare fresh headline speedups against a committed bench file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_incremental_fresh.json" if args.check else "BENCH_incremental.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    runs = run_grid(args.quick)
    table = _speedup_table(runs)
    for cell in _headline_cells(table):
        entry = table[cell]
        print(
            f"headline {cell}: rebuild {entry['rebuild_seconds']:.3f}s → update "
            f"{entry['update_seconds'] * 1000:.2f}ms ({entry['speedup']}x, "
            f"identical={entry['identical']})"
        )

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "dataset": DATASET,
        "history": HISTORY,
        "runs": runs,
        "speedup": table,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    if committed is not None:
        return check_regression(runs, committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
