"""Shared configuration for the benchmark harness.

Each ``bench_figXX_*.py`` file regenerates one table/figure of the paper's
evaluation section (see DESIGN.md §4 for the index and EXPERIMENTS.md for the
measured outputs).  Dataset bundles are memoised inside
:mod:`repro.pipeline.experiments`, so figures sharing a dataset do not pay for
it twice within one pytest session.

The dataset scale defaults to ``repro.pipeline.experiments.default_scale()``
(0.10 — a few thousand genes); set ``REPRO_SCALE=1.0`` to run at the paper's
full network sizes (slower).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once` to the benchmark modules."""
    return run_once
