#!/usr/bin/env python
"""End-to-end sampler pipeline benchmark.

Times the three chordal filters (``sequential``, ``nocomm``, ``comm``) across
dataset scales x vertex orderings x partition counts and writes the measured
trajectory to ``BENCH_pipeline.json``.  Unlike ``bench_kernels.py`` (which
isolates the MCS/DSW inner loops) this harness times the *whole* filter call —
ordering, partitioning, per-rank subgraph construction, kernel, border
admission and merge — because the paper's Figure 11 claim is about end-to-end
filter latency.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py                 # full grid
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick         # CI grid
    PYTHONPATH=src python benchmarks/bench_pipeline.py \
        --merge-baseline old.json --out BENCH_pipeline.json            # keep before/after
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick \
        --check BENCH_pipeline.json --threshold 0.25                   # CI regression gate

JSON schema (``bench_pipeline/v1``)::

    {
      "schema": "bench_pipeline/v1",
      "label": "<pipeline variant being measured>",
      "quick": bool, "python": str, "platform": str, "created": str,
      "runs": [ {"filter", "scale", "n_vertices", "n_edges", "ordering",
                 "n_partitions", "repeats", "seconds", "edges_kept"} ],
      "baseline": {"label": str, "runs": [...]},        # when --merge-baseline
      "speedup": {"<filter>/<scale>/<ordering>/P<n>":   # when --merge-baseline
                  {"baseline_seconds", "seconds", "speedup", "edges_kept_match"}}
    }

``--check`` compares a fresh measurement of the no-communication filter at
16 partitions / rcm ordering / the largest scale shared with the committed
file, and exits non-zero when it regresses more than ``--threshold``
(default 25%) over the committed one.  To stay meaningful across machines of
different speeds, the gated quantity is *normalized*: the headline time
divided by the same run's sequential/rcm/P1 time (see
:func:`check_regression`); absolute times are printed for information only.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Callable, Optional

from repro.core.parallel_comm import parallel_chordal_comm_filter
from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter
from repro.core.sequential import sequential_chordal_filter
from repro.graph.generators import correlation_like_graph

SCHEMA = "bench_pipeline/v1"

#: Benchmark networks: correlation-like graphs at three sizes.  ``large`` is
#: the scale the ISSUE's >=2x acceptance criterion is measured at.
SCALES: dict[str, dict[str, int]] = {
    "small": dict(n_modules=4, module_size=10, n_background=200),
    "medium": dict(n_modules=8, module_size=12, n_background=800),
    "large": dict(n_modules=16, module_size=14, n_background=2800),
}
SCALE_ORDER = ["small", "medium", "large"]

ORDERINGS = ["natural", "high_degree", "low_degree", "rcm"]
P_GRID = [1, 4, 16]
GRAPH_SEED = 7


def _filters() -> dict[str, Callable[..., Any]]:
    return {
        "sequential": lambda g, ordering, P: sequential_chordal_filter(g, ordering=ordering),
        "nocomm": lambda g, ordering, P: parallel_chordal_nocomm_filter(
            g, P, ordering=ordering
        ),
        "comm": lambda g, ordering, P: parallel_chordal_comm_filter(g, P, ordering=ordering),
    }


def _grid(quick: bool) -> list[dict[str, Any]]:
    """The (filter, scale, ordering, P, repeats) cells to measure."""
    scales = ["small", "medium"] if quick else SCALE_ORDER
    orderings = ["natural", "rcm"] if quick else ORDERINGS
    # Quick cells are milliseconds; extra repeats cost little and keep the
    # best-of time stable enough for the 25% CI regression gate.
    base_repeats = 5 if quick else 3
    cells: list[dict[str, Any]] = []
    for scale in scales:
        for ordering in orderings:
            cells.append(
                dict(filter="sequential", scale=scale, ordering=ordering, P=1, repeats=base_repeats)
            )
            for P in P_GRID:
                if quick and P == 1:
                    continue
                cells.append(
                    dict(filter="nocomm", scale=scale, ordering=ordering, P=P, repeats=base_repeats)
                )
            # The with-communication baseline is O(b^2/d) on the receiver side;
            # restrict its grid so the harness stays minutes, not hours.
            if ordering in ("natural", "rcm"):
                for P in (4, 16):
                    if scale == "large" and P == 4:
                        continue  # ~20s/run on the label pipeline; adds nothing
                    repeats = 1 if scale == "large" else base_repeats
                    cells.append(
                        dict(filter="comm", scale=scale, ordering=ordering, P=P, repeats=repeats)
                    )
    return cells


def run_grid(quick: bool, verbose: bool = True) -> list[dict[str, Any]]:
    filters = _filters()
    graphs = {}
    runs: list[dict[str, Any]] = []
    for cell in _grid(quick):
        scale = cell["scale"]
        if scale not in graphs:
            graphs[scale] = correlation_like_graph(seed=GRAPH_SEED, **SCALES[scale])
        g = graphs[scale]
        fn = filters[cell["filter"]]
        best = float("inf")
        result = None
        for _ in range(cell["repeats"]):
            t0 = time.perf_counter()
            result = fn(g, cell["ordering"], cell["P"])
            best = min(best, time.perf_counter() - t0)
        row = {
            "filter": cell["filter"],
            "scale": scale,
            "n_vertices": g.n_vertices,
            "n_edges": g.n_edges,
            "ordering": cell["ordering"],
            "n_partitions": cell["P"],
            "repeats": cell["repeats"],
            "seconds": round(best, 6),
            "edges_kept": result.n_edges_kept,
        }
        runs.append(row)
        if verbose:
            print(
                f"{row['filter']:>10} {scale:>6} {row['ordering']:>12} "
                f"P={row['n_partitions']:>2}  {best:8.4f}s  kept={row['edges_kept']}",
                flush=True,
            )
    return runs


def _key(row: dict[str, Any]) -> str:
    return f"{row['filter']}/{row['scale']}/{row['ordering']}/P{row['n_partitions']}"


def _speedup_table(
    baseline_runs: list[dict[str, Any]], runs: list[dict[str, Any]]
) -> dict[str, dict[str, Any]]:
    base = {_key(r): r for r in baseline_runs}
    table: dict[str, dict[str, Any]] = {}
    for row in runs:
        old = base.get(_key(row))
        if old is None:
            continue
        table[_key(row)] = {
            "baseline_seconds": old["seconds"],
            "seconds": row["seconds"],
            "speedup": round(old["seconds"] / row["seconds"], 3) if row["seconds"] else None,
            "edges_kept_match": old["edges_kept"] == row["edges_kept"],
        }
    return table


def _headline_key(runs: list[dict[str, Any]]) -> Optional[str]:
    """The acceptance cell: nocomm / rcm / P=16 at the largest measured scale."""
    for scale in reversed(SCALE_ORDER):
        for row in runs:
            if (
                row["filter"] == "nocomm"
                and row["scale"] == scale
                and row["ordering"] == "rcm"
                and row["n_partitions"] == 16
            ):
                return _key(row)
    return None


def check_regression(
    runs: list[dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate on the committed baseline, normalized for hardware speed.

    Absolute wall-clock measured on the committing machine is meaningless on
    a CI runner of a different class, so the gated quantity is the *pipeline
    overhead ratio*: the headline nocomm/rcm/P16 time divided by the same
    run's sequential/rcm/P1 time at the same scale.  Machine speed cancels;
    what remains is how much the parallel pipeline costs on top of one
    kernel pass — exactly what this PR optimises.  Absolute times are
    printed for information.
    """
    committed_runs = {_key(r): r for r in committed.get("runs", [])}
    fresh = {_key(r): r for r in runs}
    shared = [k for k in fresh if k in committed_runs]
    headline = _headline_key([fresh[k] for k in shared])
    if headline is None:
        print("check: no shared nocomm/rcm/P16 cell between fresh and committed runs", file=sys.stderr)
        return 2
    scale = headline.split("/")[1]
    seq_key = f"sequential/{scale}/rcm/P1"
    if seq_key not in fresh or seq_key not in committed_runs:
        print(f"check: missing {seq_key} cell needed for normalization", file=sys.stderr)
        return 2
    old_abs, new_abs = committed_runs[headline]["seconds"], fresh[headline]["seconds"]
    old_ratio = old_abs / committed_runs[seq_key]["seconds"]
    new_ratio = new_abs / fresh[seq_key]["seconds"]
    rel = new_ratio / old_ratio if old_ratio else float("inf")
    print(
        f"check: {headline}: committed {old_abs:.4f}s, fresh {new_abs:.4f}s "
        f"(absolute, informational)"
    )
    print(
        f"check: overhead vs {seq_key}: committed {old_ratio:.2f}x, "
        f"fresh {new_ratio:.2f}x, relative {rel:.2f}"
    )
    if rel > 1.0 + threshold:
        print(
            f"check: FAIL — end-to-end nocomm 16P pipeline overhead regressed "
            f"{(rel - 1.0) * 100:.0f}% (> {threshold * 100:.0f}% allowed)",
            file=sys.stderr,
        )
        return 1
    print("check: OK")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI grid (2 scales, 2 orderings)")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_pipeline.json, or "
        "bench_pipeline_fresh.json when --check is given so the committed "
        "baseline is never clobbered by a check run)",
    )
    parser.add_argument("--label", default="index-native", help="label for this pipeline variant")
    parser.add_argument(
        "--merge-baseline",
        metavar="FILE",
        help="embed a previously measured bench file as the 'baseline' section and emit speedups",
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare the fresh nocomm/rcm/P16 time against a committed bench file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_pipeline_fresh.json" if args.check else "BENCH_pipeline.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        # Load before writing: --out and --check may still name the same file.
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    runs = run_grid(args.quick)

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "runs": runs,
    }
    if args.merge_baseline:
        with open(args.merge_baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        payload["baseline"] = {"label": baseline.get("label", "baseline"), "runs": baseline["runs"]}
        payload["speedup"] = _speedup_table(baseline["runs"], runs)
        headline = _headline_key(runs)
        if headline and headline in payload["speedup"]:
            print(f"headline {headline}: {payload['speedup'][headline]['speedup']}x")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    if committed is not None:
        return check_regression(runs, committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
