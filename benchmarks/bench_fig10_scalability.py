"""Figure 10 — scalability of the three samplers on the small and large networks.

Paper claims:
* random walk is the fastest and the most scalable filter;
* chordal sampling without communication is also very scalable and always
  cheaper than the with-communication variant;
* the with-communication variant loses scalability on the small network as the
  processor count grows (the YNG curve turns upward), and on the large network
  costs up to ~2× the communication-free version at low processor counts.

Times are produced by the cost model from exactly measured per-rank work (the
paper's absolute cluster seconds are not reproducible offline; the curve
shapes are — see repro.parallel.timing).
"""

from __future__ import annotations

from repro.pipeline import fig10_scalability, format_series


def test_fig10_scalability(benchmark, once):
    out = once(benchmark, fig10_scalability)

    for label in ("small", "large"):
        meta = out["meta"][label]
        series = out["series"][label]
        print()
        print(
            format_series(
                series,
                x_label="processors",
                title=(
                    f"Figure 10 ({label}: {meta['dataset']}, |V|={meta['n_vertices']}, "
                    f"|E|={meta['n_edges']}): simulated execution time [s]"
                ),
            )
        )

    procs = out["processor_counts"]
    for label in ("small", "large"):
        series = out["series"][label]
        for p in procs:
            # random walk fastest; no-comm never meaningfully slower than with-comm
            assert series["random_walk"][p] <= series["chordal_nocomm"][p] + 1e-9
            assert series["chordal_nocomm"][p] <= series["chordal_comm"][p] * 1.02 + 1e-3
        # the communication-free variant scales (64P faster than 1P)
        assert series["chordal_nocomm"][max(procs)] < series["chordal_nocomm"][1]

    # with-communication on the small network deteriorates at high processor counts
    small_comm = out["series"]["small"]["chordal_comm"]
    assert small_comm[max(procs)] > min(small_comm.values())
