"""Ablation benches for the design choices listed in DESIGN.md §6.

Not figures of the paper, but the knobs the paper fixes without exploring:
the MCODE score threshold, the data-distribution (partitioner) choice, how
"quasi" the quasi-chordal outputs really are, and how each filter treats hub
genes (the property structural samplers optimise for).
"""

from __future__ import annotations

from repro.pipeline import format_table
from repro.pipeline.ablation import (
    hub_retention_study,
    mcode_threshold_sweep,
    partitioner_ablation,
    quasi_chordality_study,
)


def test_ablation_mcode_threshold(benchmark, once):
    out = once(benchmark, mcode_threshold_sweep)
    rows = out["rows"]
    print()
    print(format_table(rows, title=f"MCODE score threshold sweep ({out['dataset']})"))
    counts = [r["filtered_clusters"] for r in rows]
    assert counts == sorted(counts, reverse=True)
    # the paper's 3.0 threshold keeps every biologically relevant cluster found at 2.0
    by_threshold = {r["min_score"]: r for r in rows}
    if 2.0 in by_threshold and 3.0 in by_threshold:
        assert by_threshold[3.0]["filtered_relevant"] >= by_threshold[2.0]["filtered_relevant"] - 1


def test_ablation_partitioner(benchmark, once):
    out = once(benchmark, partitioner_ablation)
    rows = out["rows"]
    print()
    print(format_table(rows, title=f"Partitioner ablation ({out['dataset']}, {out['n_partitions']} parts)"))
    for row in rows:
        assert row["duplicates"] <= row["border_edges"]
    bfs = next((r for r in rows if r["partitioner"] == "bfs"), None)
    block = next((r for r in rows if r["partitioner"] == "block"), None)
    if bfs and block:
        # locality-aware partitioning produces far fewer border edges
        assert bfs["border_edges"] <= block["border_edges"]


def test_ablation_hub_retention(benchmark, once):
    out = once(benchmark, hub_retention_study)
    rows = out["rows"]
    print()
    print(format_table(rows, title=f"Hub retention after filtering ({out['dataset']}, top {out['k']})"))
    for row in rows:
        assert 0.0 <= row["hub_retention"] <= 1.0
    # the chordal filter retains hub identity at least as well as the random walk
    for measure in {r["measure"] for r in rows}:
        chordal = next(r for r in rows if r["measure"] == measure and r["filter"] == "chordal")
        walk = next(r for r in rows if r["measure"] == measure and r["filter"] == "random_walk")
        assert chordal["hub_retention"] >= walk["hub_retention"] - 0.2


def test_ablation_quasi_chordality(benchmark, once):
    out = once(benchmark, quasi_chordality_study)
    rows = out["rows"]
    print()
    print(format_table(
        rows,
        columns=["variant", "processors", "is_chordal", "chordality_deficit", "n_long_cycles",
                 "max_cycle_length", "partitions_chordal", "border_edges", "duplicate_border_edges"],
        title=f"Quasi-chordality of the parallel outputs ({out['dataset']})",
    ))
    assert rows[0]["is_chordal"] is True  # sequential reference
    for row in rows:
        if row["variant"].startswith("nocomm") and row["partitions_chordal"] is not None:
            # only border edges can break chordality
            assert row["partitions_chordal"] == row["n_partitions"]
