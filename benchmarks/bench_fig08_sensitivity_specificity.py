"""Figure 8 — sensitivity and specificity of node- vs edge-overlap matching.

Paper claim: classifying matched clusters into TP/FP/FN/TN quadrants (AEES 3.0
× 50% overlap) shows node-overlap matching to be highly sensitive but
unspecific; edge-overlap matching is the less sensitive criterion.
(The paper additionally reports higher specificity for edge overlap — a
finding its authors call counterintuitive; see EXPERIMENTS.md for how the
synthetic data reproduces the sensitivity contrast but not that part.)
"""

from __future__ import annotations

from repro.pipeline import fig08_sensitivity_specificity, format_table


def test_fig08_sensitivity_specificity(benchmark, once):
    out = once(benchmark, fig08_sensitivity_specificity)
    node = out["node_overlap"]
    edge = out["edge_overlap"]

    print()
    rows = [
        {"criterion": "node overlap", **node},
        {"criterion": "edge overlap", **edge},
    ]
    print(format_table(rows, columns=["criterion", "TP", "FP", "FN", "TN", "sensitivity", "specificity"],
                       title="Figure 8: quadrant counts and rates"))

    assert node["TP"] + node["FP"] + node["FN"] + node["TN"] > 0
    # node overlap: the more sensitive criterion (paper: "high sensitivity")
    assert node["sensitivity"] >= edge["sensitivity"]
    # node overlap: low specificity (many dense noise clusters survive with
    # high node overlap)
    assert node["specificity"] <= 0.5
