"""Figure 11 — cluster consistency between the sequential (1P) and 64P runs.

Paper claims (H0c): running the communication-free chordal filter on 64
processors keeps fewer edges than the sequential run, but the clusters and
their overlap with the original network are comparable, the high-AEES clusters
are maintained, and both runs identify the same new cluster.
"""

from __future__ import annotations

from repro.pipeline import fig11_parallel_consistency, format_table


def test_fig11_parallel_consistency(benchmark, once):
    out = once(benchmark, fig11_parallel_consistency)

    print()
    for network, rows in out["top_clusters"].items():
        print(format_table(
            rows,
            columns=["network", "cluster", "size", "aees", "max_score"],
            title=f"Figure 11 (right): clusters with AEES > 3.0 — {network}",
        ))
        print()
    for p, points in out["overlap_points"].items():
        kept = [pt for pt in points if not pt["is_new"]]
        print(f"{p}P: {len(kept)} clusters overlap the original network, "
              f"{len(points) - len(kept)} newly found")

    processor_counts = sorted(out["overlap_points"])
    low, high = processor_counts[0], processor_counts[-1]
    # more processors -> fewer edges kept
    assert out[f"edges_kept_{high}P"] <= out[f"edges_kept_{low}P"]
    # the high-AEES clusters are not lost by parallelisation
    if out["top_clusters"][f"{low}P"]:
        assert out["top_clusters"][f"{high}P"]
    # both runs still find clusters overlapping the original network
    for p in processor_counts:
        assert any(not pt["is_new"] for pt in out["overlap_points"][p])
