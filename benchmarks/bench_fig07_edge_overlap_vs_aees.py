"""Figure 7 — edge overlap vs AEES for all four networks and four orderings.

Companion of Figure 6 with the edge-overlap matching criterion; the paper
observes that edge overlap is the better indicator of noisy clusters.
"""

from __future__ import annotations

from repro.pipeline import fig06_node_overlap_vs_aees, fig07_edge_overlap_vs_aees, format_table


def test_fig07_edge_overlap_vs_aees(benchmark, once):
    out = once(benchmark, fig07_edge_overlap_vs_aees)
    points = out["points"]

    print()
    print(format_table(points[:40], columns=["dataset", "filter", "aees", "overlap"],
                       title="Figure 7 (excerpt): edge overlap vs AEES"))

    assert points
    assert all(0.0 <= p["overlap"] <= 1.0 for p in points)

    # Cross-check against Figure 6: edge overlap of a match can never exceed
    # node overlap by construction wildly; on average edge overlap is the
    # stricter measure because the filter removes edges but never nodes.
    node_points = fig06_node_overlap_vs_aees()["points"]
    mean_edge = sum(p["overlap"] for p in points) / len(points)
    mean_node = sum(p["overlap"] for p in node_points) / len(node_points)
    print(f"mean node overlap {mean_node:.3f} vs mean edge overlap {mean_edge:.3f}")
    assert mean_edge <= mean_node + 0.05
