"""Micro-benchmarks of the computational kernels (wall-clock, multiple rounds).

These are conventional pytest-benchmark measurements of the building blocks —
the Dearing–Shier–Warner extraction, chordality recognition, MCODE, Pearson
thresholding and the partitioners — so that performance regressions in the
hot paths are visible independently of the figure-level experiments.
"""

from __future__ import annotations

import pytest

from repro.clustering import mcode_clusters
from repro.core import chordal_subgraph_edges, is_chordal, maximal_chordal_subgraph
from repro.core.chordal import (
    chordal_subgraph_edge_indices,
    maximum_cardinality_search,
    reference_chordal_subgraph_edges,
    reference_maximum_cardinality_search,
)
from repro.core.random_walk import random_walk_edges
from repro.expression import correlated_pairs, make_study
from repro.graph import CSRGraph, correlation_like_graph, partition_graph, rcm_order
from repro.parallel.rng import rank_rngs


@pytest.fixture(scope="module")
def kernel_graph():
    return correlation_like_graph(
        n_modules=10, module_size=12, n_background=900, p_noise=0.002, seed=5
    )


@pytest.fixture(scope="module")
def kernel_csr(kernel_graph):
    return CSRGraph.from_graph(kernel_graph)


@pytest.fixture(scope="module")
def kernel_study():
    return make_study("YNG", scale=0.05)


def test_kernel_chordal_extraction(benchmark, kernel_graph):
    edges = benchmark(chordal_subgraph_edges, kernel_graph)
    assert edges


def test_kernel_chordal_extraction_reference(benchmark, kernel_graph):
    # The seed label-and-set implementation; compare against
    # test_kernel_chordal_extraction for the CSR-port speedup.
    edges = benchmark(reference_chordal_subgraph_edges, kernel_graph)
    assert edges


def test_kernel_chordal_extraction_csr_only(benchmark, kernel_csr):
    # The int-indexed DSW kernel on a prebuilt CSR view (no conversion cost).
    pairs = benchmark(chordal_subgraph_edge_indices, kernel_csr)
    assert pairs


def test_kernel_csr_conversion(benchmark, kernel_graph):
    csr = benchmark(CSRGraph.from_graph, kernel_graph)
    assert csr.n_edges == kernel_graph.n_edges


def test_kernel_mcs(benchmark, kernel_graph):
    order = benchmark(maximum_cardinality_search, kernel_graph)
    assert len(order) == kernel_graph.n_vertices


def test_kernel_mcs_reference(benchmark, kernel_graph):
    # The seed O(V²) selection scan; compare against test_kernel_mcs.
    order = benchmark(reference_maximum_cardinality_search, kernel_graph)
    assert len(order) == kernel_graph.n_vertices


def test_kernel_chordality_recognition(benchmark, kernel_graph):
    sub = maximal_chordal_subgraph(kernel_graph)
    assert benchmark(is_chordal, sub)


def test_kernel_mcode(benchmark, kernel_graph):
    clusters = benchmark(mcode_clusters, kernel_graph)
    assert clusters


def test_kernel_random_walk(benchmark, kernel_graph):
    rng = rank_rngs(0, 1)[0]
    edges, selections = benchmark(random_walk_edges, kernel_graph, rng)
    assert selections > 0


def test_kernel_rcm_ordering(benchmark, kernel_graph):
    order = benchmark(rcm_order, kernel_graph)
    assert len(order) == kernel_graph.n_vertices


def test_kernel_block_partition(benchmark, kernel_graph):
    part = benchmark(partition_graph, kernel_graph, 16, "block")
    assert part.n_parts == 16


def test_kernel_correlation_thresholding(benchmark, kernel_study):
    pairs = benchmark(correlated_pairs, kernel_study.matrix)
    assert pairs
