#!/usr/bin/env python
"""Micro-benchmarks of the computational kernels (wall-clock, multiple rounds).

These are conventional pytest-benchmark measurements of the building blocks —
the Dearing–Shier–Warner extraction, chordality recognition, MCODE, Pearson
thresholding and the partitioners — so that performance regressions in the
hot paths are visible independently of the figure-level experiments.

Run standalone, the module also measures the kernel *tiers* — the ``numpy``
implementations against the compiled ``jit`` tier (``repro.kernels``) — and
writes ``BENCH_kernels.json``::

    PYTHONPATH=src python benchmarks/bench_kernels.py                 # full grid
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick         # CI grid
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick \
        --check BENCH_kernels.json --threshold 0.25                   # CI gate

Each cell times one kernel family (MCS ordering, greedy / strict DSW, MCODE
weights + clusters, multi-source bitset BFS) on both tiers, asserts the
outputs are identical, and records the one-off jit compile time separately
(``compile_seconds``, from ``warm_kernels()``) so steady-state rows are not
polluted by compilation. Without numba only the ``numpy`` rows are measured
and the file says ``"jit_available": false``.

``--check`` gates on the per-kernel ``jit_seconds / numpy_seconds`` ratio:
both tiers run in the same process on the same machine, so hardware speed
cancels. When the committed baseline has jit rows the fresh ratio must not
regress more than ``--threshold`` against it; when the baseline was produced
without numba (no jit rows) the fresh jit tier must simply not be slower
than numpy by more than the threshold. A fresh run without numba checks
only that the numpy rows exist.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Callable, Optional

import numpy as np
import pytest

from repro.clustering import mcode_clusters
from repro.clustering.mcode import mcode_clusters_indices, mcode_vertex_weights_indices
from repro.core import chordal_subgraph_edges, is_chordal, maximal_chordal_subgraph
from repro.core.chordal import (
    chordal_subgraph_edge_indices,
    maximum_cardinality_search,
    mcs_order_indices,
    reference_chordal_subgraph_edges,
    reference_maximum_cardinality_search,
)
from repro.core.random_walk import random_walk_edges
from repro.expression import correlated_pairs, make_study
from repro.graph import CSRGraph, correlation_like_graph, partition_graph, rcm_order
from repro.kernels import jit_available, warm_kernels
from repro.ontology.generator import make_go_dag
from repro.ontology.go_dag import distance_batch_arrays
from repro.parallel.rng import rank_rngs


@pytest.fixture(scope="module")
def kernel_graph():
    return correlation_like_graph(
        n_modules=10, module_size=12, n_background=900, p_noise=0.002, seed=5
    )


@pytest.fixture(scope="module")
def kernel_csr(kernel_graph):
    return CSRGraph.from_graph(kernel_graph)


@pytest.fixture(scope="module")
def kernel_study():
    return make_study("YNG", scale=0.05)


def test_kernel_chordal_extraction(benchmark, kernel_graph):
    edges = benchmark(chordal_subgraph_edges, kernel_graph)
    assert edges


def test_kernel_chordal_extraction_reference(benchmark, kernel_graph):
    # The seed label-and-set implementation; compare against
    # test_kernel_chordal_extraction for the CSR-port speedup.
    edges = benchmark(reference_chordal_subgraph_edges, kernel_graph)
    assert edges


def test_kernel_chordal_extraction_csr_only(benchmark, kernel_csr):
    # The int-indexed DSW kernel on a prebuilt CSR view (no conversion cost).
    pairs = benchmark(chordal_subgraph_edge_indices, kernel_csr)
    assert pairs


def test_kernel_csr_conversion(benchmark, kernel_graph):
    csr = benchmark(CSRGraph.from_graph, kernel_graph)
    assert csr.n_edges == kernel_graph.n_edges


def test_kernel_mcs(benchmark, kernel_graph):
    order = benchmark(maximum_cardinality_search, kernel_graph)
    assert len(order) == kernel_graph.n_vertices


def test_kernel_mcs_reference(benchmark, kernel_graph):
    # The seed O(V²) selection scan; compare against test_kernel_mcs.
    order = benchmark(reference_maximum_cardinality_search, kernel_graph)
    assert len(order) == kernel_graph.n_vertices


def test_kernel_chordality_recognition(benchmark, kernel_graph):
    sub = maximal_chordal_subgraph(kernel_graph)
    assert benchmark(is_chordal, sub)


def test_kernel_mcode(benchmark, kernel_graph):
    clusters = benchmark(mcode_clusters, kernel_graph)
    assert clusters


def test_kernel_random_walk(benchmark, kernel_graph):
    rng = rank_rngs(0, 1)[0]
    edges, selections = benchmark(random_walk_edges, kernel_graph, rng)
    assert selections > 0


def test_kernel_rcm_ordering(benchmark, kernel_graph):
    order = benchmark(rcm_order, kernel_graph)
    assert len(order) == kernel_graph.n_vertices


def test_kernel_block_partition(benchmark, kernel_graph):
    part = benchmark(partition_graph, kernel_graph, 16, "block")
    assert part.n_parts == 16


def test_kernel_correlation_thresholding(benchmark, kernel_study):
    pairs = benchmark(correlated_pairs, kernel_study.matrix)
    assert pairs


# ----------------------------------------------------------------------
# standalone tier benchmark (numpy vs jit) — `python bench_kernels.py`
# ----------------------------------------------------------------------

SCHEMA = "bench_kernels/v1"


def _digest(value: Any) -> str:
    if isinstance(value, np.ndarray):
        blob = value.tobytes()
    else:
        blob = repr(value).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def build_tier_workload(quick: bool) -> dict[str, Callable[[str], Any]]:
    """One callable per kernel family; each takes the tier name and returns
    the kernel's full output (digested for the cross-tier identity check)."""
    graph = correlation_like_graph(
        n_modules=6 if quick else 12,
        module_size=12,
        n_background=400 if quick else 1400,
        p_noise=0.002,
        seed=5,
    )
    csr = CSRGraph.from_graph(graph)
    dag = make_go_dag(depth=7 if quick else 9, branching=3, seed=3)
    term_csr = dag.term_index().term_csr
    n_terms = term_csr.indptr.shape[0] - 1
    rng = np.random.default_rng(17)
    n_queries = 3000 if quick else 30000
    qa = rng.integers(n_terms, size=n_queries).astype(np.int64)
    qb = rng.integers(n_terms, size=n_queries).astype(np.int64)

    def cluster_digest(tier: str) -> Any:
        clusters = mcode_clusters_indices(csr, kernels=tier)
        return [(c.seed, c.members, c.score) for c in clusters]

    return {
        "mcs_order": lambda tier: mcs_order_indices(csr, kernels=tier),
        "dsw_greedy": lambda tier: chordal_subgraph_edge_indices(csr, kernels=tier),
        "dsw_strict": lambda tier: chordal_subgraph_edge_indices(
            csr, strict_order=True, kernels=tier
        ),
        "mcode_weights": lambda tier: mcode_vertex_weights_indices(csr, kernels=tier),
        "mcode_clusters": cluster_digest,
        "bitset_bfs": lambda tier: distance_batch_arrays(
            qa, qb, term_csr.indptr, term_csr.indices, kernels=tier
        ),
    }


def run_tier_grid(quick: bool, verbose: bool = True) -> dict[str, Any]:
    workload = build_tier_workload(quick)
    tiers = ["numpy"] + (["jit"] if jit_available() else [])
    # One-off compile cost, reported separately so the timed rows below are
    # steady-state (`warm_kernels` drives every jit kernel once on a toy graph).
    compile_seconds = {k: round(v, 4) for k, v in warm_kernels().items()} if jit_available() else {}
    repeats = 3 if quick else 5
    runs: list[dict[str, Any]] = []
    for name, cell in workload.items():
        digests: dict[str, str] = {}
        for tier in tiers:
            best = float("inf")
            out: Any = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                out = cell(tier)
                best = min(best, time.perf_counter() - t0)
            digests[tier] = _digest(out)
            runs.append(
                {"kernel": name, "tier": tier, "repeats": repeats, "seconds": round(best, 6)}
            )
            if verbose:
                print(f"{name:>14} {tier:>6} {best:10.4f}s  digest={digests[tier]}", flush=True)
        if "jit" in digests and digests["jit"] != digests["numpy"]:
            raise AssertionError(f"{name}: jit output differs from numpy output")
    table: dict[str, dict[str, Any]] = {}
    by_kernel: dict[str, dict[str, float]] = {}
    for row in runs:
        by_kernel.setdefault(row["kernel"], {})[row["tier"]] = row["seconds"]
    for name, cells in by_kernel.items():
        entry: dict[str, Any] = {"numpy_seconds": cells["numpy"]}
        if "jit" in cells:
            entry["jit_seconds"] = cells["jit"]
            entry["speedup"] = round(cells["numpy"] / cells["jit"], 3) if cells["jit"] else None
            entry["compile_seconds"] = compile_seconds.get(name)
        table[name] = entry
    return {"runs": runs, "speedup": table, "compile_seconds": compile_seconds}


def check_regression(
    fresh_table: dict[str, dict[str, Any]], committed: dict[str, Any], threshold: float
) -> int:
    """Gate on the committed baseline, normalized for hardware speed."""
    fresh_jit = {k: v for k, v in fresh_table.items() if "jit_seconds" in v}
    if not fresh_jit:
        if not fresh_table:
            print("check: FAIL — no kernels measured", file=sys.stderr)
            return 1
        print("check: numba not available — numpy rows measured, jit gate skipped")
        return 0
    committed_table = committed.get("speedup", {})
    failed = False
    for name, entry in sorted(fresh_jit.items()):
        new_ratio = entry["jit_seconds"] / entry["numpy_seconds"]
        old = committed_table.get(name, {})
        if "jit_seconds" in old and "numpy_seconds" in old:
            old_ratio = old["jit_seconds"] / old["numpy_seconds"]
            rel = new_ratio / old_ratio if old_ratio else float("inf")
            print(
                f"check: {name}: jit/numpy ratio committed {old_ratio:.4f}, "
                f"fresh {new_ratio:.4f}, relative {rel:.2f}"
            )
            ok = rel <= 1.0 + threshold
        else:
            # Baseline produced without numba: require jit at least on par
            # with numpy (within the threshold) rather than vs a prior ratio.
            print(
                f"check: {name}: no committed jit row; fresh jit/numpy ratio "
                f"{new_ratio:.4f} (must be <= {1.0 + threshold:.2f})"
            )
            ok = new_ratio <= 1.0 + threshold
        if not ok:
            print(f"check: FAIL — {name} jit tier regressed", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("check: OK")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="kernel tier benchmark (numpy vs jit)")
    parser.add_argument("--quick", action="store_true", help="small CI grid")
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_kernels.json, or "
        "bench_kernels_fresh.json when --check is given)",
    )
    parser.add_argument("--label", default="kernel-tiers", help="label for this variant")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="compare fresh per-kernel jit/numpy ratios against a committed bench file",
    )
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed regression for --check")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = "bench_kernels_fresh.json" if args.check else "BENCH_kernels.json"
    committed: Optional[dict[str, Any]] = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)

    grid = run_tier_grid(args.quick)
    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "jit_available": jit_available(),
        "runs": grid["runs"],
        "speedup": grid["speedup"],
        "compile_seconds": grid["compile_seconds"],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(grid['runs'])} runs)")
    if committed is not None:
        return check_regression(grid["speedup"], committed, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
