"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on environments whose packaging toolchain
(setuptools < 64 + missing ``wheel``) cannot perform PEP 660 editable installs
and falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
