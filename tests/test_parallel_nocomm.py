"""Unit tests for the communication-free parallel chordal sampler."""

from __future__ import annotations

import pytest

from repro.core import is_chordal
from repro.core.parallel_nocomm import (
    admit_border_edges_no_communication,
    local_chordal_phase,
    parallel_chordal_nocomm_filter,
)
from repro.graph import Graph, correlation_like_graph, edge_key, erdos_renyi_graph, partition_graph


@pytest.fixture(scope="module")
def network():
    return correlation_like_graph(n_modules=4, module_size=8, n_background=80, p_noise=0.004, seed=17)


class TestLocalPhase:
    def test_local_phase_returns_chordal_edges(self, network):
        part = partition_graph(network, 3, method="block")
        sub = part.part_subgraph(0)
        edges, work = local_chordal_phase(sub)
        assert is_chordal(Graph(edges=edges, vertices=sub.vertices()))
        assert work.edges_examined == sub.n_edges
        assert work.max_degree >= 1

    def test_local_phase_respects_global_order_restriction(self, network):
        part = partition_graph(network, 2, method="block")
        sub = part.part_subgraph(1)
        order = list(reversed(network.vertices()))
        edges, _ = local_chordal_phase(sub, order=order)
        assert is_chordal(Graph(edges=edges, vertices=sub.vertices()))


class TestBorderAdmission:
    def test_paper_figure1_example(self):
        """Reproduce the paper's Figure 1 border rule on a hand-built case.

        The bottom partition holds vertices {6, 8} with the chordal edge
        (6, 8); the external vertex 4 has border edges to both, so the pair is
        admitted.  The external vertex 2 only reaches vertex 6, so nothing is
        admitted for it.
        """
        part_vertices = {"6", "8"}
        local_chordal = {edge_key("6", "8")}
        border = [edge_key("4", "6"), edge_key("4", "8"), edge_key("2", "6")]
        admitted = admit_border_edges_no_communication(border, part_vertices, local_chordal)
        assert set(admitted) == {edge_key("4", "6"), edge_key("4", "8")}

    def test_no_triangle_no_admission(self):
        part_vertices = {"2", "4"}
        local_chordal = set()  # (2,4) is NOT a chordal edge
        border = [edge_key("6", "2"), edge_key("6", "4")]
        assert admit_border_edges_no_communication(border, part_vertices, local_chordal) == []

    def test_single_border_edge_never_admitted(self):
        admitted = admit_border_edges_no_communication(
            [edge_key("x", "a")], {"a"}, {edge_key("a", "b")}
        )
        assert admitted == []

    def test_edges_outside_partition_ignored(self):
        admitted = admit_border_edges_no_communication(
            [edge_key("x", "y")], {"a"}, set()
        )
        assert admitted == []


class TestParallelFilter:
    @pytest.mark.parametrize("n_partitions", [1, 2, 4, 8])
    def test_output_is_subgraph(self, network, n_partitions):
        result = parallel_chordal_nocomm_filter(network, n_partitions)
        for u, v in result.graph.iter_edges():
            assert network.has_edge(u, v)
        assert set(result.graph.vertices()) == set(network.vertices())

    def test_single_partition_matches_sequential_kernel(self, network):
        result = parallel_chordal_nocomm_filter(network, 1)
        assert is_chordal(result.graph)
        assert result.n_border_edges == 0
        assert result.duplicate_border_edges == 0

    def test_local_edges_within_partitions_are_chordal(self, network):
        result = parallel_chordal_nocomm_filter(network, 4, partition_method="block")
        # restricting the filtered graph to any single partition must be chordal:
        # border edges are the only possible source of long cycles.
        part = partition_graph(network, 4, method="block", order=result.graph.vertices())
        for idx in range(4):
            sub = result.graph.subgraph(part.parts[idx])
            assert is_chordal(sub)

    def test_duplicates_bounded_by_border_edges(self, network):
        result = parallel_chordal_nocomm_filter(network, 8, partition_method="hash")
        assert 0 <= result.duplicate_border_edges <= result.n_border_edges

    def test_accepted_border_edges_are_border_edges(self, network):
        result = parallel_chordal_nocomm_filter(network, 4, partition_method="hash")
        border = set(result.border_edges)
        for e in result.accepted_border_edges:
            assert e in border

    def test_more_partitions_keep_fewer_or_equal_edges(self, network):
        few = parallel_chordal_nocomm_filter(network, 2)
        many = parallel_chordal_nocomm_filter(network, 16)
        assert many.n_edges_kept <= few.n_edges_kept + 5  # small slack for border re-adds

    def test_repair_cycles_removes_long_border_cycles(self, network):
        raw = parallel_chordal_nocomm_filter(network, 6, partition_method="hash", repair_cycles=False)
        repaired = parallel_chordal_nocomm_filter(network, 6, partition_method="hash", repair_cycles=True)
        raw_sizes = raw.extra["border_cycle_sizes"]
        repaired_sizes = repaired.extra["border_cycle_sizes"]
        assert repaired.n_edges_kept <= raw.n_edges_kept
        if raw_sizes and max(raw_sizes) > 3:
            assert not repaired_sizes or max(repaired_sizes) <= max(raw_sizes)

    def test_rank_work_per_partition(self, network):
        result = parallel_chordal_nocomm_filter(network, 4)
        assert len(result.rank_work) == 4
        assert all(w.messages == 0 for w in result.rank_work)

    def test_invalid_partition_count(self, network):
        with pytest.raises(ValueError):
            parallel_chordal_nocomm_filter(network, 0)

    def test_explicit_partition_object(self, network):
        part = partition_graph(network, 3, method="bfs")
        result = parallel_chordal_nocomm_filter(network, 3, partition=part)
        assert result.n_partitions == 3

    def test_simulated_time_positive_and_decreasing_with_partitions(self, network):
        one = parallel_chordal_nocomm_filter(network, 1)
        eight = parallel_chordal_nocomm_filter(network, 8)
        assert one.simulated_time > 0
        assert eight.simulated_time < one.simulated_time

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graph_edge_superset_of_partition_chordal(self, seed):
        g = erdos_renyi_graph(40, 0.15, seed=seed)
        result = parallel_chordal_nocomm_filter(g, 4, partition_method="hash")
        # every partition-internal chordal edge must appear in the result
        part = partition_graph(g, 4, method="hash")
        for idx in range(4):
            edges, _ = local_chordal_phase(part.part_subgraph(idx))
            for e in edges:
                assert result.graph.has_edge(*e)
