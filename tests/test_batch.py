"""Tests for the batched experiment engine (specs, hashing, cache, dedup)."""

from __future__ import annotations

import json

import pytest

from repro.pipeline import batch as b
from repro.pipeline.batch import BatchRunResult, RunSpec, run_batch


@pytest.fixture
def fake_driver(monkeypatch):
    """Install a cheap instrumented driver under the name 'fakefig'."""
    calls: list[dict] = []

    def driver(scale=None, ordering="natural", seed=0):
        calls.append({"scale": scale, "ordering": ordering, "seed": seed})
        return {"rows": [{"scale": scale, "ordering": ordering, "seed": seed}]}

    monkeypatch.setitem(b.DRIVERS, "fakefig", driver)
    return calls


class TestRunSpec:
    def test_create_normalises(self):
        spec = RunSpec.create("FIG04", "tiny", ordering="natural")
        assert spec.figure == "fig04"
        assert spec.scale == 0.02
        assert spec.params == ()

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            RunSpec.create("fig99", 0.1)

    def test_hash_stable_and_param_order_insensitive(self):
        a = RunSpec.create("fig04", 0.1, datasets=["YNG"], orderings=["rcm"])
        c = RunSpec.create("fig04", 0.1, orderings=["rcm"], datasets=["YNG"])
        assert a.spec_hash() == c.spec_hash()
        assert len(a.spec_hash()) == 16

    def test_hash_differs_across_axes(self):
        base = RunSpec.create("fig04", 0.1)
        assert base.spec_hash() != RunSpec.create("fig05", 0.1).spec_hash()
        assert base.spec_hash() != RunSpec.create("fig04", 0.2).spec_hash()
        assert base.spec_hash() != RunSpec.create("fig04", 0.1, ordering="rcm").spec_hash()

    def test_canonical_round_trip(self):
        spec = RunSpec.create("fig10", 0.05, ordering="rcm", processor_counts=[1, 2])
        again = RunSpec.from_canonical(spec.canonical())
        assert again.spec_hash() == spec.spec_hash()

    def test_parse_scale(self):
        assert b.parse_scale("tiny") == 0.02
        assert b.parse_scale("0.25") == 0.25
        with pytest.raises(ValueError):
            b.parse_scale("-1")


class TestEngine:
    def test_runs_and_caches(self, fake_driver, tmp_path):
        spec = RunSpec.create("fakefig", 0.5, ordering="rcm", seed=9)
        first = run_batch([spec], cache_dir=str(tmp_path))
        assert [r.status for r in first] == ["ran"]
        assert first[0].output == {"rows": [{"scale": 0.5, "ordering": "rcm", "seed": 9}]}
        assert len(fake_driver) == 1
        cache_files = list(tmp_path.glob("fakefig__*.json"))
        assert len(cache_files) == 1
        payload = json.loads(cache_files[0].read_text())
        assert payload["spec"]["figure"] == "fakefig"

        second = run_batch([spec], cache_dir=str(tmp_path))
        assert [r.status for r in second] == ["cached"]
        assert second[0].output == first[0].output
        assert len(fake_driver) == 1  # no re-run

    def test_force_reruns(self, fake_driver, tmp_path):
        spec = RunSpec.create("fakefig", 0.5, seed=1)
        run_batch([spec], cache_dir=str(tmp_path))
        run_batch([spec], cache_dir=str(tmp_path), force=True)
        assert len(fake_driver) == 2

    def test_duplicates_collapse(self, fake_driver):
        spec = RunSpec.create("fakefig", 0.5, seed=1)
        results = run_batch([spec, spec, spec], cache_dir=None)
        assert len(results) == 3
        assert len(fake_driver) == 1
        assert all(r.output == results[0].output for r in results)

    def test_derived_seeds_are_deterministic_and_distinct(self, fake_driver):
        specs = [
            RunSpec.create("fakefig", 0.5, ordering="natural"),
            RunSpec.create("fakefig", 0.5, ordering="rcm"),
        ]
        results = run_batch(specs, cache_dir=None, root_seed=42)
        seeds = [c["seed"] for c in fake_driver]
        assert len(set(seeds)) == 2  # independent streams per cell
        fake_driver.clear()
        again = run_batch(specs, cache_dir=None, root_seed=42)
        assert [c["seed"] for c in fake_driver] == seeds
        assert [r.output for r in again] == [r.output for r in results]

    def test_explicit_seed_wins(self, fake_driver):
        run_batch([RunSpec.create("fakefig", 0.5, seed=77)], cache_dir=None)
        assert fake_driver[0]["seed"] == 77

    def test_seed_rejected_for_seedless_driver(self):
        with pytest.raises(ValueError):
            run_batch([RunSpec.create("fig04", 0.02, seed=1)], cache_dir=None)

    def test_failures_are_reported_not_raised(self, monkeypatch, fake_driver):
        def boom(scale=None):
            raise RuntimeError("no data")

        monkeypatch.setitem(b.DRIVERS, "boomfig", boom)
        results = run_batch(
            [RunSpec.create("boomfig", 0.5), RunSpec.create("fakefig", 0.5, seed=0)],
            cache_dir=None,
        )
        assert [r.status for r in results] == ["failed", "ran"]
        assert "RuntimeError" in results[0].error

    def test_corrupt_cache_entry_is_rerun(self, fake_driver, tmp_path):
        spec = RunSpec.create("fakefig", 0.5, seed=1)
        run_batch([spec], cache_dir=str(tmp_path))
        path = next(tmp_path.glob("fakefig__*.json"))
        path.write_text("{not json")
        results = run_batch([spec], cache_dir=str(tmp_path))
        assert results[0].status == "ran"
        assert len(fake_driver) == 2

    def test_row_shape(self, fake_driver):
        (result,) = run_batch([RunSpec.create("fakefig", 0.5, seed=2)], cache_dir=None)
        row = result.row()
        assert row["figure"] == "fakefig"
        assert row["status"] == "ran"
        assert isinstance(result, BatchRunResult)

    def test_jsonify_handles_numpy_and_tuples(self):
        import numpy as np

        out = b._jsonify({"a": np.float64(1.5), "b": (1, 2), 3: {4: np.int32(7)}})
        assert out == {"a": 1.5, "b": [1, 2], "3": {"4": 7}}

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_batch([], jobs=0)

    def test_real_driver_smoke(self, tmp_path):
        """One real figure at tiny scale exercises the driver-kwarg plumbing."""
        from repro.pipeline import experiments as exp

        exp.clear_bundle_cache()
        (result,) = run_batch(
            [RunSpec.create("fig09", 0.02, ordering="high_degree")],
            cache_dir=str(tmp_path),
        )
        assert result.status == "ran"
        assert "best_improvement" in result.output
        (cached,) = run_batch(
            [RunSpec.create("fig09", 0.02, ordering="high_degree")],
            cache_dir=str(tmp_path),
        )
        assert cached.status == "cached"
        assert cached.output == result.output
        exp.clear_bundle_cache()
