"""Unit tests for the unified apply_filter front-end."""

from __future__ import annotations

import pytest

from repro.core import FILTERS, apply_filter, filter_names, is_chordal
from repro.graph import correlation_like_graph


@pytest.fixture(scope="module")
def network():
    return correlation_like_graph(n_modules=3, module_size=7, n_background=50, seed=31)


class TestDispatch:
    def test_chordal_sequential_when_one_partition(self, network):
        result = apply_filter(network, method="chordal", n_partitions=1)
        assert result.method == "chordal_sequential"
        assert is_chordal(result.graph)

    def test_chordal_parallel_when_many_partitions(self, network):
        result = apply_filter(network, method="chordal", n_partitions=4)
        assert result.method == "chordal_nocomm"
        assert result.n_partitions == 4

    def test_chordal_comm_dispatch(self, network):
        result = apply_filter(network, method="chordal_comm", n_partitions=4)
        assert result.method == "chordal_comm"

    def test_chordal_comm_single_partition_falls_back(self, network):
        result = apply_filter(network, method="chordal_comm", n_partitions=1)
        assert result.method == "chordal_sequential"

    def test_random_walk_dispatch(self, network):
        seq = apply_filter(network, method="random_walk", n_partitions=1, seed=3)
        par = apply_filter(network, method="random_walk", n_partitions=4, seed=3)
        assert seq.method == "random_walk_sequential"
        assert par.method == "random_walk"

    def test_aliases(self, network):
        assert apply_filter(network, method="rw", n_partitions=2, seed=0).method == "random_walk"
        assert apply_filter(network, method="qcs", n_partitions=2).method == "chordal_nocomm"

    def test_unknown_method_raises(self, network):
        with pytest.raises(KeyError):
            apply_filter(network, method="forest_fire")

    def test_filter_names_and_registry(self):
        assert set(filter_names()) <= set(FILTERS) | {"chordal", "chordal_comm", "random_walk"}
        assert "chordal" in FILTERS


class TestParameterForwarding:
    def test_ordering_forwarded(self, network):
        result = apply_filter(network, method="chordal", ordering="high_degree", n_partitions=2)
        assert result.ordering == "high_degree"

    def test_partition_method_forwarded(self, network):
        result = apply_filter(network, method="chordal", n_partitions=4, partition_method="hash")
        assert result.partition_method == "hash"

    def test_seed_forwarded_to_random_walk(self, network):
        a = apply_filter(network, method="random_walk", n_partitions=2, seed=11)
        b = apply_filter(network, method="random_walk", n_partitions=2, seed=11)
        assert a.graph == b.graph

    def test_irrelevant_kwargs_dropped_gracefully(self, network):
        # a seed passed to the chordal filter is ignored rather than rejected
        result = apply_filter(network, method="chordal", n_partitions=2, seed=5)
        assert result.method == "chordal_nocomm"

    def test_explicit_order_forwarded(self, network):
        order = list(reversed(network.vertices()))
        result = apply_filter(network, method="chordal", n_partitions=1, ordering=None, explicit_order=order)
        assert result.ordering == "explicit"
