"""Integration-level tests for the experiment pipeline (small scale)."""

from __future__ import annotations

import pytest

from repro.clustering import MCODEParams
from repro.core import is_chordal
from repro.pipeline import analyze_filter, cluster_network, format_table, prepare_dataset
from repro.pipeline.report import format_kv, format_scatter, format_series


class TestPrepareDataset:
    def test_bundle_contents(self, cre_bundle):
        assert cre_bundle.name == "CRE"
        assert cre_bundle.n_vertices > 0
        assert cre_bundle.n_edges > 0
        assert cre_bundle.original_clusters, "the original network should contain MCODE clusters"
        summary = cre_bundle.summary()
        assert summary["dataset"] == "CRE"
        assert summary["original_clusters"] == len(cre_bundle.original_clusters)

    def test_scorer_separates_modules_from_noise(self, cre_bundle):
        aees = [cre_bundle.scorer.cluster(c.subgraph).aees for c in cre_bundle.original_clusters]
        assert max(aees) >= 3.0
        assert min(aees) < 3.0

    def test_custom_mcode_params(self):
        bundle = prepare_dataset("YNG", scale=0.02, seed=5, mcode_params=MCODEParams(min_score=2.0))
        assert bundle.mcode_params.min_score == 2.0


class TestAnalyzeFilter:
    def test_chordal_analysis_structure(self, cre_bundle):
        analysis = analyze_filter(cre_bundle, method="chordal", ordering="natural", n_partitions=1)
        assert is_chordal(analysis.result.graph)
        assert analysis.label.startswith("CRE/chordal")
        assert analysis.label.endswith("/natural/1P")
        assert len(analysis.matches) == len(analysis.clusters)
        assert len(analysis.scored_by_node) == len(analysis.matches)
        assert analysis.node_counts.total == len(analysis.matches)
        summary = analysis.summary()
        assert summary["clusters"] == len(analysis.clusters)

    def test_chordal_preserves_most_high_scoring_clusters(self, cre_bundle):
        analysis = analyze_filter(cre_bundle, method="chordal", ordering="high_degree", n_partitions=1)
        original_relevant = [
            c
            for c in cre_bundle.original_clusters
            if cre_bundle.scorer.cluster(c.subgraph).aees >= 3.0
        ]
        filtered_relevant = analysis.high_scoring_clusters()
        assert len(filtered_relevant) >= max(1, len(original_relevant) // 2)

    def test_random_walk_finds_far_fewer_clusters(self, cre_bundle):
        chordal = analyze_filter(cre_bundle, method="chordal", ordering="natural", n_partitions=4)
        walk = analyze_filter(cre_bundle, method="random_walk", ordering=None, n_partitions=4, seed=0)
        assert len(walk.clusters) <= len(chordal.clusters) // 4

    def test_parallel_partitions_recorded(self, cre_bundle):
        analysis = analyze_filter(cre_bundle, method="chordal", ordering="natural", n_partitions=8)
        assert analysis.result.n_partitions == 8
        assert analysis.result.method == "chordal_nocomm"

    def test_cluster_aees_alignment(self, cre_bundle):
        analysis = analyze_filter(cre_bundle, method="chordal", ordering="rcm", n_partitions=1)
        assert len(analysis.cluster_aees()) == len(analysis.clusters)


class TestClusterNetwork:
    def test_cluster_network_uses_default_params(self, cre_bundle):
        clusters = cluster_network(cre_bundle.network, source="test")
        assert all(c.score >= 3.0 for c in clusters)
        assert all(c.source == "test" for c in clusters)


class TestReportFormatting:
    def test_format_table_alignment_and_missing_cells(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "2.346" in text
        assert "-" in text.splitlines()[-1]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series({"fast": {1: 0.5, 2: 0.25}, "slow": {1: 1.0}}, x_label="P")
        assert "P" in text and "fast" in text and "slow" in text

    def test_format_scatter(self):
        text = format_scatter([(0.1, 0.9, "C1")], x_label="aees", y_label="overlap")
        assert "C1" in text

    def test_format_kv(self):
        text = format_kv({"vertices": 10, "density": 0.12345})
        assert "vertices" in text and "0.123" in text
