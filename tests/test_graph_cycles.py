"""Unit tests for triangle/cycle utilities."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    average_clustering,
    break_cycles,
    complete_graph,
    count_triangles,
    cycle_basis_sizes,
    cycle_graph,
    edge_in_triangle,
    find_chordless_cycle,
    has_cycle,
    local_clustering,
    path_graph,
    triangles_of_edge,
)
from repro.graph.cycles import girth_at_least


class TestTriangles:
    def test_triangle_count_k4(self):
        assert count_triangles(complete_graph(4)) == 4

    def test_triangle_count_k5(self):
        assert count_triangles(complete_graph(5)) == 10

    def test_no_triangles_in_cycle4(self):
        assert count_triangles(cycle_graph(4)) == 0

    def test_no_triangles_in_path(self):
        assert count_triangles(path_graph(6)) == 0

    def test_triangles_of_edge(self):
        g = complete_graph(4)
        others = triangles_of_edge(g, "v0", "v1")
        assert set(others) == {"v2", "v3"}

    def test_triangles_of_missing_edge(self):
        g = cycle_graph(4)
        assert triangles_of_edge(g, "v0", "v2") == []

    def test_edge_in_triangle(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        assert edge_in_triangle(g, "a", "b")
        assert not edge_in_triangle(g, "c", "d")


class TestClustering:
    def test_clique_clustering_is_one(self):
        g = complete_graph(5)
        assert local_clustering(g, "v0") == pytest.approx(1.0)
        assert average_clustering(g) == pytest.approx(1.0)

    def test_path_clustering_is_zero(self):
        assert average_clustering(path_graph(5)) == 0.0

    def test_low_degree_vertex_clustering_zero(self):
        g = path_graph(3)
        assert local_clustering(g, "v0") == 0.0

    def test_empty_graph(self):
        assert average_clustering(Graph()) == 0.0


class TestCycles:
    def test_tree_has_no_cycle(self):
        assert not has_cycle(path_graph(6))

    def test_cycle_detected(self):
        assert has_cycle(cycle_graph(5))

    def test_cycle_basis_sizes_cycle(self):
        assert cycle_basis_sizes(cycle_graph(7)) == [7]

    def test_cycle_basis_sizes_tree_empty(self):
        assert cycle_basis_sizes(path_graph(5)) == []

    def test_cycle_basis_count_matches_formula(self):
        g = complete_graph(5)
        # |cycles in basis| = E - V + components
        assert len(cycle_basis_sizes(g)) == g.n_edges - g.n_vertices + 1

    def test_girth_at_least(self):
        assert girth_at_least(cycle_graph(6), 6)
        assert not girth_at_least(cycle_graph(4), 5)
        assert girth_at_least(path_graph(4), 10)


class TestChordlessCycles:
    def test_square_is_chordless(self):
        cycle = find_chordless_cycle(cycle_graph(4))
        assert cycle is not None
        assert len(cycle) == 4

    def test_complete_graph_has_none(self):
        assert find_chordless_cycle(complete_graph(6)) is None

    def test_long_cycle_found(self):
        cycle = find_chordless_cycle(cycle_graph(8))
        assert cycle is not None
        assert len(cycle) == 8

    def test_chorded_cycle_reduced(self):
        g = cycle_graph(6)
        g.add_edge("v0", "v3")  # chord splits C6 into two C4s
        cycle = find_chordless_cycle(g)
        assert cycle is not None
        assert len(cycle) == 4

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            find_chordless_cycle(cycle_graph(5), min_length=3)


class TestBreakCycles:
    def test_result_is_forest(self):
        g = complete_graph(5)
        forest, removed = break_cycles(g)
        assert not has_cycle(forest)
        assert forest.n_edges + len(removed) == g.n_edges

    def test_tree_unchanged(self):
        g = path_graph(5)
        forest, removed = break_cycles(g)
        assert removed == []
        assert forest == g

    def test_protected_edges_kept_when_possible(self):
        g = cycle_graph(4)
        protected = [("v0", "v1"), ("v1", "v2"), ("v2", "v3")]
        forest, removed = break_cycles(g, protected=protected)
        assert removed == [("v0", "v3")]
