"""Socket-transport SPMD backend (`repro.parallel.sock`, ``process-sock``).

The TCP transport must be a drop-in peer of the other process backends:
identical messaging semantics (send/recv matching, barriers, collectives),
identical ``parallel_map`` results, and — the acceptance pin — *bit-identical*
filter outputs across the ordering × partitioner latin square against the
serial reference.  Also covers the satellite knobs: per-rank
:class:`CommStats` with real wire-byte counters, the configurable
receive-timeout resolution order, and supervised degradation off the
``process-sock`` rung when the hub cannot come up.

Rank functions live at module level so the spawned worker processes can
unpickle them by import.
"""

from __future__ import annotations

import multiprocessing
import operator
import pickle
import socket
import time

import numpy as np
import pytest

from repro.core.parallel_comm import parallel_chordal_comm_filter
from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter
from repro.faults import FaultPlan, active_plan
from repro.graph.generators import correlation_like_graph
from repro.parallel.comm import ProcComm
from repro.parallel.runner import available_backends, parallel_map, run_spmd
from repro.parallel.sock import (
    SockWorkerPool,
    _answer_challenge,
    _CHALLENGE,
    _FAILURE,
    _recv_frame,
    _recv_raw,
    _send_frame,
    _send_raw,
    _WorkerConn,
    get_sock_pool,
    shutdown_sock_pool,
    sock_pool_size,
)

ORDERINGS = ["natural", "high_degree", "low_degree", "rcm"]
PARTITIONERS = ["block", "hash", "bfs", "greedy"]

#: Every ordering and every partitioner appears exactly once — one full
#: interpreter spawn per rank per call makes the full grid too slow here.
LATIN_CELLS = list(zip(ORDERINGS, PARTITIONERS))

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) is None,
    reason="multiprocessing unavailable",
)


@pytest.fixture(scope="module", autouse=True)
def _sock_pool_teardown():
    yield
    shutdown_sock_pool()


@pytest.fixture(scope="module")
def graph():
    return correlation_like_graph(seed=11, n_modules=3, module_size=7, n_background=90)


def _signature(result):
    """Everything the backends must agree on, order included."""
    return (
        sorted(map(repr, result.graph.iter_edges())),
        result.accepted_border_edges,
        result.duplicate_border_edges,
        [w.border_edges for w in result.rank_work],
    )


def _ring_fn(comm, offset):
    """Send to the next rank, receive from the previous, allreduce the sum."""
    dest = (comm.rank + 1) % comm.size
    comm.send(comm.rank * 10 + offset, dest, tag=7)
    src = (comm.rank - 1) % comm.size
    received = comm.recv(source=src, tag=7)
    comm.barrier()
    total = comm.allreduce(comm.rank, op=operator.add)
    return received, total


def _numpy_fn(comm):
    gathered = comm.allgather(np.full(3, comm.rank, dtype=np.float64))
    return float(sum(arr.sum() for arr in gathered))


def _square(x):
    return x * x


class TestSockSpmd:
    def test_ring_round_and_collectives(self):
        report = run_spmd(_ring_fn, 3, rank_args=[(1,), (2,), (3,)], backend="process-sock")
        assert report.backend == "process-sock"
        assert report.n_ranks == 3
        # rank r receives (r-1)*10 + offset_{r-1}; every rank sees sum(0..2).
        assert report.values == [(23, 3), (1, 3), (12, 3)]
        assert sock_pool_size() == 3

    def test_numpy_payloads(self):
        report = run_spmd(_numpy_fn, 2, backend="process-sock")
        assert report.values == [3.0, 3.0]

    def test_per_rank_stats_count_wire_bytes(self):
        report = run_spmd(_ring_fn, 2, rank_args=[(0,), (0,)], backend="process-sock")
        for result in report.results:
            assert result.stats.messages_sent >= 1
            assert result.stats.messages_received >= 1
            # Only the socket transport meters real frame bytes.
            assert result.stats.bytes_sent > 0
            assert result.stats.bytes_received > 0
        total = report.total_stats()
        assert total.bytes_sent == sum(r.stats.bytes_sent for r in report.results)

    def test_backend_registered(self):
        assert "process-sock" in available_backends()


class TestSockMap:
    def test_map_matches_serial(self):
        items = list(range(12))
        got = parallel_map(_square, [(x,) for x in items], backend="process-sock")
        assert got == [x * x for x in items]

    def test_map_leaves_no_task_residue(self):
        # A long-lived hub (repro serve) must not accumulate per-map state.
        parallel_map(_square, [(x,) for x in range(4)], backend="process-sock")
        pool = get_sock_pool()
        with pool._cv:
            assert pool._task_results == {}
            assert pool._live_tasks == set()


class TestAuthHandshake:
    """The hub must never unpickle bytes from an unauthenticated peer."""

    def test_unauthenticated_peer_is_dropped_before_any_frame(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOCK_AUTHKEY", "right-key")
        pool = SockWorkerPool(spawn=False)
        try:
            with socket.create_connection(("127.0.0.1", pool.port), timeout=10) as s:
                s.settimeout(10)
                # The hub speaks first — a challenge, never a frame read.
                blob = _recv_raw(s)
                assert blob.startswith(_CHALLENGE)
                _send_raw(s, b"not-the-right-digest")
                assert _recv_raw(s) == _FAILURE
                # The connection is closed without ever being registered.
                try:
                    leftover = s.recv(1)
                except OSError:
                    leftover = b""
                assert leftover == b""
            assert pool.n_workers() == 0
        finally:
            pool.shutdown()

    def test_shared_env_key_admits_worker(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOCK_AUTHKEY", "right-key")
        pool = SockWorkerPool(spawn=False)
        try:
            with socket.create_connection(("127.0.0.1", pool.port), timeout=10) as s:
                s.settimeout(10)
                _answer_challenge(s)  # same process, same env key
                _send_frame(s, ("hello", 12345))
                deadline = time.monotonic() + 10
                while pool.n_workers() < 1:
                    assert time.monotonic() < deadline, "authenticated hello not registered"
                    time.sleep(0.01)
        finally:
            pool.shutdown()


class TestHubForwardIsolation:
    """A dead *destination* must not take the healthy sender's conn down."""

    def _two_conns(self):
        a1, b1 = socket.socketpair()
        a2, b2 = socket.socketpair()
        sender = _WorkerConn(a1, "sender")
        target = _WorkerConn(a2, "target")
        return sender, b1, target, b2

    def test_dead_destination_marks_target_not_sender(self):
        pool = SockWorkerPool(spawn=False)
        sender, sender_peer, target, target_peer = self._two_conns()
        try:
            target.sock.close()  # the destination died
            with pool._mu:
                pool._round_ranks[99] = [sender, target]
            frame = ("msg", 99, 1, 0, 7, None)
            pool._dispatch(sender, frame, pickle.dumps(frame))
            assert target.alive is False
            assert sender.alive is True
        finally:
            for s in (sender.sock, sender_peer, target_peer):
                s.close()
            pool.shutdown()

    def test_barrier_release_skips_dead_peer(self):
        pool = SockWorkerPool(spawn=False)
        sender, sender_peer, target, target_peer = self._two_conns()
        try:
            target.sock.close()
            with pool._mu:
                pool._round_ranks[99] = [sender, target]
            pool._dispatch(sender, ("barrier", 99, 0, 0), b"")
            pool._dispatch(target, ("barrier", 99, 1, 0), b"")
            assert target.alive is False
            assert sender.alive is True
            # The live peer still received its release frame.
            sender_peer.settimeout(10)
            obj, _raw = _recv_frame(sender_peer)
            assert obj == ("barrier_release", 99, 0)
        finally:
            for s in (sender.sock, sender_peer, target_peer):
                s.close()
            pool.shutdown()

    def test_stale_task_result_is_dropped(self):
        pool = SockWorkerPool(spawn=False)
        try:
            pool._dispatch(None, ("task_result", 999, "ok", 42), b"")
            with pool._cv:
                assert pool._task_results == {}
        finally:
            pool.shutdown()


class TestCommFilterLatinSquarePin:
    @pytest.mark.parametrize("ordering,partition_method", LATIN_CELLS)
    def test_process_sock_matches_serial(self, graph, ordering, partition_method):
        ref = parallel_chordal_comm_filter(
            graph, 2, ordering=ordering, partition_method=partition_method, backend="serial"
        )
        got = parallel_chordal_comm_filter(
            graph, 2, ordering=ordering, partition_method=partition_method, backend="process-sock"
        )
        assert _signature(got) == _signature(ref)
        assert got.extra["backend"] == "process-sock"

    def test_per_rank_comm_stats_in_extra(self, graph):
        result = parallel_chordal_comm_filter(graph, 2, ordering="rcm", backend="process-sock")
        per_rank = result.extra["comm_stats_per_rank"]
        assert len(per_rank) == 2
        # Lower-rank-sends-first protocol with P=2: rank 0 ships its border
        # verdicts, rank 1 receives them; the wire-byte meters must balance.
        assert per_rank[0]["bytes_sent"] > 0
        assert per_rank[1]["bytes_received"] == per_rank[0]["bytes_sent"]
        assert sum(s["messages_sent"] for s in per_rank) == sum(
            s["messages_received"] for s in per_rank
        )

    def test_nocomm_matches_serial(self, graph):
        ref = parallel_chordal_nocomm_filter(graph, 4, ordering="rcm", backend="serial")
        got = parallel_chordal_nocomm_filter(graph, 4, ordering="rcm", backend="process-sock")
        assert _signature(got) == _signature(ref)


class TestRecvTimeoutConfig:
    def _comm(self, recv_timeout=None):
        ctx = multiprocessing.get_context("spawn")
        queues = [ctx.Queue()]
        return ProcComm(0, 1, queues, ctx.Barrier(1), recv_timeout=recv_timeout)

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMM_TIMEOUT", raising=False)
        assert self._comm().recv_timeout == ProcComm.RECV_TIMEOUT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "7.5")
        assert self._comm().recv_timeout == 7.5

    def test_ctor_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "7.5")
        assert self._comm(recv_timeout=0.25).recv_timeout == 0.25

    def test_bad_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "not-a-number")
        assert self._comm().recv_timeout == ProcComm.RECV_TIMEOUT


class TestSupervisedDegrade:
    def test_hub_bringup_failure_degrades(self):
        # The hub cannot spawn → with retries off, the supervised ladder
        # steps process-sock down to process-shm and the round completes.
        shutdown_sock_pool()
        plan = FaultPlan().fail("pool.spawn", at=1, exc=OSError, message="injected bind failure")
        with active_plan(plan):
            report = run_spmd(
                _ring_fn, 2, rank_args=[(0,), (0,)], backend="process-sock", max_retries=0
            )
        assert report.backend == "process-shm"
        assert report.values == [(10, 1), (0, 1)]

    def test_hub_bringup_failure_retries_in_place(self):
        # With the default policy the first attempt's failure is retried on
        # the same rung; the fault budget is spent, so the retry succeeds
        # without ever leaving process-sock.
        shutdown_sock_pool()
        plan = FaultPlan().fail("pool.spawn", at=1, exc=OSError, message="injected bind failure")
        with active_plan(plan):
            report = run_spmd(_ring_fn, 2, rank_args=[(0,), (0,)], backend="process-sock")
        assert report.backend == "process-sock"
        assert report.values == [(10, 1), (0, 1)]
