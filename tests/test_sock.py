"""Socket-transport SPMD backend (`repro.parallel.sock`, ``process-sock``).

The TCP transport must be a drop-in peer of the other process backends:
identical messaging semantics (send/recv matching, barriers, collectives),
identical ``parallel_map`` results, and — the acceptance pin — *bit-identical*
filter outputs across the ordering × partitioner latin square against the
serial reference.  Also covers the satellite knobs: per-rank
:class:`CommStats` with real wire-byte counters, the configurable
receive-timeout resolution order, and supervised degradation off the
``process-sock`` rung when the hub cannot come up.

Rank functions live at module level so the spawned worker processes can
unpickle them by import.
"""

from __future__ import annotations

import multiprocessing
import operator

import numpy as np
import pytest

from repro.core.parallel_comm import parallel_chordal_comm_filter
from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter
from repro.faults import FaultPlan, active_plan
from repro.graph.generators import correlation_like_graph
from repro.parallel.comm import ProcComm
from repro.parallel.runner import available_backends, parallel_map, run_spmd
from repro.parallel.sock import shutdown_sock_pool, sock_pool_size

ORDERINGS = ["natural", "high_degree", "low_degree", "rcm"]
PARTITIONERS = ["block", "hash", "bfs", "greedy"]

#: Every ordering and every partitioner appears exactly once — one full
#: interpreter spawn per rank per call makes the full grid too slow here.
LATIN_CELLS = list(zip(ORDERINGS, PARTITIONERS))

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) is None,
    reason="multiprocessing unavailable",
)


@pytest.fixture(scope="module", autouse=True)
def _sock_pool_teardown():
    yield
    shutdown_sock_pool()


@pytest.fixture(scope="module")
def graph():
    return correlation_like_graph(seed=11, n_modules=3, module_size=7, n_background=90)


def _signature(result):
    """Everything the backends must agree on, order included."""
    return (
        sorted(map(repr, result.graph.iter_edges())),
        result.accepted_border_edges,
        result.duplicate_border_edges,
        [w.border_edges for w in result.rank_work],
    )


def _ring_fn(comm, offset):
    """Send to the next rank, receive from the previous, allreduce the sum."""
    dest = (comm.rank + 1) % comm.size
    comm.send(comm.rank * 10 + offset, dest, tag=7)
    src = (comm.rank - 1) % comm.size
    received = comm.recv(source=src, tag=7)
    comm.barrier()
    total = comm.allreduce(comm.rank, op=operator.add)
    return received, total


def _numpy_fn(comm):
    gathered = comm.allgather(np.full(3, comm.rank, dtype=np.float64))
    return float(sum(arr.sum() for arr in gathered))


def _square(x):
    return x * x


class TestSockSpmd:
    def test_ring_round_and_collectives(self):
        report = run_spmd(_ring_fn, 3, rank_args=[(1,), (2,), (3,)], backend="process-sock")
        assert report.backend == "process-sock"
        assert report.n_ranks == 3
        # rank r receives (r-1)*10 + offset_{r-1}; every rank sees sum(0..2).
        assert report.values == [(23, 3), (1, 3), (12, 3)]
        assert sock_pool_size() == 3

    def test_numpy_payloads(self):
        report = run_spmd(_numpy_fn, 2, backend="process-sock")
        assert report.values == [3.0, 3.0]

    def test_per_rank_stats_count_wire_bytes(self):
        report = run_spmd(_ring_fn, 2, rank_args=[(0,), (0,)], backend="process-sock")
        for result in report.results:
            assert result.stats.messages_sent >= 1
            assert result.stats.messages_received >= 1
            # Only the socket transport meters real frame bytes.
            assert result.stats.bytes_sent > 0
            assert result.stats.bytes_received > 0
        total = report.total_stats()
        assert total.bytes_sent == sum(r.stats.bytes_sent for r in report.results)

    def test_backend_registered(self):
        assert "process-sock" in available_backends()


class TestSockMap:
    def test_map_matches_serial(self):
        items = list(range(12))
        got = parallel_map(_square, [(x,) for x in items], backend="process-sock")
        assert got == [x * x for x in items]


class TestCommFilterLatinSquarePin:
    @pytest.mark.parametrize("ordering,partition_method", LATIN_CELLS)
    def test_process_sock_matches_serial(self, graph, ordering, partition_method):
        ref = parallel_chordal_comm_filter(
            graph, 2, ordering=ordering, partition_method=partition_method, backend="serial"
        )
        got = parallel_chordal_comm_filter(
            graph, 2, ordering=ordering, partition_method=partition_method, backend="process-sock"
        )
        assert _signature(got) == _signature(ref)
        assert got.extra["backend"] == "process-sock"

    def test_per_rank_comm_stats_in_extra(self, graph):
        result = parallel_chordal_comm_filter(graph, 2, ordering="rcm", backend="process-sock")
        per_rank = result.extra["comm_stats_per_rank"]
        assert len(per_rank) == 2
        # Lower-rank-sends-first protocol with P=2: rank 0 ships its border
        # verdicts, rank 1 receives them; the wire-byte meters must balance.
        assert per_rank[0]["bytes_sent"] > 0
        assert per_rank[1]["bytes_received"] == per_rank[0]["bytes_sent"]
        assert sum(s["messages_sent"] for s in per_rank) == sum(
            s["messages_received"] for s in per_rank
        )

    def test_nocomm_matches_serial(self, graph):
        ref = parallel_chordal_nocomm_filter(graph, 4, ordering="rcm", backend="serial")
        got = parallel_chordal_nocomm_filter(graph, 4, ordering="rcm", backend="process-sock")
        assert _signature(got) == _signature(ref)


class TestRecvTimeoutConfig:
    def _comm(self, recv_timeout=None):
        ctx = multiprocessing.get_context("spawn")
        queues = [ctx.Queue()]
        return ProcComm(0, 1, queues, ctx.Barrier(1), recv_timeout=recv_timeout)

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMM_TIMEOUT", raising=False)
        assert self._comm().recv_timeout == ProcComm.RECV_TIMEOUT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "7.5")
        assert self._comm().recv_timeout == 7.5

    def test_ctor_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "7.5")
        assert self._comm(recv_timeout=0.25).recv_timeout == 0.25

    def test_bad_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "not-a-number")
        assert self._comm().recv_timeout == ProcComm.RECV_TIMEOUT


class TestSupervisedDegrade:
    def test_hub_bringup_failure_degrades(self):
        # The hub cannot spawn → with retries off, the supervised ladder
        # steps process-sock down to process-shm and the round completes.
        shutdown_sock_pool()
        plan = FaultPlan().fail("pool.spawn", at=1, exc=OSError, message="injected bind failure")
        with active_plan(plan):
            report = run_spmd(
                _ring_fn, 2, rank_args=[(0,), (0,)], backend="process-sock", max_retries=0
            )
        assert report.backend == "process-shm"
        assert report.values == [(10, 1), (0, 1)]

    def test_hub_bringup_failure_retries_in_place(self):
        # With the default policy the first attempt's failure is retried on
        # the same rung; the fault budget is spent, so the retry succeeds
        # without ever leaving process-sock.
        shutdown_sock_pool()
        plan = FaultPlan().fail("pool.spawn", at=1, exc=OSError, message="injected bind failure")
        with active_plan(plan):
            report = run_spmd(_ring_fn, 2, rank_args=[(0,), (0,)], backend="process-sock")
        assert report.backend == "process-sock"
        assert report.values == [(10, 1), (0, 1)]
