"""Unit tests for Pearson correlation networks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expression import (
    CorrelationThreshold,
    ExpressionMatrix,
    build_correlation_csr,
    build_correlation_network,
    correlated_pair_arrays,
    correlated_pairs,
    correlation_p_value,
    critical_correlation,
    pearson_correlation_matrix,
)
from repro.graph import CSRGraph


def toy_matrix() -> ExpressionMatrix:
    rng = np.random.default_rng(0)
    base = rng.standard_normal(12)
    values = np.vstack(
        [
            base,
            base + rng.standard_normal(12) * 0.05,   # tightly correlated with base
            -base,                                     # perfectly anti-correlated
            rng.standard_normal(12),                   # independent
            np.ones(12) * 3.0,                         # flat (zero variance)
        ]
    )
    return ExpressionMatrix(
        values=values,
        genes=["a", "a_twin", "anti", "noise", "flat"],
        samples=[f"s{i}" for i in range(12)],
    )


class TestCorrelationMatrix:
    def test_diagonal_is_one(self):
        corr = pearson_correlation_matrix(toy_matrix())
        assert np.allclose(np.diag(corr), 1.0)

    def test_symmetry(self):
        corr = pearson_correlation_matrix(toy_matrix())
        assert np.allclose(corr, corr.T)

    def test_known_relationships(self):
        m = toy_matrix()
        corr = pearson_correlation_matrix(m)
        assert corr[0, 1] > 0.95
        assert corr[0, 2] == pytest.approx(-1.0, abs=1e-9)
        assert abs(corr[0, 3]) < 0.9

    def test_flat_gene_has_zero_correlation(self):
        corr = pearson_correlation_matrix(toy_matrix())
        assert np.allclose(corr[4, :4], 0.0)

    def test_matches_numpy_corrcoef(self):
        m = toy_matrix()
        ours = pearson_correlation_matrix(m)
        ref = np.corrcoef(m.values[:4])
        assert np.allclose(ours[:4, :4], ref, atol=1e-9)


class TestPValues:
    def test_perfect_correlation_p_zero(self):
        assert correlation_p_value(1.0, 10) == 0.0

    def test_zero_correlation_p_one(self):
        assert correlation_p_value(0.0, 10) == pytest.approx(1.0)

    def test_monotone_in_rho(self):
        assert correlation_p_value(0.9, 10) < correlation_p_value(0.5, 10)

    def test_monotone_in_samples(self):
        assert correlation_p_value(0.7, 30) < correlation_p_value(0.7, 5)

    def test_too_few_samples(self):
        assert correlation_p_value(0.99, 2) == 1.0

    def test_critical_correlation_consistency(self):
        r = critical_correlation(0.0005, 10)
        assert correlation_p_value(r, 10) == pytest.approx(0.0005, rel=1e-3)
        assert correlation_p_value(r - 0.02, 10) > 0.0005

    def test_critical_correlation_validation(self):
        with pytest.raises(ValueError):
            critical_correlation(0.0, 10)
        assert critical_correlation(0.01, 2) == 1.0


class TestThreshold:
    def test_default_admits_only_high_positive(self):
        t = CorrelationThreshold()
        assert t.admits(0.99, 12)
        assert not t.admits(0.7, 12)
        assert not t.admits(-0.99, 12)

    def test_include_negative(self):
        t = CorrelationThreshold(include_negative=True)
        assert t.admits(-0.99, 12)

    def test_effective_cutoff_binds_to_p_value_for_tiny_samples(self):
        t = CorrelationThreshold(min_abs_rho=0.5, max_p_value=0.0005)
        assert t.effective_cutoff(6) > 0.5

    def test_admits_positive_branch(self):
        """Without ``include_negative`` the signed ρ (clamped at 0) is tested."""
        t = CorrelationThreshold(min_abs_rho=0.9, max_p_value=0.01)
        assert t.admits(0.95, 30)
        assert not t.admits(0.5, 30)          # below the magnitude bar
        assert not t.admits(-0.95, 30)        # strong negatives clamp to 0
        # a degenerate bar of 0.0 admits any rho whose p-value passes
        zero_bar = CorrelationThreshold(min_abs_rho=0.0, max_p_value=0.01)
        assert zero_bar.admits(-0.95, 30)
        assert not zero_bar.admits(0.01, 30)  # magnitude fine, p-value fails

    def test_admits_negative_branch(self):
        """With ``include_negative`` the magnitude |ρ| is tested."""
        t = CorrelationThreshold(min_abs_rho=0.9, max_p_value=0.01, include_negative=True)
        assert t.admits(0.95, 30)
        assert t.admits(-0.95, 30)
        assert not t.admits(-0.5, 30)         # |rho| below the bar
        assert not t.admits(0.5, 30)

    def test_admits_p_value_vetoes_both_branches(self):
        # with 4 samples even rho = 0.93 is insignificant at p <= 0.0005
        for include_negative in (False, True):
            t = CorrelationThreshold(
                min_abs_rho=0.9, max_p_value=0.0005, include_negative=include_negative
            )
            assert not t.admits(0.93, 4)


class TestNetworkConstruction:
    def test_correlated_pairs_found(self):
        pairs = correlated_pairs(toy_matrix())
        names = {(a, b) for a, b, _ in pairs}
        assert ("a", "a_twin") in names
        assert all(rho >= 0.95 for _, _, rho in pairs)

    def test_negative_pairs_excluded_by_default(self):
        pairs = correlated_pairs(toy_matrix())
        assert ("a", "anti") not in {(a, b) for a, b, _ in pairs}

    def test_negative_pairs_included_when_requested(self):
        pairs = correlated_pairs(toy_matrix(), threshold=CorrelationThreshold(include_negative=True))
        assert ("a", "anti") in {(a, b) for a, b, _ in pairs}

    def test_blocked_computation_matches_unblocked(self):
        m = toy_matrix()
        small_blocks = correlated_pairs(m, block_size=2)
        one_block = correlated_pairs(m, block_size=1024)
        assert sorted(small_blocks) == sorted(one_block)

    def test_build_network_vertices_and_attributes(self):
        net = build_correlation_network(toy_matrix())
        assert net.n_vertices == 5  # include_all_genes default
        assert net.has_edge("a", "a_twin")
        assert net.edge_attr("a", "a_twin", "rho") >= 0.95

    def test_build_network_without_isolated_genes(self):
        net = build_correlation_network(toy_matrix(), include_all_genes=False)
        assert not net.has_vertex("flat")

    def test_single_sample_matrix_yields_empty_network(self):
        m = ExpressionMatrix(np.zeros((3, 1)), genes=["a", "b", "c"], samples=["s"])
        assert build_correlation_network(m).n_edges == 0

    def test_pair_arrays_align_with_pairs(self):
        m = toy_matrix()
        ii, jj, rho = correlated_pair_arrays(m)
        assert ii.dtype == np.int64 and jj.dtype == np.int64
        assert (ii < jj).all()
        rebuilt = [(m.genes[i], m.genes[j], r) for i, j, r in zip(ii, jj, rho)]
        assert rebuilt == correlated_pairs(m)

    def test_csr_matches_graph_conversion(self):
        m = toy_matrix()
        for include_all, block_size in [(True, 2048), (False, 2048), (True, 2), (False, 2)]:
            net = build_correlation_network(
                m, include_all_genes=include_all, block_size=block_size
            )
            csr = build_correlation_csr(
                m, include_all_genes=include_all, block_size=block_size
            )
            assert csr == CSRGraph.from_graph(net), (include_all, block_size)

    def test_empty_matrix_yields_empty_csr(self):
        m = ExpressionMatrix(np.zeros((3, 1)), genes=["a", "b", "c"], samples=["s"])
        assert build_correlation_csr(m).n_edges == 0
        assert build_correlation_csr(m, include_all_genes=False).n_vertices == 0


class TestVectorisedPValues:
    def test_scalar_equals_vector_on_grid(self):
        from repro.expression import correlation_p_values

        grid = np.concatenate(
            [np.linspace(-1.0, 1.0, 101), [0.9999999, -0.9999999, 1.5, -1.5]]
        )
        for n in (3, 4, 10, 30, 100):
            vector = correlation_p_values(grid, n)
            scalar = np.array([correlation_p_value(r, n) for r in grid])
            assert np.array_equal(vector, scalar)

    def test_underpowered_sample_counts_return_ones(self):
        from repro.expression import correlation_p_values

        out = correlation_p_values(np.array([0.0, 0.5, 0.99]), 2)
        assert np.array_equal(out, np.ones(3))

    def test_saturated_correlations_are_exactly_zero(self):
        from repro.expression import correlation_p_values

        out = correlation_p_values(np.array([1.0, -1.0, 2.0]), 10)
        assert np.array_equal(out, np.zeros(3))

    def test_admits_array_matches_scalar_admits(self):
        from repro.expression import correlation_p_values  # noqa: F401 - import path

        rng = np.random.default_rng(3)
        rhos = np.concatenate([rng.uniform(-1, 1, 200), [0.95, -0.95, 1.0, -1.0]])
        for threshold in (
            CorrelationThreshold(),
            CorrelationThreshold(include_negative=True),
            CorrelationThreshold(min_abs_rho=0.0, max_p_value=0.01),
        ):
            for n in (3, 12, 40):
                vector = threshold.admits_array(rhos, n)
                scalar = np.array([threshold.admits(r, n) for r in rhos])
                assert np.array_equal(vector, scalar), (threshold, n)
