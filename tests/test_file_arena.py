"""File-backed arena tests (`repro.parallel.shm` scale-out tier).

Two concerns share this module:

* lifecycle edge cases **parametrized over both arena kinds** — the shm and
  the file substrates must behave identically for attach-after-unlink,
  double close, zero-length arrays and the process-wide
  :func:`open_segment_count` leak accounting (with the one deliberate
  asymmetry: a *closed* file arena is persistence, not a leak);
* manifest persistence — the warm-restart contract: a second arena opened
  over the same directory re-adopts the previous generation's segments by
  content digest, so re-exporting rebuilt-but-equal payloads returns the
  already-mapped refs instead of copying.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.parallel.shm import (
    ArenaError,
    FileArena,
    SharedArena,
    arena_scope,
    attach,
    open_segment_count,
)


@pytest.fixture(params=["shm", "file"])
def make_arena(request, tmp_path):
    """Factory building a fresh arena of the parametrized kind."""
    counter = {"n": 0}

    def factory() -> SharedArena:
        if request.param == "shm":
            return SharedArena(content_dedup=True)
        counter["n"] += 1
        return SharedArena(content_dedup=True, path=str(tmp_path / f"arena{counter['n']}"))

    factory.kind = request.param
    return factory


class TestLifecycleBothKinds:
    def test_kind_reported(self, make_arena):
        arena = make_arena()
        try:
            assert arena.kind == make_arena.kind
        finally:
            arena.unlink()

    def test_round_trip(self, make_arena):
        arena = make_arena()
        try:
            src = np.arange(64, dtype=np.int64)
            view = attach(arena.export(src))
            assert np.array_equal(view, src)
            assert not view.flags.writeable
        finally:
            arena.unlink()

    def test_attach_after_unlink_raises(self, make_arena):
        arena = make_arena()
        ref = arena.export(np.arange(16))
        assert np.array_equal(attach(ref), np.arange(16))
        arena.unlink()
        with pytest.raises(FileNotFoundError):
            attach(ref)

    def test_double_close_and_double_unlink_are_safe(self, make_arena):
        arena = make_arena()
        arena.export(np.arange(4))
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()

    def test_export_after_unlink_raises(self, make_arena):
        arena = make_arena()
        arena.unlink()
        with pytest.raises(ArenaError):
            arena.export(np.arange(3))

    def test_zero_length_array_has_no_segment(self, make_arena):
        arena = make_arena()
        try:
            ref = arena.export(np.empty(0, dtype=np.float64))
            assert ref.name is None
            assert arena.n_segments == 0
            view = attach(ref)
            assert view.shape == (0,)
            assert view.dtype == np.float64
        finally:
            arena.unlink()

    def test_bundle_dedup_within_arena(self, make_arena):
        arena = make_arena()
        try:
            a = np.arange(32, dtype=np.int64)
            refs1 = arena.export_bundle({"a": a})
            refs2 = arena.export_bundle({"a": a.copy()})
            assert refs1["a"] is refs2["a"]
            assert arena.n_segments == 1
        finally:
            arena.unlink()

    def test_open_segment_count_tracks_unlink(self, make_arena):
        base = open_segment_count()
        arena = make_arena()
        arena.export_bundle({"a": np.arange(8), "b": np.arange(50, dtype=np.float64)})
        assert open_segment_count() == base + arena.n_segments
        arena.unlink()
        assert open_segment_count() == base


class TestOpenSegmentCountAsymmetry:
    def test_closed_shm_arena_still_counts(self):
        # A closed (but not unlinked) shm arena still holds kernel-backed
        # segments — that *is* a leak until someone unlinks.
        base = open_segment_count()
        arena = SharedArena()
        arena.export(np.arange(8))
        arena.close()
        assert open_segment_count() == base + 1
        arena.unlink()
        assert open_segment_count() == base

    def test_closed_file_arena_is_persistence_not_leak(self, tmp_path):
        base = open_segment_count()
        arena = SharedArena(path=str(tmp_path / "arena"))
        arena.export(np.arange(8))
        assert open_segment_count() == base + 1
        arena.close()
        # Closed file-backed segments live on disk by design.
        assert open_segment_count() == base


class TestManifestPersistence:
    def test_warm_restart_adopts_by_digest(self, tmp_path):
        d = str(tmp_path / "arena")
        payload = {
            "indptr": np.arange(11, dtype=np.int64),
            "weights": np.linspace(0.0, 1.0, 10),
        }
        gen1 = SharedArena(path=d)
        refs1 = gen1.export_bundle(payload)
        segs1 = gen1.n_segments
        gen1.close()

        gen2 = SharedArena(path=d)
        try:
            # Adoption restores the digest table: re-exporting equal content
            # returns refs onto the previous generation's mapped files
            # without creating new segments.
            assert gen2.n_segments == segs1
            refs2 = gen2.export_bundle({k: v.copy() for k, v in payload.items()})
            assert gen2.n_segments == segs1
            for key in payload:
                assert refs2[key].name == refs1[key].name
                assert refs2[key].kind == "file"
                assert np.array_equal(attach(refs2[key]), payload[key])
        finally:
            gen2.unlink()

    def test_concurrent_generations_merge_instead_of_clobber(self, tmp_path):
        # Two arena generations over the same directory (batch jobs>1 hands
        # one arena_dir to several worker processes): each saves the manifest
        # knowing only its own exports, and a blind overwrite would drop the
        # sibling's entries.  The locked read-merge-replace must keep both.
        d = str(tmp_path / "arena")
        a = SharedArena(path=d)
        b = SharedArena(path=d)  # opened before a exports: adopts nothing
        x = np.arange(20, dtype=np.int64)
        y = np.linspace(0.0, 1.0, 15)
        try:
            ref_x = a.export(x)
            ref_y = b.export(y)  # b's save must not clobber a's entry
            with open(os.path.join(d, "manifest.json"), encoding="utf-8") as fh:
                files = {entry["file"] for entry in json.load(fh)["refs"]}
            assert os.path.basename(ref_x.name) in files
            assert os.path.basename(ref_y.name) in files

            # A third generation adopts the merged manifest: re-exports of
            # both payloads are digest hits onto the existing files.
            c = SharedArena(path=d)
            try:
                segs = c.n_segments
                assert c.export(x.copy()).name == ref_x.name
                assert c.export(y.copy()).name == ref_y.name
                assert c.n_segments == segs
            finally:
                c.close()
        finally:
            a.close()
            b.unlink()

    def test_file_arena_alias(self, tmp_path):
        d = str(tmp_path / "arena")
        arena = FileArena(d)
        try:
            assert arena.kind == "file"
            assert arena.path == os.path.abspath(d)
            ref = arena.export(np.arange(5))
            assert ref.kind == "file"
        finally:
            arena.unlink()

    def test_unlink_purges_directory_state(self, tmp_path):
        d = tmp_path / "arena"
        arena = SharedArena(path=str(d))
        arena.export(np.arange(12))
        assert any(d.glob("seg-*.bin"))
        assert (d / "manifest.json").exists()
        arena.unlink()
        assert not any(d.glob("seg-*.bin"))
        assert not (d / "manifest.json").exists()

    def test_malformed_manifest_is_ignored(self, tmp_path):
        d = tmp_path / "arena"
        d.mkdir()
        (d / "manifest.json").write_text("not json at all", encoding="utf-8")
        arena = SharedArena(path=str(d))
        try:
            assert arena.n_segments == 0
            arena.export(np.arange(3))
        finally:
            arena.unlink()

    def test_wrong_schema_manifest_is_ignored(self, tmp_path):
        d = tmp_path / "arena"
        d.mkdir()
        (d / "manifest.json").write_text(
            json.dumps({"schema": "arena-manifest/v999", "refs": []}), encoding="utf-8"
        )
        arena = SharedArena(path=str(d))
        try:
            assert arena.n_segments == 0
        finally:
            arena.unlink()

    def test_manifest_entry_with_missing_file_is_skipped(self, tmp_path):
        d = str(tmp_path / "arena")
        gen1 = SharedArena(path=d)
        ref = gen1.export(np.arange(20, dtype=np.int64))
        gen1.close()
        os.unlink(ref.name)  # the segment vanished between generations

        gen2 = SharedArena(path=d)
        try:
            assert gen2.n_segments == 0
            # The digest no longer resolves, so an equal export re-creates.
            fresh = gen2.export(np.arange(20, dtype=np.int64))
            assert fresh.name != ref.name
            assert np.array_equal(attach(fresh), np.arange(20))
        finally:
            gen2.unlink()

    def test_arena_scope_with_path_persists(self, tmp_path):
        d = str(tmp_path / "arena")
        with arena_scope(path=d) as arena:
            ref = arena.export(np.arange(9))
            assert arena.kind == "file"
        # Scope exit closed (persisted) rather than unlinked.
        assert os.path.exists(ref.name)
        follow = SharedArena(path=d)
        try:
            assert follow.n_segments == 1
        finally:
            follow.unlink()
