"""Chaos tier: deterministic fault injection against the parallel runtime.

The contract under test — the tentpole of the fault-tolerance layer — is
that for any fault schedule that permits eventual success, the *supervised*
output is byte-identical to the fault-free run: retries resubmit clean
payloads, an SPMD round retries as one deterministic unit, and a degraded
backend computes the same result as the requested one.  Schedules are seeded
(``REPRO_CHAOS_SEED`` varies the victims in CI's chaos matrix) so every
failure is reproducible.

Also covered here: the fault plane's own mechanics, the zero-cost guarantee
of disabled injection sites, and the shared-memory leak accounting across a
kill → pool-respawn cycle.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.parallel_comm import parallel_chordal_comm_filter
from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter
from repro.expression.datasets import make_study
from repro.faults import (
    FaultError,
    FaultPlan,
    active_plan,
    clear_plan,
    current_plan,
    fault_point,
)
from repro.parallel import shm
from repro.parallel.runner import (
    DeadRankError,
    WorkerPoolError,
    configure_supervision,
    parallel_map,
    pop_supervision_events,
    reset_supervision_counters,
    run_spmd,
    shutdown_worker_pool,
    supervision_counters,
    supervision_policy,
    worker_pool_size,
)
from repro.pipeline.workflow import filter_payload

#: CI's chaos matrix varies this to shift which victims the schedules pick.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
SCALE = 0.02


def _canon(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """No plan, drained events, zeroed counters before and after every test."""
    clear_plan()
    pop_supervision_events()
    reset_supervision_counters()
    yield
    clear_plan()
    pop_supervision_events()


@pytest.fixture(autouse=True)
def _fast_failure_detection(monkeypatch):
    """Shrink drain grace + backoff so injected failures resolve quickly."""
    from repro.parallel import runner

    monkeypatch.setattr(runner, "POOL_DRAIN_TIMEOUT", 0.3)
    monkeypatch.setattr(runner, "SPMD_DRAIN_TIMEOUT", 0.5)
    old = supervision_policy()
    configure_supervision(backoff_base=0.01, backoff_max=0.05)
    yield
    configure_supervision(
        max_retries=old.max_retries,
        degrade=old.degrade,
        backoff_base=old.backoff_base,
        backoff_factor=old.backoff_factor,
        backoff_max=old.backoff_max,
        seed=old.seed,
    )


def _times_ten(item: int) -> int:
    return item * 10


def _rank_add(comm, offset: int) -> int:
    return comm.rank + offset


def _arr_sum(arr) -> float:
    return float(arr.sum())


# ----------------------------------------------------------------------
# the fault plane itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_no_plan_sites_are_inert(self):
        assert current_plan() is None
        fault_point("pool.dispatch")  # no plan → returns immediately

    def test_fail_fires_at_scheduled_hit_only(self):
        plan = FaultPlan()
        plan.fail("demo.site", at=2)
        with active_plan(plan):
            fault_point("demo.site")  # hit 1: clean
            with pytest.raises(FaultError, match="demo.site"):
                fault_point("demo.site")  # hit 2: fires
            fault_point("demo.site")  # hit 3: budget spent
        assert plan.hits("demo.site") == 3
        assert [f.hit for f in plan.fired("demo.site")] == [2]
        assert plan.exhausted()

    def test_custom_exception_and_message(self):
        plan = FaultPlan().fail("demo.site", exc=OSError, message="no descriptors left")
        with active_plan(plan):
            with pytest.raises(OSError, match="no descriptors left"):
                fault_point("demo.site")

    def test_active_plan_clears_even_on_error(self):
        plan = FaultPlan().fail("demo.site")
        with pytest.raises(FaultError):
            with active_plan(plan):
                fault_point("demo.site")
        assert current_plan() is None

    def test_hook_receives_site_and_context(self):
        seen = []
        plan = FaultPlan().hook("demo.site", lambda site, ctx: seen.append((site, ctx)))
        with active_plan(plan):
            fault_point("demo.site", tag=42)
        assert seen == [("demo.site", {"tag": 42})]

    def test_disabled_sites_cost_nothing(self):
        # The production path is one module-global None check; pin that it
        # stays that cheap (bound is ~50x slack over the observed cost).
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            fault_point("pool.dispatch")
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"{n} disabled fault points took {elapsed:.2f}s"


# ----------------------------------------------------------------------
# supervised parallel_map
# ----------------------------------------------------------------------
class TestSupervisedMap:
    ITEMS = [(i,) for i in range(6)]
    EXPECTED = [i * 10 for i in range(6)]

    def test_spawn_failure_is_retried(self):
        shutdown_worker_pool()  # the next map must actually spawn
        plan = FaultPlan(CHAOS_SEED).fail("pool.spawn", exc=OSError)
        with active_plan(plan):
            assert parallel_map(_times_ten, self.ITEMS, backend="process") == self.EXPECTED
        assert plan.exhausted()
        events = pop_supervision_events()
        assert any(e["action"] == "retry" for e in events)
        assert supervision_counters()["retries"] >= 1
        shutdown_worker_pool()

    def test_persistent_spawn_failure_degrades_to_thread(self):
        shutdown_worker_pool()
        plan = FaultPlan(CHAOS_SEED).fail("pool.spawn", times=99, exc=OSError)
        with active_plan(plan):
            out = parallel_map(
                _times_ten, self.ITEMS, backend="process", max_retries=1
            )
        assert out == self.EXPECTED
        degrades = [e for e in pop_supervision_events() if e["action"] == "degrade"]
        assert degrades and degrades[0]["to"] == "thread"
        assert supervision_counters()["degrades"] >= 1

    def test_no_degrade_raises_the_original_error(self):
        shutdown_worker_pool()
        plan = FaultPlan(CHAOS_SEED).fail("pool.spawn", times=99, exc=OSError)
        with active_plan(plan):
            with pytest.raises(OSError):
                parallel_map(
                    _times_ten, self.ITEMS, backend="process",
                    max_retries=0, degrade=False,
                )

    def test_killed_worker_retries_to_identical_result(self):
        plan = FaultPlan(CHAOS_SEED)
        victim = plan.rng.randrange(len(self.ITEMS))
        plan.kill_task(at=1, index=victim)
        with active_plan(plan):
            assert parallel_map(_times_ten, self.ITEMS, backend="process") == self.EXPECTED
        assert plan.fired("pool.dispatch")
        assert supervision_counters()["retries"] >= 1
        shutdown_worker_pool()


# ----------------------------------------------------------------------
# supervised run_spmd
# ----------------------------------------------------------------------
class TestSupervisedSpmd:
    def test_dead_rank_round_is_retried(self):
        plan = FaultPlan(CHAOS_SEED)
        plan.kill_rank(at=1, rank=plan.rng.randrange(3))
        with active_plan(plan):
            report = run_spmd(_rank_add, 3, args=(7,), backend="process")
        assert report.values == [7, 8, 9]
        assert supervision_counters()["retries"] >= 1

    def test_dead_rank_fails_fast_without_retries(self):
        plan = FaultPlan(CHAOS_SEED).kill_rank(at=1, rank=0)
        with active_plan(plan):
            with pytest.raises(DeadRankError, match="died without reporting"):
                run_spmd(_rank_add, 2, args=(1,), backend="process", max_retries=0)

    def test_arena_export_failure_degrades_to_process(self):
        arrays = [(np.arange(64, dtype=np.float64) + r,) for r in range(2)]
        plan = FaultPlan(CHAOS_SEED).fail("arena.export", times=99, exc=shm.ArenaError)
        with active_plan(plan):
            report = run_spmd(
                _arr_sum_rank, 2, rank_args=arrays, backend="process-shm", max_retries=0
            )
        expected = [float(a[0].sum()) for a in arrays]
        assert report.values == expected
        degrades = [e for e in pop_supervision_events() if e["action"] == "degrade"]
        assert degrades and degrades[0]["to"] == "process"


def _arr_sum_rank(comm, arr) -> float:
    return float(arr.sum())


# ----------------------------------------------------------------------
# byte identity through the real filter engines (the tentpole contract)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def network():
    return make_study("CRE", scale=SCALE).network()


class TestFilterByteIdentity:
    def test_nocomm_filter_identical_under_spawn_and_kill_faults(self, network):
        baseline = _canon(
            filter_payload(
                parallel_chordal_nocomm_filter(
                    network, 2, ordering="natural", backend="process"
                )
            )
        )
        pop_supervision_events()
        shutdown_worker_pool()
        plan = FaultPlan(CHAOS_SEED).fail("pool.spawn", at=1, exc=OSError)
        plan.kill_task(at=1, index=plan.rng.randrange(2))
        with active_plan(plan):
            result = parallel_chordal_nocomm_filter(
                network, 2, ordering="natural", backend="process"
            )
        assert plan.fired(), "the schedule must actually have fired"
        assert _canon(filter_payload(result)) == baseline
        # The turbulence is visible in extra (excluded from the canonical
        # payload, so byte identity and observability coexist).
        assert result.extra.get("supervision")
        shutdown_worker_pool()

    def test_comm_filter_identical_under_dead_rank(self, network):
        baseline = _canon(
            filter_payload(
                parallel_chordal_comm_filter(
                    network, 2, ordering="natural", backend="process"
                )
            )
        )
        pop_supervision_events()
        plan = FaultPlan(CHAOS_SEED)
        plan.kill_rank(at=1, rank=plan.rng.randrange(2))
        with active_plan(plan):
            result = parallel_chordal_comm_filter(
                network, 2, ordering="natural", backend="process"
            )
        assert plan.fired("spmd.ranks")
        assert _canon(filter_payload(result)) == baseline
        assert result.extra.get("supervision")


# ----------------------------------------------------------------------
# crash-safe batch cache (atomic publish + corruption quarantine)
# ----------------------------------------------------------------------
class TestBatchCacheCrashSafety:
    PAYLOAD = {"output": {"rows": [1, 2, 3]}, "spec": {"figure": "fig04"}}

    def test_crash_between_write_and_publish_leaves_no_entry(self, tmp_path):
        from repro.pipeline.batch import _load_cache, _write_cache

        path = str(tmp_path / "entry.json")
        plan = FaultPlan(CHAOS_SEED).fail("batch.cache_replace", exc=OSError)
        with active_plan(plan):
            with pytest.raises(OSError):
                _write_cache(path, self.PAYLOAD)
        # Neither a torn entry nor a stranded tmp file survives the crash.
        assert list(tmp_path.iterdir()) == []
        _write_cache(path, self.PAYLOAD)
        assert _load_cache(path) == self.PAYLOAD

    def test_corrupt_entry_is_quarantined_not_fatal(self, tmp_path, capsys):
        from repro.pipeline.batch import _load_cache

        path = tmp_path / "entry.json"
        path.write_text('{"output": truncated', encoding="utf-8")
        assert _load_cache(str(path)) is None
        assert not path.exists()
        assert (tmp_path / "entry.json.corrupt").exists()
        assert "quarantined corrupt cache entry" in capsys.readouterr().err

    def test_read_fault_quarantines_and_recomputes(self, tmp_path):
        from repro.pipeline.batch import _load_cache, _write_cache

        path = str(tmp_path / "entry.json")
        _write_cache(path, self.PAYLOAD)
        plan = FaultPlan(CHAOS_SEED).fail("batch.cache_read", exc=OSError)
        with active_plan(plan):
            assert _load_cache(path) is None  # injected I/O error → miss
            # The unreadable entry was moved aside; a clean rewrite restores it.
            _write_cache(path, self.PAYLOAD)
            assert _load_cache(path) == self.PAYLOAD


# ----------------------------------------------------------------------
# leak accounting across kill → respawn (shared-memory substrate)
# ----------------------------------------------------------------------
class TestShmLeakAccounting:
    def test_kill_respawn_cycle_leaks_no_segments_or_handles(self):
        arr = np.arange(1024, dtype=np.float64)
        items = [(arr,) for _ in range(4)]
        expected = [float(arr.sum())] * 4
        baseline_segments = shm.open_segment_count()
        baseline_handles = shm.attached_handle_count()
        plan = FaultPlan(CHAOS_SEED)
        plan.kill_task(at=1, index=plan.rng.randrange(4))
        with active_plan(plan):
            out = parallel_map(_arr_sum, items, backend="process-shm")
        assert out == expected
        assert supervision_counters()["retries"] >= 1
        # The respawned pool is alive; the per-call arena (including the one
        # of the killed attempt) is gone.
        assert worker_pool_size() > 0
        shutdown_worker_pool()
        assert shm.open_segment_count() == baseline_segments
        assert shm.attached_handle_count() == baseline_handles


class TestIncrementalFaults:
    """Failed delta updates degrade to the reference rebuild, byte-identically."""

    def test_delta_fault_falls_back_to_reference_rebuild(self):
        from repro.incremental import UpdateSpec, apply_update
        from repro.pipeline.workflow import analysis_payload, analyze_filter, prepare_dataset

        spec = UpdateSpec(add_samples=1, add_annotations=2, seed=CHAOS_SEED)
        clean = prepare_dataset("YNG", scale=SCALE)
        clean, clean_report = apply_update(clean, spec)
        assert clean_report.mode == "delta"

        bundle = prepare_dataset("YNG", scale=SCALE)
        with active_plan(FaultPlan(seed=CHAOS_SEED).fail("incremental.delta")) as plan:
            bundle, report = apply_update(bundle, spec)
        assert plan.fired("incremental.delta")
        assert report.mode == "rebuild"
        assert _canon(analysis_payload(analyze_filter(bundle))) == _canon(
            analysis_payload(analyze_filter(clean))
        )

    def test_delta_fault_propagates_without_fallback(self):
        from repro.incremental import UpdateSpec, apply_update
        from repro.pipeline.workflow import prepare_dataset

        bundle = prepare_dataset("YNG", scale=SCALE)
        with active_plan(FaultPlan(seed=CHAOS_SEED).fail("incremental.delta")):
            with pytest.raises(FaultError):
                apply_update(bundle, UpdateSpec(add_annotations=1), fallback=False)

    def test_serve_update_fault_degrades_to_rebuild(self):
        from repro.serve import ReproServer, ServeClient

        with ReproServer(default_scale=SCALE, workers=1) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as c:
                c.result("ping")
                clean = None
                with ReproServer(default_scale=SCALE, workers=1) as twin:
                    with ServeClient(port=twin.port, timeout=600.0) as tc:
                        tc.result("update", dataset="YNG", add_genes=2, seed=3)
                        clean = tc.result("classify", dataset="YNG", method="chordal")
                with active_plan(
                    FaultPlan(seed=CHAOS_SEED).fail("serve.update")
                ) as plan:
                    up = c.result("update", dataset="YNG", add_genes=2, seed=3)
                assert plan.fired("serve.update")
                assert up["mode"] == "rebuild"
                # the fallback rebuild reaches the same logical state the
                # unfaulted delta path produces on the twin server
                assert c.result("classify", dataset="YNG", method="chordal") == clean
                assert c.result("datasets")[0]["health"] == "healthy"
