"""Additional property-based tests (hypothesis) on substrate invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import mcode_clusters
from repro.clustering.overlap import edge_overlap, jaccard_node_overlap, node_overlap
from repro.clustering.cluster import Cluster
from repro.core.random_walk import random_walk_edges
from repro.graph import Graph, partition_graph
from repro.graph.ordering import ORDERINGS
from repro.parallel.rng import rank_rngs


@st.composite
def labelled_graphs(draw, max_vertices: int = 16, max_edges: int = 36):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    vertices = [f"g{i}" for i in range(n)]
    g = Graph(vertices=vertices)
    if n >= 2:
        m = draw(st.integers(min_value=0, max_value=max_edges))
        pairs = st.tuples(
            st.integers(min_value=0, max_value=n - 1), st.integers(min_value=0, max_value=n - 1)
        )
        for _ in range(m):
            i, j = draw(pairs)
            if i != j:
                g.add_edge(vertices[i], vertices[j])
    return g


@settings(max_examples=50, deadline=None)
@given(labelled_graphs(), st.integers(min_value=1, max_value=6), st.sampled_from(["block", "hash", "bfs", "greedy"]))
def test_partitioners_always_produce_valid_partitions(g: Graph, n_parts: int, method: str):
    """Every partitioner covers the vertex set exactly and accounts for every edge."""
    part = partition_graph(g, n_parts, method=method)
    part.validate()
    assert part.n_parts == n_parts
    internal = sum(len(e) for e in part.internal_edges)
    assert internal + len(part.border_edges) == g.n_edges


@settings(max_examples=40, deadline=None)
@given(labelled_graphs(), st.sampled_from(sorted(ORDERINGS)))
def test_orderings_are_permutations(g: Graph, name: str):
    """Every ordering returns each vertex exactly once."""
    order = ORDERINGS[name](g)
    assert sorted(map(str, order)) == sorted(map(str, g.vertices()))


@settings(max_examples=40, deadline=None)
@given(labelled_graphs(), st.integers(min_value=0, max_value=2**16))
def test_random_walk_selects_only_graph_edges(g: Graph, seed: int):
    """The random walk never invents edges and respects its selection budget."""
    rng = rank_rngs(seed, 1)[0]
    edges, selections = random_walk_edges(g, rng)
    assert selections == int(0.5 * g.n_edges)
    assert len(edges) <= max(selections, 0) or selections == 0
    for u, v in edges:
        assert g.has_edge(u, v)


@settings(max_examples=40, deadline=None)
@given(labelled_graphs())
def test_mcode_clusters_are_dense_subgraphs(g: Graph):
    """Every MCODE cluster meets the score/size thresholds and is an induced subgraph."""
    clusters = mcode_clusters(g)
    for c in clusters:
        assert c.score >= 3.0
        assert c.n_vertices >= 3
        for u, v in c.subgraph.iter_edges():
            assert g.has_edge(u, v)
        # post-processing guarantees a 2-core: no vertex of degree < 2 remains
        assert all(c.subgraph.degree(v) >= 2 for v in c.subgraph.vertices())
    # clusters never share a seed-grown vertex set entirely
    member_sets = [frozenset(c.members) for c in clusters]
    assert len(member_sets) == len(set(member_sets))


@st.composite
def cluster_pairs(draw):
    universe = [f"v{i}" for i in range(12)]
    size_a = draw(st.integers(min_value=1, max_value=10))
    size_b = draw(st.integers(min_value=1, max_value=10))
    members_a = draw(st.permutations(universe).map(lambda p: list(p[:size_a])))
    members_b = draw(st.permutations(universe).map(lambda p: list(p[:size_b])))

    def build(members):
        g = Graph(vertices=members)
        for i in range(len(members) - 1):
            g.add_edge(members[i], members[i + 1])
        return Cluster(cluster_id=0, members=members, subgraph=g, score=3.0)

    return build(members_a), build(members_b)


@settings(max_examples=60, deadline=None)
@given(cluster_pairs())
def test_overlap_measures_bounded_and_consistent(pair):
    """Overlap measures stay in [0, 1]; Jaccard is symmetric and never exceeds either one-sided overlap... bound."""
    a, b = pair
    no = node_overlap(a, b)
    eo = edge_overlap(a, b)
    jac = jaccard_node_overlap(a, b)
    assert 0.0 <= no <= 1.0
    assert 0.0 <= eo <= 1.0
    assert 0.0 <= jac <= 1.0
    assert jaccard_node_overlap(b, a) == jac
    assert jac <= no + 1e-12  # Jaccard is the stricter node measure
    if set(a.members) == set(b.members):
        assert no == 1.0
