"""Tests for the resident analysis service: protocol, cache, equivalence.

The concurrency stress tier lives in ``test_serve_concurrency.py`` and the
fault-injection tier in ``test_serve_faults.py``; this module covers the
functional promises — protocol round-trip pins, LRU cache behaviour,
reload-invalidation and the byte-identity of served responses against the
cold CLI across the ordering × partitioner grid.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main as cli_main
from repro.serve import (
    ProtocolError,
    ReproServer,
    ResultCache,
    ServeClient,
    error_response,
    ok_response,
    parse_request,
    read_message,
    request_spec,
    spec_hash,
    write_message,
)

SCALE = 0.02


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip_one_line_per_message(self):
        buf = io.BytesIO()
        write_message(buf, {"id": 1, "op": "ping", "params": {}})
        write_message(buf, {"id": 2, "op": "stats", "params": {"b": 1, "a": 2}})
        raw = buf.getvalue()
        assert raw.count(b"\n") == 2
        buf.seek(0)
        first = read_message(buf)
        second = read_message(buf)
        assert first == {"id": 1, "op": "ping", "params": {}}
        assert second["params"] == {"a": 2, "b": 1}
        assert read_message(buf) is None  # clean EOF

    def test_canonical_bytes_are_sorted_and_compact(self):
        buf = io.BytesIO()
        write_message(buf, {"z": 1, "a": {"y": 2, "b": 3}})
        assert buf.getvalue() == b'{"a":{"b":3,"y":2},"z":1}\n'

    def test_undecodable_line_raises(self):
        assert read_message(io.BytesIO(b"")) is None
        with pytest.raises(ProtocolError):
            read_message(io.BytesIO(b"not json\n"))

    def test_parse_request_validation(self):
        req = parse_request({"id": 7, "op": "filter", "params": {"dataset": "CRE"}})
        assert (req.id, req.op, req.params) == (7, "filter", {"dataset": "CRE"})
        assert parse_request({"op": "ping"}).params == {}
        with pytest.raises(ProtocolError):
            parse_request(["not", "an", "object"])
        with pytest.raises(ProtocolError):
            parse_request({"id": 1})  # no op
        with pytest.raises(ProtocolError):
            parse_request({"op": ""})
        with pytest.raises(ProtocolError):
            parse_request({"op": "x", "params": [1]})
        with pytest.raises(ProtocolError):
            parse_request({"op": "x", "id": 1.5})

    def test_spec_hash_is_order_independent_and_param_sensitive(self):
        a = spec_hash("filter", {"dataset": "CRE", "seed": 1})
        b = spec_hash("filter", {"seed": 1, "dataset": "CRE"})
        c = spec_hash("filter", {"dataset": "CRE", "seed": 2})
        d = spec_hash("classify", {"dataset": "CRE", "seed": 1})
        assert a == b
        assert a != c
        assert a != d
        assert len(a) == 16 and int(a, 16) >= 0

    def test_request_spec_pins_shape(self):
        spec = request_spec("enrich", {"scale": 0.02, "dataset": "CRE"})
        assert canonical(spec) == '{"op":"enrich","params":{"dataset":"CRE","scale":0.02}}'

    def test_response_shapes(self):
        ok = ok_response(3, {"x": 1}, cached=True, request_hash="ff")
        assert ok == {"id": 3, "ok": True, "result": {"x": 1}, "cached": True, "spec_hash": "ff"}
        plain = ok_response(4, [1, 2])
        assert "cached" not in plain and "spec_hash" not in plain
        err = error_response(5, "busy", "try later")
        assert err == {"id": 5, "ok": False, "error": {"code": "busy", "message": "try later"}}


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ResultCache(capacity=2)
        assert cache.get("a", 0) is None  # miss
        cache.put("a", "CRE@0.02", 0, {"v": "a"})
        cache.put("b", "CRE@0.02", 0, {"v": "b"})
        assert cache.get("a", 0) == {"v": "a"}  # touches a → b becomes LRU
        cache.put("c", "CRE@0.02", 0, {"v": "c"})  # evicts b
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == {"v": "a"}
        assert cache.get("c", 0) == {"v": "c"}
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.hits == 3
        assert stats.misses == 2
        assert len(cache) == 2

    def test_stale_generation_entry_dropped_lazily(self):
        cache = ResultCache(capacity=4)
        cache.put("k", "CRE@0.02", 0, {"gen": 0})
        assert cache.get("k", 1) is None  # generation moved on → stale
        assert "k" not in cache
        stats = cache.stats()
        assert stats.invalidated == 1
        assert stats.misses == 1

    def test_invalidate_dataset_drops_only_that_dataset(self):
        cache = ResultCache(capacity=8)
        cache.put("k1", "CRE@0.02", 0, 1)
        cache.put("k2", "CRE@0.02", 0, 2)
        cache.put("k3", "YNG@0.02", 0, 3)
        assert cache.invalidate_dataset("CRE@0.02") == 2
        assert cache.get("k3", 0) == 3
        assert cache.get("k1", 0) is None
        assert cache.stats().invalidated == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


# ----------------------------------------------------------------------
# served round-trips against a live daemon
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    with ReproServer(default_scale=SCALE, workers=2, max_pending=16) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port, timeout=600.0) as c:
        yield c


class TestServedRoundTrips:
    def test_ping_reports_protocol(self, client):
        result = client.ping()
        assert result["status"] == "ok"
        assert result["protocol"] == 1

    def test_unknown_op_is_bad_request(self, client):
        response = client.request("frobnicate")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"

    def test_bad_params_are_bad_request_with_reason(self, client):
        response = client.request("filter", dataset="NOPE")
        assert response["error"]["code"] == "bad-request"
        assert "NOPE" in response["error"]["message"]
        response = client.request("classify", ordering="zigzag")
        assert response["error"]["code"] == "bad-request"
        response = client.request("filter", partitions=0)
        assert response["error"]["code"] == "bad-request"
        response = client.request("filter", bogus_key=1)
        assert response["error"]["code"] == "bad-request"
        assert "bogus_key" in response["error"]["message"]

    def test_filter_caches_by_spec_hash(self, client):
        first = client.request("filter", dataset="CRE", seed=41)
        second = client.request("filter", dataset="CRE", seed=41)
        assert first["ok"] and second["ok"]
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["spec_hash"] == second["spec_hash"]
        assert canonical(first["result"]) == canonical(second["result"])

    def test_equivalent_spellings_share_one_cache_entry(self, client):
        # Lower-case dataset + explicit defaults vs bare: one normalised spec.
        a = client.request("filter", dataset="cre", seed=42)
        b = client.request(
            "filter",
            dataset="CRE",
            method="chordal",
            ordering="natural",
            partitions=1,
            partition_method="block",
            seed=42,
        )
        assert a["spec_hash"] == b["spec_hash"]
        assert b["cached"] is True

    def test_reload_invalidates_cached_entries(self, client):
        before = client.request("filter", dataset="CRE", seed=43)
        assert client.request("filter", dataset="CRE", seed=43)["cached"] is True
        reload_result = client.result("reload", dataset="CRE")
        assert reload_result["invalidated"] >= 1
        after = client.request("filter", dataset="CRE", seed=43)
        assert after["cached"] is False  # stale spec-hash entry was dropped
        # The rebuilt bundle is deterministic, so the payload is unchanged.
        assert canonical(after["result"]) == canonical(before["result"])
        generation = [d for d in client.result("datasets") if d["dataset"] == "CRE"]
        assert generation and generation[0]["generation"] >= 1

    def test_stats_expose_every_layer(self, client):
        client.request("filter", dataset="CRE", seed=44)
        stats = client.result("stats")
        assert stats["protocol"] == 1
        assert stats["cache"]["capacity"] == 256
        assert set(stats["admission"]) == {
            "admitted", "rejected", "executed", "in_flight", "pending",
            "workers_alive", "worker_respawns",
        }
        assert set(stats["enrichment"]) == {"batches", "coalesced_requests", "scored_clusters"}
        assert set(stats["supervision"]) == {"retries", "degrades"}
        assert any(d["dataset"] == "CRE" for d in stats["datasets"])
        assert all(d["health"] == "healthy" for d in stats["datasets"])

    def test_enrich_original_matches_direct_scoring(self, server, client):
        result = client.result("enrich", dataset="CRE")
        state = server.state.get("CRE", SCALE)
        expected = state.bundle.scorer.cluster_aees(
            [c.subgraph for c in state.bundle.original_clusters]
        )
        assert result["n_clusters"] == len(expected)
        assert [r["aees_hex"] for r in result["clusters"]] == [float(v).hex() for v in expected]


# ----------------------------------------------------------------------
# byte-identity against the cold CLI (ordering × partitioner grid)
# ----------------------------------------------------------------------
def cold_cli_json(capsys, argv) -> str:
    assert cli_main(argv) == 0
    out = capsys.readouterr().out.strip()
    assert out.startswith("{") and out.endswith("}")
    return out


class TestColdCliEquivalence:
    @pytest.mark.parametrize("ordering", ["natural", "rcm", "high_degree", "low_degree"])
    @pytest.mark.parametrize("partition_method", ["block", "hash"])
    def test_filter_grid_byte_identical(self, server, client, capsys, ordering, partition_method):
        cold = cold_cli_json(
            capsys,
            [
                "filter", "--dataset", "CRE", "--scale", str(SCALE),
                "--ordering", ordering, "--partitions", "2",
                "--partition-method", partition_method, "--json",
            ],
        )
        warm = client.result(
            "filter",
            dataset="CRE",
            ordering=ordering,
            partitions=2,
            partition_method=partition_method,
        )
        assert canonical(warm) == cold

    def test_classify_byte_identical(self, client, capsys):
        cold = cold_cli_json(
            capsys,
            ["analyze", "--dataset", "CRE", "--scale", str(SCALE), "--json"],
        )
        warm = client.result("classify", dataset="CRE")
        assert canonical(warm) == cold

    def test_classify_random_walk_byte_identical(self, client, capsys):
        cold = cold_cli_json(
            capsys,
            [
                "analyze", "--dataset", "CRE", "--scale", str(SCALE),
                "--method", "random_walk", "--seed", "7", "--json",
            ],
        )
        warm = client.result("classify", dataset="CRE", method="random_walk", seed=7)
        assert canonical(warm) == cold

    def test_repeat_of_served_request_still_byte_identical(self, client, capsys):
        # The cache-hit path must serve the same bytes as the miss path.
        cold = cold_cli_json(
            capsys,
            ["filter", "--dataset", "CRE", "--scale", str(SCALE), "--ordering", "rcm", "--json"],
        )
        miss = client.request("filter", dataset="CRE", ordering="rcm")
        hit = client.request("filter", dataset="CRE", ordering="rcm")
        assert hit["cached"] is True or miss["cached"] is True  # second is always a hit
        assert canonical(miss["result"]) == cold
        assert canonical(hit["result"]) == cold


# ----------------------------------------------------------------------
# file-backed warm-restart arena (scale-out tier)
# ----------------------------------------------------------------------
class TestFileBackedServeArena:
    def test_warm_restart_readopts_segments(self, tmp_path):
        import numpy as np

        d = str(tmp_path / "serve-arena")
        payload = {"indptr": np.arange(64, dtype=np.int64)}
        gen1 = ReproServer(default_scale=SCALE, workers=1, arena_dir=d)
        gen1.start()
        try:
            refs1 = gen1.arena.export_bundle(payload)
            segs = gen1.arena.n_segments
            assert gen1.arena.kind == "file"
        finally:
            gen1.stop()  # persists instead of unlinking

        gen2 = ReproServer(default_scale=SCALE, workers=1, arena_dir=d)
        gen2.start()
        try:
            # The restart adopted the previous generation's segments, so an
            # equal re-export digest-hits instead of rebuilding.
            assert gen2.arena.n_segments == segs
            refs2 = gen2.arena.export_bundle({k: v.copy() for k, v in payload.items()})
            assert refs2["indptr"].name == refs1["indptr"].name
        finally:
            gen2.stop()

    def test_stats_surface_arena_and_comm(self, tmp_path):
        d = str(tmp_path / "serve-arena")
        with ReproServer(default_scale=SCALE, workers=1, arena_dir=d) as srv:
            stats = srv.stats()
            assert stats["arena"]["kind"] == "file"
            assert stats["arena"]["path"] is not None
            assert {"segments", "bytes"} <= set(stats["arena"])
            assert {"messages_sent", "messages_received", "bytes_sent", "bytes_received"} <= set(
                stats["comm"]
            )

    def test_default_arena_is_shm_and_unlinked_on_stop(self):
        srv = ReproServer(default_scale=SCALE, workers=1)
        srv.start()
        arena = srv.arena
        assert arena.kind == "shm"
        srv.stop()
        assert arena._unlinked
