"""Unit tests for the ExpressionMatrix container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expression import ExpressionMatrix


def make_matrix() -> ExpressionMatrix:
    values = np.array(
        [
            [1.0, 2.0, 3.0, 4.0],
            [2.0, 4.0, 6.0, 8.0],
            [5.0, 5.0, 5.0, 5.0],
        ]
    )
    return ExpressionMatrix(
        values=values,
        genes=["g1", "g2", "flat"],
        samples=["s1", "s2", "s3", "s4"],
        conditions=["A", "A", "B", "B"],
    )


class TestValidation:
    def test_shape_mismatch_genes(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 3)), genes=["a"], samples=["s1", "s2", "s3"])

    def test_shape_mismatch_samples(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 3)), genes=["a", "b"], samples=["s1"])

    def test_conditions_length(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(
                np.zeros((1, 2)), genes=["a"], samples=["s1", "s2"], conditions=["A"]
            )

    def test_duplicate_genes_rejected(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 2)), genes=["a", "a"], samples=["s1", "s2"])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros(3), genes=["a"], samples=["s1"])


class TestAccess:
    def test_dimensions(self):
        m = make_matrix()
        assert m.n_genes == 3
        assert m.n_samples == 4

    def test_gene_index_and_expression(self):
        m = make_matrix()
        assert m.gene_index("g2") == 1
        assert np.allclose(m.expression_of("g2"), [2, 4, 6, 8])

    def test_unknown_gene_raises(self):
        with pytest.raises(KeyError):
            make_matrix().gene_index("nope")


class TestSubsetting:
    def test_subset_genes(self):
        m = make_matrix().subset_genes(["flat", "g1"])
        assert m.genes == ["flat", "g1"]
        assert np.allclose(m.values[0], 5.0)

    def test_subset_genes_unknown_raises(self):
        with pytest.raises(KeyError):
            make_matrix().subset_genes(["missing"])

    def test_subset_samples(self):
        m = make_matrix().subset_samples(["s3", "s4"])
        assert m.samples == ["s3", "s4"]
        assert m.conditions == ["B", "B"]

    def test_split_by_condition(self):
        parts = make_matrix().split_by_condition()
        assert set(parts) == {"A", "B"}
        assert parts["A"].n_samples == 2

    def test_split_requires_conditions(self):
        m = ExpressionMatrix(np.zeros((1, 2)), genes=["a"], samples=["s1", "s2"])
        with pytest.raises(ValueError):
            m.split_by_condition()


class TestTransforms:
    def test_standardized_zero_mean_unit_variance(self):
        std = make_matrix().standardized()
        assert np.allclose(std.values[:2].mean(axis=1), 0.0)
        assert np.allclose(std.values[:2].std(axis=1), 1.0)

    def test_standardized_flat_gene_is_zero(self):
        std = make_matrix().standardized()
        assert np.allclose(std.values[2], 0.0)

    def test_gene_variances(self):
        variances = make_matrix().gene_variances()
        assert variances[2] == pytest.approx(0.0)
        assert variances[1] > variances[0]

    def test_top_variance_genes(self):
        m = make_matrix()
        top = m.top_variance_genes(0.34)
        assert top == ["g2"]
        with pytest.raises(ValueError):
            m.top_variance_genes(0.0)
