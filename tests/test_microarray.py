"""Unit tests for the ExpressionMatrix container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expression import ExpressionMatrix


def make_matrix() -> ExpressionMatrix:
    values = np.array(
        [
            [1.0, 2.0, 3.0, 4.0],
            [2.0, 4.0, 6.0, 8.0],
            [5.0, 5.0, 5.0, 5.0],
        ]
    )
    return ExpressionMatrix(
        values=values,
        genes=["g1", "g2", "flat"],
        samples=["s1", "s2", "s3", "s4"],
        conditions=["A", "A", "B", "B"],
    )


class TestValidation:
    def test_shape_mismatch_genes(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 3)), genes=["a"], samples=["s1", "s2", "s3"])

    def test_shape_mismatch_samples(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 3)), genes=["a", "b"], samples=["s1"])

    def test_conditions_length(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(
                np.zeros((1, 2)), genes=["a"], samples=["s1", "s2"], conditions=["A"]
            )

    def test_duplicate_genes_rejected(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 2)), genes=["a", "a"], samples=["s1", "s2"])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros(3), genes=["a"], samples=["s1"])


class TestAccess:
    def test_dimensions(self):
        m = make_matrix()
        assert m.n_genes == 3
        assert m.n_samples == 4

    def test_gene_index_and_expression(self):
        m = make_matrix()
        assert m.gene_index("g2") == 1
        assert np.allclose(m.expression_of("g2"), [2, 4, 6, 8])

    def test_unknown_gene_raises(self):
        with pytest.raises(KeyError):
            make_matrix().gene_index("nope")


class TestSubsetting:
    def test_subset_genes(self):
        m = make_matrix().subset_genes(["flat", "g1"])
        assert m.genes == ["flat", "g1"]
        assert np.allclose(m.values[0], 5.0)

    def test_subset_genes_unknown_raises(self):
        with pytest.raises(KeyError):
            make_matrix().subset_genes(["missing"])

    def test_subset_samples(self):
        m = make_matrix().subset_samples(["s3", "s4"])
        assert m.samples == ["s3", "s4"]
        assert m.conditions == ["B", "B"]

    def test_split_by_condition(self):
        parts = make_matrix().split_by_condition()
        assert set(parts) == {"A", "B"}
        assert parts["A"].n_samples == 2

    def test_split_requires_conditions(self):
        m = ExpressionMatrix(np.zeros((1, 2)), genes=["a"], samples=["s1", "s2"])
        with pytest.raises(ValueError):
            m.split_by_condition()


class TestTransforms:
    def test_standardized_zero_mean_unit_variance(self):
        std = make_matrix().standardized()
        assert np.allclose(std.values[:2].mean(axis=1), 0.0)
        assert np.allclose(std.values[:2].std(axis=1), 1.0)

    def test_standardized_flat_gene_is_zero(self):
        std = make_matrix().standardized()
        assert np.allclose(std.values[2], 0.0)

    def test_gene_variances(self):
        variances = make_matrix().gene_variances()
        assert variances[2] == pytest.approx(0.0)
        assert variances[1] > variances[0]

    def test_top_variance_genes(self):
        m = make_matrix()
        top = m.top_variance_genes(0.34)
        assert top == ["g2"]
        with pytest.raises(ValueError):
            m.top_variance_genes(0.0)


class TestStandardizedMemo:
    def test_standardized_is_memoised(self):
        m = make_matrix()
        assert m.standardized() is m.standardized()

    def test_standardized_matrix_memoises_itself(self):
        std = make_matrix().standardized()
        assert std.standardized() is std.standardized()

    def test_correlation_passes_reuse_the_memo(self, monkeypatch):
        from repro.expression.correlation import (
            correlated_pair_arrays,
            pearson_correlation_matrix,
        )

        m = make_matrix()
        calls = {"n": 0}
        original = ExpressionMatrix.standardized

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(ExpressionMatrix, "standardized", counting)
        pearson_correlation_matrix(m)
        correlated_pair_arrays(m)
        pearson_correlation_matrix(m)
        # Three passes, three cache lookups, one actual standardisation: the
        # counting wrapper fires per call but the body's compute path only
        # runs while the memo is empty.
        assert calls["n"] == 3
        assert m._standardized is not None
        assert m.standardized() is m._standardized

    def test_memo_not_shared_across_transforms(self):
        m = make_matrix()
        first = m.standardized()
        sub = m.subset_genes(["g1", "g2"])
        assert sub.standardized() is not first
        assert sub.standardized().n_genes == 2


class TestStandardizedImmutability:
    def test_values_frozen_once_memo_exists(self):
        m = make_matrix()
        m.values[0, 0] = 99.0  # mutable before the memo fills
        std = m.standardized()
        with pytest.raises(ValueError):
            m.values[0, 0] = 1.0
        with pytest.raises(ValueError):
            std.values[0, 0] = 1.0
