"""Unit tests for the synthetic study generator and canned dataset configs."""

from __future__ import annotations

import pytest

from repro.expression import DATASET_CONFIGS, dataset_names, generate_study, make_study
from repro.expression.datasets import StudyConfig


class TestConfigs:
    def test_four_paper_datasets_defined(self):
        assert dataset_names() == ["YNG", "MID", "UNT", "CRE"]
        assert set(DATASET_CONFIGS) == {"YNG", "MID", "UNT", "CRE"}

    def test_paper_scale_sizes(self):
        assert DATASET_CONFIGS["YNG"].n_genes == pytest.approx(5400, rel=0.1)
        assert DATASET_CONFIGS["CRE"].n_genes == pytest.approx(27900, rel=0.1)

    def test_yng_mid_have_weaker_signal_than_unt_cre(self):
        assert DATASET_CONFIGS["YNG"].biological_signal < DATASET_CONFIGS["CRE"].biological_signal
        assert DATASET_CONFIGS["MID"].biological_signal < DATASET_CONFIGS["UNT"].biological_signal

    def test_scaled_shrinks_counts(self):
        cfg = DATASET_CONFIGS["CRE"].scaled(0.1)
        assert cfg.n_genes < DATASET_CONFIGS["CRE"].n_genes
        assert cfg.n_modules >= 2
        assert cfg.module_size == DATASET_CONFIGS["CRE"].module_size

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DATASET_CONFIGS["CRE"].scaled(0.0)

    def test_background_genes_required(self, tiny_study_config):
        required = tiny_study_config.background_genes_required()
        assert required == 8 * 5 + 4 * 6 + 10


class TestGeneration:
    def test_matrix_dimensions(self, tiny_study, tiny_study_config):
        assert tiny_study.matrix.n_samples == tiny_study_config.n_samples
        assert tiny_study.matrix.n_genes >= tiny_study_config.n_genes - 5

    def test_module_membership_recorded(self, tiny_study, tiny_study_config):
        assert len(tiny_study.modules) == tiny_study_config.n_modules
        for members in tiny_study.modules.values():
            assert len(members) == tiny_study_config.module_size
        module_of = tiny_study.module_of()
        assert len(module_of) == tiny_study_config.n_modules * tiny_study_config.module_size

    def test_reproducible_for_seed(self, tiny_study_config):
        a = generate_study(tiny_study_config, seed=5)
        b = generate_study(tiny_study_config, seed=5)
        assert a.matrix.genes == b.matrix.genes
        assert (a.matrix.values == b.matrix.values).all()

    def test_different_seeds_differ(self, tiny_study_config):
        a = generate_study(tiny_study_config, seed=5)
        b = generate_study(tiny_study_config, seed=6)
        assert (a.matrix.values != b.matrix.values).any()

    def test_gene_order_is_shuffled(self, tiny_study):
        # the chip order must not list whole modules contiguously
        genes = tiny_study.matrix.genes
        first_module = next(iter(tiny_study.modules.values()))
        positions = sorted(genes.index(g) for g in first_module)
        assert positions[-1] - positions[0] > len(first_module)

    def test_network_modules_are_dense(self, tiny_study, tiny_network):
        for members in tiny_study.modules.values():
            sub = tiny_network.subgraph([m for m in members if tiny_network.has_vertex(m)])
            assert sub.density() > 0.5

    def test_network_contains_noise_edges(self, tiny_study, tiny_network):
        module_genes = set(tiny_study.module_of())
        noise_edges = [
            (u, v)
            for u, v in tiny_network.iter_edges()
            if u not in module_genes or v not in module_genes
        ]
        assert len(noise_edges) > 0

    def test_true_module_edges(self, tiny_study, tiny_study_config):
        edges = tiny_study.true_module_edges()
        per_module = tiny_study_config.module_size * (tiny_study_config.module_size - 1) // 2
        assert len(edges) == tiny_study_config.n_modules * per_module

    def test_network_cached(self, tiny_study):
        assert tiny_study.network() is tiny_study.network()

    def test_network_rebuild_not_cached_for_custom_threshold(self, tiny_study):
        from repro.expression import CorrelationThreshold

        custom = tiny_study.network(threshold=CorrelationThreshold(min_abs_rho=0.99))
        assert custom.n_edges <= tiny_study.network().n_edges


class TestMakeStudy:
    def test_make_study_known_names(self):
        study = make_study("YNG", scale=0.02)
        assert study.name == "YNG"
        assert study.matrix.n_genes > 0

    def test_make_study_unknown_name(self):
        with pytest.raises(KeyError):
            make_study("HUMAN")

    def test_make_study_default_seed_is_stable(self):
        a = make_study("MID", scale=0.02)
        b = make_study("MID", scale=0.02)
        assert a.matrix.genes == b.matrix.genes

    def test_cre_larger_than_yng(self):
        yng = make_study("YNG", scale=0.03)
        cre = make_study("CRE", scale=0.03)
        assert cre.matrix.n_genes > yng.matrix.n_genes
