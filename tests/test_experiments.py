"""Tests for the per-figure experiment drivers (tiny scale, qualitative claims)."""

from __future__ import annotations

import pytest

from repro.pipeline import experiments as exp

SCALE = 0.02  # tiny but large enough for every driver to produce data


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    exp.clear_bundle_cache()
    yield
    exp.clear_bundle_cache()


class TestInfrastructure:
    def test_default_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert exp.default_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            exp.default_scale()
        monkeypatch.delenv("REPRO_SCALE")
        assert exp.default_scale() > 0

    def test_get_bundle_memoised(self):
        a = exp.get_bundle("YNG", SCALE)
        b = exp.get_bundle("YNG", SCALE)
        assert a is b

    def test_ordering_labels(self):
        assert exp.ORDERING_LABELS["natural"] == "NO"
        assert exp.ORDERING_LABELS["rcm"] == "RCM"


class TestFigureDrivers:
    def test_fig04_rows_cover_all_networks(self):
        out = exp.fig04_aees_by_ordering(scale=SCALE, datasets=("YNG",))
        networks = {row["network"] for row in out["rows"]}
        assert {"ORIG", "NO", "HD", "LD", "RCM"} <= networks
        assert all("aees" in row for row in out["rows"])

    def test_fig04_ordering_means_are_similar(self):
        # H0b: orderings have limited impact on the mean enrichment
        out = exp.fig04_aees_by_ordering(scale=SCALE, datasets=("YNG",))
        means = {k: v for k, v in out["per_network_mean"].items() if not k.endswith("ORIG")}
        if len(means) >= 2:
            values = list(means.values())
            assert max(values) - min(values) < 4.0

    def test_fig05_points_within_unit_square(self):
        out = exp.fig05_overlap_scatter(scale=SCALE, datasets=("CRE",))
        data = out["datasets"]["CRE"]
        for p in data["overlap_points"] + data["new_cluster_points"]:
            assert 0.0 <= p["node_overlap"] <= 1.0
            assert 0.0 <= p["edge_overlap"] <= 1.0
        assert data["overlap_points"], "chordal filtering must retain overlapping clusters"

    def test_fig06_fig07_point_structure(self):
        node = exp.fig06_node_overlap_vs_aees(scale=SCALE, datasets=("CRE",))
        edge = exp.fig07_edge_overlap_vs_aees(scale=SCALE, datasets=("CRE",))
        assert node["overlap_attr"] == "node_overlap"
        assert edge["overlap_attr"] == "edge_overlap"
        assert len(node["points"]) == len(edge["points"])
        assert all(0.0 <= p["overlap"] <= 1.0 for p in node["points"])

    def test_fig08_sensitivity_specificity_shape(self):
        out = exp.fig08_sensitivity_specificity(scale=SCALE, datasets=("CRE",))
        node = out["node_overlap"]
        edge = out["edge_overlap"]
        for block in (node, edge):
            assert block["TP"] + block["FP"] + block["FN"] + block["TN"] > 0
            assert 0.0 <= block["sensitivity"] <= 1.0
            assert 0.0 <= block["specificity"] <= 1.0
        # Paper, Figure 8: node-overlap matching is the more sensitive criterion.
        assert node["sensitivity"] >= edge["sensitivity"]

    def test_fig09_improvement_case_study(self):
        out = exp.fig09_cluster_refinement(scale=SCALE, dataset="CRE", ordering="high_degree")
        best = out["best_improvement"]
        assert best is not None
        assert best["filtered_aees"] >= best["original_aees"]
        assert 0.0 <= best["node_overlap"] <= 1.0

    def test_fig10_scalability_shape(self):
        out = exp.fig10_scalability(scale=SCALE, processor_counts=(1, 2, 4, 8))
        for size in ("small", "large"):
            series = out["series"][size]
            # the random walk is never slower than the chordal filters
            for p in out["processor_counts"]:
                assert series["random_walk"][p] <= series["chordal_nocomm"][p] + 1e-9
                # on tiny inputs with almost no border edges the two chordal
                # variants cost the same to within bookkeeping noise
                assert series["chordal_nocomm"][p] <= series["chordal_comm"][p] * 1.02 + 1e-3
            # the communication-free filter scales: more processors, less time
            assert series["chordal_nocomm"][8] <= series["chordal_nocomm"][1]

    def test_fig11_parallel_consistency(self):
        out = exp.fig11_parallel_consistency(scale=SCALE, processor_counts=(1, 8))
        assert set(out["overlap_points"]) == {1, 8}
        assert "ORIG" in out["top_clusters"]
        # parallelism removes edges but must not wipe out the high-AEES clusters
        assert out["edges_kept_8P"] <= out["edges_kept_1P"]
        if out["top_clusters"]["1P"]:
            assert out["top_clusters"]["8P"], "64P-analogue should keep relevant clusters"

    def test_random_walk_control_claim(self):
        out = exp.random_walk_control(scale=SCALE, datasets=("CRE",), n_partitions=4)
        row = out["rows"][0]
        assert row["random_walk_clusters"] <= row["chordal_clusters"] // 4
        assert row["random_walk_edges"] < row["chordal_edges"]

    def test_border_edge_study(self):
        out = exp.border_edge_study(
            scale=SCALE, dataset="CRE", processor_counts=(2, 4), partition_methods=("block", "hash")
        )
        assert len(out["rows"]) == 4
        for row in out["rows"]:
            assert row["nocomm_duplicates"] <= row["border_edges"]
            assert row["border_edges"] >= 0
