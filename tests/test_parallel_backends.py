"""Execution-backend equivalence and lifecycle tests.

The shared-memory execution runtime promises that the choice of backend —
``serial`` / ``thread`` / ``process`` (pickled payloads) / ``process-shm``
(zero-copy arena payloads) — never changes a sampler's output: same kept
edge set, same admission order, same duplicate counts.  This module pins
that promise:

* the no-communication sampler across **all orderings × all partitioners**
  on the ``process-shm`` backend against the serial reference (the process
  grid is cheap here because ranks share one spawn pool);
* the with-communication sampler across the full grid on ``thread`` vs
  ``serial``, plus a Latin-square of (ordering, partitioner) cells on the
  real-process backends — every ordering and every partitioner appears in a
  process-backed cell, while keeping the interpreter-spawn cost of one world
  per call bounded;
* the ``run_spmd`` process backend itself (messaging, collectives via
  ProcComm, statistics, error propagation);
* ``parallel_map`` thread / process-shm backends and the vectorised border
  admission against its scalar reference;
* worker-pool lifecycle: grow requests reuse the warm pool, shutdown is
  idempotent, and a fresh pool appears on demand afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel_comm import parallel_chordal_comm_filter
from repro.core.parallel_nocomm import (
    admit_border_edges_no_communication_arrays,
    admit_border_edges_no_communication_indices,
    parallel_chordal_nocomm_filter,
)
from repro.graph.generators import correlation_like_graph
from repro.parallel import runner as runner_mod
from repro.parallel.shm import arena_scope
from repro.parallel.runner import (
    available_backends,
    parallel_map,
    run_spmd,
    shutdown_worker_pool,
    worker_pool_size,
)

ORDERINGS = ["natural", "high_degree", "low_degree", "rcm"]
PARTITIONERS = ["block", "hash", "bfs", "greedy"]

#: Every ordering and every partitioner appears exactly once — the grid for
#: backends whose per-call cost is a full interpreter spawn per rank.
LATIN_CELLS = list(zip(ORDERINGS, PARTITIONERS))


@pytest.fixture(scope="module")
def graph():
    return correlation_like_graph(seed=11, n_modules=3, module_size=7, n_background=90)


def _signature(result):
    """Everything the backends must agree on, order included."""
    return (
        sorted(map(repr, result.graph.iter_edges())),
        result.accepted_border_edges,
        result.duplicate_border_edges,
        [w.border_edges for w in result.rank_work],
    )


class TestNocommBackendEquivalence:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("partition_method", PARTITIONERS)
    def test_process_shm_matches_serial_full_grid(self, graph, ordering, partition_method):
        ref = parallel_chordal_nocomm_filter(
            graph, 4, ordering=ordering, partition_method=partition_method, backend="serial"
        )
        got = parallel_chordal_nocomm_filter(
            graph, 4, ordering=ordering, partition_method=partition_method, backend="process-shm"
        )
        assert _signature(got) == _signature(ref)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("ordering,partition_method", LATIN_CELLS)
    def test_other_backends_match_serial(self, graph, backend, ordering, partition_method):
        ref = parallel_chordal_nocomm_filter(
            graph, 4, ordering=ordering, partition_method=partition_method, backend="serial"
        )
        got = parallel_chordal_nocomm_filter(
            graph, 4, ordering=ordering, partition_method=partition_method, backend=backend
        )
        assert _signature(got) == _signature(ref)

    def test_empty_partitions_process_shm(self, graph):
        # More partitions than some parts can fill: block partitioning leaves
        # trailing parts empty on a small subgraph; outputs must still match.
        small = correlation_like_graph(seed=5, n_modules=1, module_size=4, n_background=3)
        ref = parallel_chordal_nocomm_filter(small, 9, ordering="natural", backend="serial")
        got = parallel_chordal_nocomm_filter(small, 9, ordering="natural", backend="process-shm")
        assert _signature(got) == _signature(ref)

    def test_unknown_backend_rejected(self, graph):
        with pytest.raises(ValueError, match="process-shm"):
            parallel_chordal_nocomm_filter(graph, 2, backend="gpu")

    def test_repeat_runs_in_arena_scope_reuse_segments(self, graph):
        # Steady-state reuse: inside a scope the second run's rebuilt-but-
        # equal buffers content-dedup onto the first run's segments (no new
        # exports) and the output stays bit-identical.
        ref = parallel_chordal_nocomm_filter(graph, 4, ordering="rcm", backend="serial")
        with arena_scope() as arena:
            first = parallel_chordal_nocomm_filter(graph, 4, ordering="rcm", backend="process-shm")
            segments_after_first = arena.n_segments
            second = parallel_chordal_nocomm_filter(graph, 4, ordering="rcm", backend="process-shm")
            assert arena.n_segments == segments_after_first
        assert _signature(first) == _signature(ref)
        assert _signature(second) == _signature(ref)

    def test_backend_recorded_in_extra(self, graph):
        result = parallel_chordal_nocomm_filter(graph, 2, backend="thread")
        assert result.extra["backend"] == "thread"


class TestCommBackendEquivalence:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("partition_method", PARTITIONERS)
    def test_thread_matches_serial_full_grid(self, graph, ordering, partition_method):
        ref = parallel_chordal_comm_filter(
            graph, 3, ordering=ordering, partition_method=partition_method, backend="serial"
        )
        got = parallel_chordal_comm_filter(
            graph, 3, ordering=ordering, partition_method=partition_method, backend="thread"
        )
        assert _signature(got) == _signature(ref)

    @pytest.mark.parametrize("ordering,partition_method", LATIN_CELLS)
    def test_process_shm_matches_thread(self, graph, ordering, partition_method):
        ref = parallel_chordal_comm_filter(
            graph, 2, ordering=ordering, partition_method=partition_method, backend="thread"
        )
        got = parallel_chordal_comm_filter(
            graph, 2, ordering=ordering, partition_method=partition_method, backend="process-shm"
        )
        assert _signature(got) == _signature(ref)
        assert got.extra["backend"] == "process-shm"

    def test_process_pickled_matches_thread(self, graph):
        ref = parallel_chordal_comm_filter(graph, 2, ordering="rcm", backend="thread")
        got = parallel_chordal_comm_filter(graph, 2, ordering="rcm", backend="process")
        assert _signature(got) == _signature(ref)
        assert got.extra["backend"] == "process"

    def test_default_backend_unchanged(self, graph):
        result = parallel_chordal_comm_filter(graph, 2, ordering="natural")
        assert result.extra["backend"] == "thread"
        single = parallel_chordal_comm_filter(graph, 1, ordering="natural")
        assert single.extra["backend"] == "serial"

    def test_unknown_backend_rejected(self, graph):
        with pytest.raises(ValueError, match="process-shm"):
            parallel_chordal_comm_filter(graph, 2, backend="gpu")


def _ring_rank(comm, offset):
    """Send rank+offset around a ring and gather everything at every rank."""
    right = (comm.rank + 1) % comm.size
    comm.send(comm.rank + offset, dest=right, tag=5)
    received = comm.recv(source=(comm.rank - 1) % comm.size, tag=5)
    return comm.allgather(received)


def _failing_rank(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    return "ok"


def _sum_with_rank(comm, arr):
    return int(arr.sum()) + comm.rank


class TestRunSpmdProcessBackend:
    def test_ring_messaging_and_collectives(self):
        report = run_spmd(_ring_rank, 3, args=(100,), backend="process")
        expected = [102, 100, 101]  # each rank receives its left neighbour's value
        assert report.values == [expected] * 3
        assert report.backend == "process"
        total = report.total_stats()
        assert total.messages_sent >= 3
        assert total.collectives >= 3

    def test_error_propagates_with_rank(self):
        with pytest.raises(RuntimeError, match="SPMD rank 1 failed"):
            run_spmd(_failing_rank, 2, backend="process")

    def test_rank_args_with_arrays_process_shm(self):
        rank_args = [(np.arange(4),), (np.arange(4) * 2,)]
        report = run_spmd(_sum_with_rank, 2, rank_args=rank_args, backend="process-shm")
        assert report.values == [6, 13]


class TestParallelMapBackends:
    def test_thread_backend_matches_serial(self):
        items = [(i, i + 1) for i in range(10)]
        assert parallel_map(lambda a, b: a * b, items, backend="thread") == parallel_map(
            lambda a, b: a * b, items, backend="serial"
        )

    def test_process_shm_routes_arrays(self):
        items = [(np.full(50, i),) for i in range(5)]
        out = parallel_map(_array_sum, items, backend="process-shm")
        assert out == [0, 50, 100, 150, 200]

    def test_empty_items(self):
        for backend in available_backends():
            assert parallel_map(_array_sum, [], backend=backend) == []


def _array_sum(arr):
    return int(np.asarray(arr).sum())


class TestVectorisedAdmission:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = 30
        n_border = 40
        bu = rng.integers(0, n, n_border).astype(np.int64)
        bv = rng.integers(0, n, n_border).astype(np.int64)
        u_internal = rng.random(n_border) < 0.5
        v_internal = rng.random(n_border) < 0.3
        n_chordal = 25
        cu = rng.integers(0, n, n_chordal).astype(np.int64)
        cv = rng.integers(0, n, n_chordal).astype(np.int64)
        keep = cu != cv
        cu, cv = np.minimum(cu, cv)[keep], np.maximum(cu, cv)[keep]
        packed = np.unique(cu * n + cv)
        cu, cv = packed // n, packed % n
        chordal_adj: dict[int, set[int]] = {}
        for a, b in zip(cu.tolist(), cv.tolist()):
            chordal_adj.setdefault(a, set()).add(b)
            chordal_adj.setdefault(b, set()).add(a)
        ref = admit_border_edges_no_communication_indices(
            bu, bv, u_internal, v_internal, chordal_adj
        )
        got = admit_border_edges_no_communication_arrays(
            bu, bv, u_internal, v_internal, cu, cv
        )
        assert got == ref

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        empty_bool = np.empty(0, dtype=bool)
        assert (
            admit_border_edges_no_communication_arrays(
                empty, empty, empty_bool, empty_bool, empty, empty
            )
            == []
        )


class TestWorkerPoolLifecycle:
    def test_grow_reuses_warm_pool(self):
        shutdown_worker_pool()
        first = runner_mod._get_worker_pool(1)
        assert worker_pool_size() == 1
        # A bigger request grows the pool IN PLACE — same pool object, no
        # terminate-and-respawn of the warm interpreters.
        second = runner_mod._get_worker_pool(3)
        assert second is first
        assert worker_pool_size() == 3
        # A smaller request never shrinks it.
        assert runner_mod._get_worker_pool(2) is first
        assert worker_pool_size() == 3
        # The grown pool still executes work.
        assert parallel_map(_array_sum, [(np.arange(3),)], backend="process") == [3]
        shutdown_worker_pool()

    def test_shutdown_is_idempotent_and_pool_respawns(self):
        runner_mod._get_worker_pool(1)
        assert worker_pool_size() >= 1
        shutdown_worker_pool()
        assert worker_pool_size() == 0
        shutdown_worker_pool()  # second call is a no-op
        assert worker_pool_size() == 0
        # Next request spawns a fresh pool transparently.
        assert parallel_map(_array_sum, [(np.arange(4),)], backend="process") == [6]
        assert worker_pool_size() >= 1
        shutdown_worker_pool()
        assert worker_pool_size() == 0
