"""Unit tests for the centrality measures and hub-retention helpers."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    betweenness_centrality,
    centrality_spearman,
    closeness_centrality,
    complete_graph,
    degree_centrality,
    hub_retention,
    path_graph,
    star_graph,
    top_k_vertices,
)


class TestDegreeCentrality:
    def test_star_hub_is_one(self):
        g = star_graph(5)
        c = degree_centrality(g)
        assert c["v0"] == pytest.approx(1.0)
        assert c["v1"] == pytest.approx(0.2)

    def test_complete_graph_all_ones(self):
        c = degree_centrality(complete_graph(6))
        assert all(v == pytest.approx(1.0) for v in c.values())

    def test_tiny_graphs(self):
        assert degree_centrality(Graph()) == {}
        g = Graph(vertices=["a"])
        assert degree_centrality(g) == {"a": 0.0}


class TestClosenessCentrality:
    def test_path_center_highest(self):
        g = path_graph(5)
        c = closeness_centrality(g)
        assert c["v2"] > c["v0"]
        assert c["v2"] > c["v4"]

    def test_complete_graph_value(self):
        c = closeness_centrality(complete_graph(4))
        assert all(v == pytest.approx(1.0) for v in c.values())

    def test_isolated_vertex_zero(self):
        g = path_graph(3)
        g.add_vertex("alone")
        assert closeness_centrality(g)["alone"] == 0.0

    def test_wf_correction_penalises_small_components(self):
        g = Graph(edges=[("a", "b"), ("c", "d"), ("d", "e"), ("e", "f")])
        corrected = closeness_centrality(g, wf_improved=True)
        uncorrected = closeness_centrality(g, wf_improved=False)
        # "a" sits in a 2-vertex component: correction must lower its score
        assert corrected["a"] < uncorrected["a"]


class TestBetweennessCentrality:
    def test_path_middle_vertex(self):
        g = path_graph(3)
        b = betweenness_centrality(g, normalized=True)
        assert b["v1"] == pytest.approx(1.0)
        assert b["v0"] == pytest.approx(0.0)

    def test_star_hub_carries_all_paths(self):
        g = star_graph(4)
        b = betweenness_centrality(g, normalized=True)
        assert b["v0"] == pytest.approx(1.0)
        assert all(b[f"v{i}"] == pytest.approx(0.0) for i in range(1, 5))

    def test_complete_graph_zero(self):
        b = betweenness_centrality(complete_graph(5))
        assert all(v == pytest.approx(0.0) for v in b.values())

    def test_unnormalized_path(self):
        g = path_graph(4)
        b = betweenness_centrality(g, normalized=False)
        # v1 lies on the v0-v2, v0-v3 shortest paths => 2 pairs
        assert b["v1"] == pytest.approx(2.0)


class TestHubHelpers:
    def test_top_k(self):
        c = {"a": 0.9, "b": 0.5, "c": 0.9, "d": 0.1}
        assert top_k_vertices(c, 2) == ["a", "c"]
        assert top_k_vertices(c, 0) == []
        with pytest.raises(ValueError):
            top_k_vertices(c, -1)

    def test_hub_retention_identity(self):
        g = star_graph(8)
        assert hub_retention(g, g, k=3) == 1.0

    def test_hub_retention_drops_when_hub_stripped(self):
        g = star_graph(8)
        stripped = g.spanning_subgraph([("v1", "v0")])  # hub keeps only one edge
        retention = hub_retention(g, stripped, k=1, measure="degree")
        assert retention in (0.0, 1.0)  # deterministic given tie-break
        with pytest.raises(KeyError):
            hub_retention(g, stripped, measure="pagerank")
        with pytest.raises(ValueError):
            hub_retention(g, stripped, k=0)

    def test_centrality_spearman_identity(self):
        g = path_graph(8)
        assert centrality_spearman(g, g, measure="degree") == pytest.approx(1.0)

    def test_centrality_spearman_constant_ranking(self):
        g = complete_graph(4)
        assert centrality_spearman(g, g, measure="degree") == 0.0

    def test_centrality_spearman_unknown_measure(self):
        g = path_graph(4)
        with pytest.raises(KeyError):
            centrality_spearman(g, g, measure="katz")
