"""Schema checks for the committed ``BENCH_*.json`` baselines.

Every benchmark harness under ``benchmarks/`` commits a baseline file at the
repo root that the CI gates re-measure against.  The harnesses evolved
independently, so this tier pins the *shared* envelope: every committed
baseline must carry the same core keys (schema tag, provenance, the runs
table), its schema tag must match the ``bench_<name>/v<N>`` convention, and
the runs table must be a non-empty list of dicts.  A new benchmark that
forgets the envelope fails here, before its CI job ever runs.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The envelope every committed baseline shares, whatever else it measures.
REQUIRED_KEYS = {"schema", "created", "label", "platform", "python", "quick", "runs"}

SCHEMA_RE = re.compile(r"^bench_[a-z0-9_]+/v\d+$")

BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def _load(path: Path) -> dict:
    with path.open("r", encoding="utf-8") as fh:
        return json.load(fh)


def test_at_least_one_baseline_committed():
    assert BENCH_FILES, "no BENCH_*.json baselines found at the repo root"


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_baseline_has_shared_envelope(path: Path):
    data = _load(path)
    missing = REQUIRED_KEYS - set(data)
    assert not missing, f"{path.name} missing required keys: {sorted(missing)}"


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_baseline_schema_tag_convention(path: Path):
    data = _load(path)
    schema = data["schema"]
    assert SCHEMA_RE.match(schema), f"{path.name}: schema tag {schema!r} not bench_<name>/v<N>"
    # The tag's name component must match the file it lives in, so a
    # copy-pasted harness can't commit a baseline under the wrong identity.
    name = schema.split("/")[0]
    assert path.name == f"BENCH_{name.removeprefix('bench_')}.json", (
        f"{path.name}: schema tag {schema!r} does not match the file name"
    )


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_baseline_runs_table_shape(path: Path):
    data = _load(path)
    runs = data["runs"]
    assert isinstance(runs, list) and runs, f"{path.name}: runs must be a non-empty list"
    assert all(isinstance(row, dict) for row in runs), f"{path.name}: runs rows must be dicts"


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_baseline_provenance_types(path: Path):
    data = _load(path)
    assert isinstance(data["quick"], bool), f"{path.name}: quick must be a bool"
    for key in ("created", "label", "platform", "python"):
        assert isinstance(data[key], str) and data[key], f"{path.name}: {key} must be a non-empty string"


# ----------------------------------------------------------------------
# incremental baseline: the acceptance floor is committed, not just measured
# ----------------------------------------------------------------------
INCREMENTAL_BASELINE = REPO_ROOT / "BENCH_incremental.json"


def test_incremental_baseline_pins_acceptance_floor():
    """The committed delta-update baseline must hold the >=10x floor.

    Every row must be a delta (a committed baseline measured through the
    rebuild fallback would be meaningless) with byte-identical payloads, and
    the headline kinds at the largest measured scale must clear 10x.
    """
    data = _load(INCREMENTAL_BASELINE)
    assert data["schema"] == "bench_incremental/v1"
    rows = data["runs"]
    for row in rows:
        assert row["mode"] == "delta", f"{row['scale']}/{row['kind']}: fallback rebuild measured"
        assert row["identical"] is True, f"{row['scale']}/{row['kind']}: payloads diverged"
        assert row["speedup"] and row["speedup"] > 1.0
    largest = rows[-1]["scale"]
    headline = {
        row["kind"]: row["speedup"] for row in rows if row["scale"] == largest
    }
    for kind in ("single_sample", "single_annotation"):
        assert headline[kind] >= 10.0, (
            f"{largest}/{kind}: committed speedup {headline[kind]}x below the 10x floor"
        )
