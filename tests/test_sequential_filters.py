"""Unit tests for the sequential chordal and random-walk filters."""

from __future__ import annotations

import pytest

from repro.core import (
    FilterResult,
    is_chordal,
    sequential_chordal_filter,
    sequential_random_walk_filter,
)
from repro.core.sequential import resolve_order
from repro.graph import complete_graph, correlation_like_graph, cycle_graph, erdos_renyi_graph


@pytest.fixture(scope="module")
def network():
    return correlation_like_graph(n_modules=4, module_size=8, n_background=60, seed=9)


class TestSequentialChordal:
    def test_result_structure(self, network):
        result = sequential_chordal_filter(network, ordering="natural")
        assert isinstance(result, FilterResult)
        assert result.method == "chordal_sequential"
        assert result.ordering == "natural"
        assert result.n_partitions == 1
        assert result.border_edges == []
        assert result.simulated_time is not None and result.simulated_time > 0
        assert result.wall_time is not None

    def test_filtered_graph_is_chordal_subgraph(self, network):
        result = sequential_chordal_filter(network)
        assert is_chordal(result.graph)
        for u, v in result.graph.iter_edges():
            assert network.has_edge(u, v)
        assert set(result.graph.vertices()) == set(network.vertices())

    def test_noise_free_input_keeps_all_edges(self):
        clique = complete_graph(8)
        result = sequential_chordal_filter(clique)
        assert result.edge_reduction == 0.0
        assert result.n_edges_removed == 0

    def test_noisy_input_reduces_edges(self):
        result = sequential_chordal_filter(cycle_graph(10))
        assert result.n_edges_removed == 1
        assert result.edge_reduction == pytest.approx(0.1)

    @pytest.mark.parametrize("ordering", ["natural", "high_degree", "low_degree", "rcm"])
    def test_all_orderings_supported(self, network, ordering):
        result = sequential_chordal_filter(network, ordering=ordering)
        assert result.ordering == ordering
        assert is_chordal(result.graph)

    def test_explicit_order(self, network):
        order = list(reversed(network.vertices()))
        result = sequential_chordal_filter(network, ordering=None, explicit_order=order)
        assert result.ordering == "explicit"
        assert is_chordal(result.graph)

    def test_summary_keys(self, network):
        summary = sequential_chordal_filter(network).summary()
        for key in ("method", "edges_kept", "edge_reduction", "simulated_time"):
            assert key in summary


class TestResolveOrder:
    def test_none_passthrough(self, network):
        order, name = resolve_order(network, None)
        assert order is None and name is None

    def test_named_ordering(self, network):
        order, name = resolve_order(network, "high_degree")
        assert name == "high_degree"
        assert set(order) == set(network.vertices())

    def test_explicit_order_validated(self, network):
        with pytest.raises(ValueError):
            resolve_order(network, None, explicit_order=network.vertices()[:3])


class TestSequentialRandomWalk:
    def test_result_structure(self, network):
        result = sequential_random_walk_filter(network, seed=4)
        assert result.method == "random_walk_sequential"
        assert result.ordering is None
        assert result.extra["seed"] == 4

    def test_is_subgraph(self, network):
        result = sequential_random_walk_filter(network, seed=1)
        for u, v in result.graph.iter_edges():
            assert network.has_edge(u, v)

    def test_reproducible_for_seed(self, network):
        a = sequential_random_walk_filter(network, seed=7)
        b = sequential_random_walk_filter(network, seed=7)
        assert a.graph == b.graph

    def test_different_seeds_differ(self, network):
        a = sequential_random_walk_filter(network, seed=1)
        b = sequential_random_walk_filter(network, seed=2)
        assert a.graph != b.graph

    def test_keeps_at_most_selection_fraction_unique_edges(self, network):
        result = sequential_random_walk_filter(network, seed=3, selection_fraction=0.5)
        assert result.graph.n_edges <= int(0.5 * network.n_edges)

    def test_selection_fraction_validated(self, network):
        with pytest.raises(ValueError):
            sequential_random_walk_filter(network, selection_fraction=0.0)

    def test_empty_graph(self):
        from repro.graph import Graph

        result = sequential_random_walk_filter(Graph())
        assert result.graph.n_edges == 0

    def test_random_walk_keeps_fewer_triangle_edges_than_chordal(self):
        g = erdos_renyi_graph(40, 0.2, seed=2)
        chordal = sequential_chordal_filter(g)
        walk = sequential_random_walk_filter(g, seed=0)
        from repro.graph import count_triangles

        assert count_triangles(chordal.graph) >= count_triangles(walk.graph)


class TestBatchedRandomWalkStream:
    """Regression pins for the batched RNG stream of the sequential walk.

    The CSR port draws uniform deviates in batches (one ``rng.random`` call
    per ``RANDOM_WALK_RNG_BATCH`` steps) instead of one ``rng.integers`` call
    per step, so for the same seed the walk differs from the seed
    implementation.  The change is declared in ``extra["rng_stream"]`` and the
    exact outputs below pin the *new* stream: any further change to how the
    walk consumes randomness must update these values consciously.
    """

    def test_stream_is_documented_in_extra(self, network):
        result = sequential_random_walk_filter(network, seed=0)
        assert result.extra["rng_stream"] == "batched-uniform-v2"
        assert result.extra["rng_batch"] == 4096

    def test_pinned_edges_small_graph(self):
        from repro.graph import path_graph

        g = path_graph(8)
        g.add_edge("v0", "v7")
        g.add_edge("v2", "v5")
        result = sequential_random_walk_filter(g, seed=11)
        assert sorted(result.graph.iter_edges()) == [
            ("v0", "v1"),
            ("v0", "v7"),
            ("v5", "v6"),
            ("v6", "v7"),
        ]
        assert result.extra["selections"] == 4

    def test_pinned_edge_count_network(self, network):
        # network: correlation_like_graph(n_modules=4, module_size=8,
        # n_background=60, seed=9) -> 182 edges; walk seed 7 keeps exactly 55.
        result = sequential_random_walk_filter(network, seed=7)
        assert network.n_edges == 182
        assert result.graph.n_edges == 55
