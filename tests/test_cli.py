"""Tests for the command-line interface (invoked in-process via main())."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.pipeline import experiments as exp

SCALE = "0.02"


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    exp.clear_bundle_cache()
    yield
    exp.clear_bundle_cache()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_filter_defaults(self):
        args = build_parser().parse_args(["filter"])
        assert args.dataset == "CRE"
        assert args.method == "chordal"
        assert args.partitions == 1


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        for name in ("YNG", "MID", "UNT", "CRE"):
            assert name in out

    def test_filter_command_writes_edge_list(self, capsys, tmp_path):
        output = tmp_path / "filtered.tsv"
        code = main([
            "filter", "--dataset", "YNG", "--scale", SCALE,
            "--method", "chordal", "--ordering", "high_degree",
            "--partitions", "4", "--output", str(output),
        ])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "edges_kept" in out

    def test_filter_command_random_walk(self, capsys):
        assert main(["filter", "--dataset", "YNG", "--scale", SCALE, "--method", "random_walk"]) == 0
        assert "random_walk" in capsys.readouterr().out

    def test_analyze_command(self, capsys):
        code = main([
            "analyze", "--dataset", "CRE", "--scale", SCALE,
            "--method", "chordal", "--ordering", "natural", "--partitions", "2", "--top", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        assert "aees" in out

    def test_figure_command_fig08(self, capsys):
        assert main(["figure", "fig08", "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        assert "sensitivity" in out

    def test_figure_command_fig10(self, capsys):
        assert main(["figure", "fig10", "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        assert "processors" in out

    def test_figure_command_random_walk_control(self, capsys):
        assert main(["figure", "random-walk-control", "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        assert "random_walk_clusters" in out

    def test_batch_command_runs_and_caches(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = [
            "batch", "--figures", "fig09", "--scale", SCALE,
            "--ordering", "high_degree", "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ran" in out
        assert list(cache.glob("fig09__*.json"))
        # Second invocation is a cache hit.
        assert main(argv) == 0
        assert "cached" in capsys.readouterr().out

    def test_batch_command_scale_alias(self, capsys, tmp_path):
        argv = [
            "batch", "--figures", "fig09", "--scale", "tiny",
            "--no-cache",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0.02" in out
