"""Concurrency tests for the resident service.

Every synchronisation point here is an event, barrier or server hook — no
sleeps-as-synchronisation.  The hooks (:class:`repro.serve.ServerHooks`) are
the deterministic seams: ``before_execute`` parks an executing request,
``on_enqueued`` establishes the happens-before edge for admission-overflow
ordering, and ``batch_gate``/``batch_submit`` pin the enrichment batcher's
drain loop.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.serve import (
    AdmissionQueue,
    BusyError,
    EnrichmentBatcher,
    ReproServer,
    ServeClient,
    ServerHooks,
    ShuttingDownError,
)

SCALE = 0.02


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# admission queue (unit level)
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_overflow_rejects_immediately(self):
        entered = threading.Event()
        release = threading.Event()

        def blocker():
            entered.set()
            release.wait()
            return "done"

        q = AdmissionQueue(max_pending=1, workers=1)
        q.start()
        try:
            first = q.submit(blocker)
            assert entered.wait(30)  # the worker holds the only slot
            second = q.submit(lambda: "queued")  # fills the bounded queue
            with pytest.raises(BusyError):
                q.submit(lambda: "overflow")
            assert q.stats()["rejected"] == 1
        finally:
            release.set()
            q.shutdown()
        assert first.value == "done"
        assert second.value == "queued"  # graceful drain ran the pending ticket

    def test_submit_after_shutdown_raises(self):
        q = AdmissionQueue(max_pending=2, workers=1)
        q.start()
        q.shutdown()
        with pytest.raises(ShuttingDownError):
            q.submit(lambda: 1)

    def test_ticket_captures_errors(self):
        q = AdmissionQueue(max_pending=2, workers=1)
        q.start()
        try:
            ticket = q.submit(lambda: 1 / 0)
            assert ticket.wait(30)
            assert isinstance(ticket.error, ZeroDivisionError)
        finally:
            q.shutdown()

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionQueue(workers=0)


# ----------------------------------------------------------------------
# enrichment batcher (unit level, deterministic coalescing)
# ----------------------------------------------------------------------
class TestEnrichmentBatcher:
    def test_two_submissions_coalesce_into_one_scorer_pass(self, cre_bundle):
        allow = threading.Event()
        scorer_calls = []
        real = cre_bundle.scorer

        class CountingScorer:
            def cluster_aees(self, graphs):
                scorer_calls.append(len(graphs))
                return real.cluster_aees(graphs)

        batcher = EnrichmentBatcher(CountingScorer(), gate=lambda: allow.wait())
        graphs = [c.subgraph for c in cre_bundle.original_clusters]
        first_half, second_half = graphs[: len(graphs) // 2], graphs[len(graphs) // 2 :]
        try:
            # The drain loop is gated shut, so both submissions pile up and
            # are collected by ONE wake-up once the gate opens.
            item_a = batcher.submit(first_half)
            item_b = batcher.submit(second_half)
            allow.set()
            assert item_a.event.wait(60) and item_b.event.wait(60)
        finally:
            allow.set()
            batcher.stop()
        assert scorer_calls == [len(graphs)]  # one concatenated pass
        stats = batcher.stats()
        assert stats["batches"] == 1
        assert stats["coalesced_requests"] == 2
        assert stats["scored_clusters"] == len(graphs)
        # Batch composition does not change per-cluster scores.
        assert item_a.values == real.cluster_aees(first_half)
        assert item_b.values == real.cluster_aees(second_half)

    def test_batch_error_delivered_to_every_waiter(self):
        class FailingScorer:
            def cluster_aees(self, graphs):
                raise RuntimeError("scorer exploded")

        batcher = EnrichmentBatcher(FailingScorer())
        try:
            with pytest.raises(RuntimeError, match="scorer exploded"):
                batcher.score([object()], timeout=60)
        finally:
            batcher.stop()

    def test_submit_after_stop_raises(self, cre_bundle):
        batcher = EnrichmentBatcher(cre_bundle.scorer)
        batcher.stop()
        with pytest.raises(RuntimeError):
            batcher.submit([])


# ----------------------------------------------------------------------
# multi-client stress with per-client result identity
# ----------------------------------------------------------------------
class TestMultiClientStress:
    N_CLIENTS = 8

    def test_identical_bytes_across_concurrent_clients(self):
        with ReproServer(default_scale=SCALE, workers=4, max_pending=64) as srv:
            barrier = threading.Barrier(self.N_CLIENTS)
            results: list = [None] * self.N_CLIENTS
            errors: list = []

            def worker(i: int) -> None:
                try:
                    with ServeClient(port=srv.port, timeout=600.0) as client:
                        barrier.wait(timeout=120)
                        # Same spec from every client, twice per client: the
                        # response bytes must be identical within a client
                        # (cache hit path == miss path) and across clients.
                        shared_1 = client.result("filter", dataset="CRE", seed=900)
                        own = client.result("filter", dataset="CRE", seed=1000 + i)
                        shared_2 = client.result("filter", dataset="CRE", seed=900)
                        results[i] = (canonical(shared_1), canonical(shared_2), canonical(own))
                except Exception as err:  # noqa: BLE001 — surfaced via the list
                    errors.append((i, repr(err)))

            threads = [
                threading.Thread(target=worker, args=(i,), name=f"stress-{i}")
                for i in range(self.N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert not errors, errors
            assert all(r is not None for r in results)
            shared = {r[0] for r in results} | {r[1] for r in results}
            assert len(shared) == 1  # one byte string across all clients and repeats
            # The seed does not change the chordal filter's output, so the
            # per-client specs are distinct cache entries with equal payloads.
            assert {r[2] for r in results} == shared
            stats = srv.stats()
            assert stats["admission"]["rejected"] == 0
            assert stats["admission"]["executed"] >= self.N_CLIENTS  # misses ran


# ----------------------------------------------------------------------
# bounded admission through the socket
# ----------------------------------------------------------------------
class TestBoundedAdmission:
    def test_overflow_gets_clean_busy_error(self):
        entered = threading.Event()
        release = threading.Event()
        enqueued = threading.Event()

        hooks = ServerHooks(
            before_execute=lambda op, h: (entered.set(), release.wait()),
            on_enqueued=lambda op, h: enqueued.set(),
        )
        with ReproServer(
            default_scale=SCALE, workers=1, max_pending=1, hooks=hooks
        ) as srv:
            responses: dict[str, dict] = {}

            def send(tag: str, seed: int) -> None:
                with ServeClient(port=srv.port, timeout=600.0) as client:
                    responses[tag] = client.request("filter", dataset="CRE", seed=seed)

            # Request A occupies the single worker (parked at the hook)...
            thread_a = threading.Thread(target=send, args=("a", 1))
            thread_a.start()
            assert entered.wait(120)
            # ...request B fills the one queue slot (on_enqueued = the edge
            # proving it was admitted before C is sent)...
            enqueued.clear()
            thread_b = threading.Thread(target=send, args=("b", 2))
            thread_b.start()
            assert enqueued.wait(120)
            # ...so request C must be rejected immediately, not queued.
            with ServeClient(port=srv.port, timeout=600.0) as client:
                busy = client.request("filter", dataset="CRE", seed=3)
            assert busy["ok"] is False
            assert busy["error"]["code"] == "busy"
            release.set()
            thread_a.join(timeout=600)
            thread_b.join(timeout=600)
            assert responses["a"]["ok"] and responses["b"]["ok"]
            assert srv.admission.stats()["rejected"] == 1


# ----------------------------------------------------------------------
# graceful shutdown with in-flight requests
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_in_flight_and_queued_requests_complete(self):
        entered = threading.Event()
        release = threading.Event()
        enqueued = threading.Event()
        hooks = ServerHooks(
            before_execute=lambda op, h: (entered.set(), release.wait()),
            on_enqueued=lambda op, h: enqueued.set(),
        )
        srv = ReproServer(default_scale=SCALE, workers=1, max_pending=4, hooks=hooks)
        srv.start()
        responses: dict[str, dict] = {}

        def send(tag: str, seed: int) -> None:
            with ServeClient(port=srv.port, timeout=600.0) as client:
                responses[tag] = client.request("filter", dataset="CRE", seed=seed)

        thread_a = threading.Thread(target=send, args=("a", 11))
        thread_a.start()
        assert entered.wait(120)  # A is executing (parked)
        enqueued.clear()
        thread_b = threading.Thread(target=send, args=("b", 12))
        thread_b.start()
        assert enqueued.wait(120)  # B is admitted and queued behind A

        stopper = threading.Thread(target=srv.stop)
        stopper.start()
        release.set()  # let the drain finish
        stopper.join(timeout=600)
        thread_a.join(timeout=600)
        thread_b.join(timeout=600)
        assert not stopper.is_alive()
        # Both admitted requests got real responses, not dropped connections.
        assert responses["a"]["ok"] is True
        assert responses["b"]["ok"] is True
        assert canonical(responses["a"]["result"]) == canonical(responses["b"]["result"])
        # The listener is down: new connections are refused outright.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", srv.port), timeout=5)

    def test_stop_is_idempotent(self):
        srv = ReproServer(default_scale=SCALE, workers=1)
        srv.start()
        srv.stop()
        srv.stop()
        assert not srv.running


# ----------------------------------------------------------------------
# cross-request enrichment coalescing through the socket
# ----------------------------------------------------------------------
class TestServedCoalescing:
    def test_concurrent_enrich_requests_share_one_batch(self):
        allow = threading.Event()
        hooks = ServerHooks(
            batch_gate=lambda: allow.wait(),
            # Opens the gate exactly when the second submission is pending.
            batch_submit=lambda pending: allow.set() if pending >= 2 else None,
        )
        with ReproServer(default_scale=SCALE, workers=2, hooks=hooks) as srv:
            results: dict[str, dict] = {}

            def send(tag: str, **params) -> None:
                with ServeClient(port=srv.port, timeout=600.0) as client:
                    results[tag] = client.result("enrich", dataset="CRE", **params)

            threads = [
                threading.Thread(target=send, args=("original",), kwargs={"source": "original"}),
                threading.Thread(target=send, args=("filtered",), kwargs={"source": "filtered"}),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert set(results) == {"original", "filtered"}
            state = srv.state.get("CRE", SCALE)
            stats = state.batcher.stats()
            assert stats["coalesced_requests"] == 2
            assert stats["batches"] == 1  # both scored in one concatenated pass
            # Coalescing must not change the scores: compare against direct
            # per-request scoring on the same warm bundle.
            expected = state.bundle.scorer.cluster_aees(
                [c.subgraph for c in state.bundle.original_clusters]
            )
            got = [r["aees_hex"] for r in results["original"]["clusters"]]
            assert got == [float(v).hex() for v in expected]
