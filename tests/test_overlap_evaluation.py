"""Unit tests for cluster overlap matching and the quadrant evaluation."""

from __future__ import annotations

import pytest

from repro.clustering import (
    Cluster,
    ClusterMatch,
    EvaluationThresholds,
    Quadrant,
    classify_match,
    classify_matches,
    edge_overlap,
    found_clusters,
    jaccard_node_overlap,
    lost_clusters,
    match_clusters,
    node_overlap,
    quadrant_counts,
)
from repro.graph import Graph, complete_graph
from repro.ontology import AnnotationTable, EnrichmentScorer, GODag


def make_cluster(members, edges, cluster_id=0, score=4.0) -> Cluster:
    g = Graph(vertices=members, edges=edges)
    return Cluster(cluster_id=cluster_id, members=list(members), subgraph=g, score=score)


@pytest.fixture
def deep_dag() -> GODag:
    dag = GODag()
    parent = dag.root_id
    for i in range(6):
        dag.add_term(f"D{i}", [parent])
        parent = f"D{i}"
    dag.add_term("shallow", [dag.root_id])
    return dag


def scorer_for(dag: GODag, genes: list[str], deep: bool) -> EnrichmentScorer:
    table = AnnotationTable(dag)
    for g in genes:
        table.annotate(g, ["D5"] if deep else ["shallow"])
    return EnrichmentScorer(dag, table)


class TestOverlapMeasures:
    def test_identical_clusters(self):
        a = make_cluster(["x", "y", "z"], [("x", "y"), ("y", "z")])
        assert node_overlap(a, a) == 1.0
        assert edge_overlap(a, a) == 1.0
        assert jaccard_node_overlap(a, a) == 1.0

    def test_partial_overlap(self):
        original = make_cluster(["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d")])
        candidate = make_cluster(["a", "b", "x"], [("a", "b")])
        assert node_overlap(original, candidate) == pytest.approx(0.5)
        assert edge_overlap(original, candidate) == pytest.approx(1 / 3)
        assert jaccard_node_overlap(original, candidate) == pytest.approx(2 / 5)

    def test_disjoint_clusters(self):
        a = make_cluster(["a", "b"], [("a", "b")])
        b = make_cluster(["x", "y"], [("x", "y")])
        assert node_overlap(a, b) == 0.0
        assert edge_overlap(a, b) == 0.0

    def test_overlap_is_relative_to_original(self):
        original = make_cluster(["a", "b"], [("a", "b")])
        bigger = make_cluster(["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        assert node_overlap(original, bigger) == 1.0  # all of the original is covered


class TestMatching:
    def test_best_match_selected(self):
        orig1 = make_cluster(["a", "b", "c"], [("a", "b"), ("b", "c")], cluster_id=0)
        orig2 = make_cluster(["x", "y", "z"], [("x", "y"), ("y", "z")], cluster_id=1)
        filtered = make_cluster(["x", "y", "q"], [("x", "y")], cluster_id=7)
        matches = match_clusters([orig1, orig2], [filtered])
        assert len(matches) == 1
        assert matches[0].original is orig2
        assert matches[0].node_overlap == pytest.approx(2 / 3)

    def test_found_clusters_have_no_match(self):
        orig = make_cluster(["a", "b"], [("a", "b")])
        new = make_cluster(["p", "q"], [("p", "q")])
        matches = match_clusters([orig], [new])
        assert matches[0].original is None
        assert matches[0].is_found
        assert found_clusters(matches) == [new]

    def test_lost_clusters(self):
        orig_kept = make_cluster(["a", "b"], [("a", "b")])
        orig_lost = make_cluster(["m", "n"], [("m", "n")])
        filtered = make_cluster(["a", "b"], [("a", "b")])
        assert lost_clusters([orig_kept, orig_lost], [filtered]) == [orig_lost]

    def test_no_filtered_clusters_all_lost(self):
        orig = make_cluster(["a", "b"], [("a", "b")])
        assert lost_clusters([orig], []) == [orig]
        assert match_clusters([orig], []) == []


class TestQuadrants:
    def _match(self, members, overlap_members):
        original = make_cluster(overlap_members, [])
        filtered_graph = complete_graph(len(members))
        filtered = Cluster(
            cluster_id=0,
            members=list(filtered_graph.vertices()),
            subgraph=filtered_graph,
            score=4.0,
        )
        shared = len(set(filtered.members) & set(original.members))
        return ClusterMatch(
            filtered=filtered,
            original=original,
            node_overlap=shared / max(len(original.members), 1),
            edge_overlap=0.0,
        )

    def test_quadrant_assignment(self, deep_dag):
        genes = complete_graph(4).vertices()
        deep_scorer = scorer_for(deep_dag, genes, deep=True)
        shallow_scorer = scorer_for(deep_dag, genes, deep=False)
        filtered = Cluster(0, list(genes), complete_graph(4), 4.0)
        original_same = Cluster(1, list(genes), complete_graph(4), 4.0)
        original_other = make_cluster(["z1", "z2", "z3", "z4"], [])

        high_overlap = ClusterMatch(filtered, original_same, node_overlap=1.0, edge_overlap=1.0)
        low_overlap = ClusterMatch(filtered, original_other, node_overlap=0.0, edge_overlap=0.0)

        assert classify_match(high_overlap, deep_scorer).quadrant is Quadrant.TRUE_POSITIVE
        assert classify_match(high_overlap, shallow_scorer).quadrant is Quadrant.FALSE_POSITIVE
        assert classify_match(low_overlap, deep_scorer).quadrant is Quadrant.FALSE_NEGATIVE
        assert classify_match(low_overlap, shallow_scorer).quadrant is Quadrant.TRUE_NEGATIVE

    def test_overlap_attr_validation(self, deep_dag):
        genes = complete_graph(3).vertices()
        scorer = scorer_for(deep_dag, genes, deep=True)
        match = ClusterMatch(Cluster(0, list(genes), complete_graph(3), 3.0), None, 0.0, 0.0)
        with pytest.raises(ValueError):
            classify_match(match, scorer, overlap_attr="volume_overlap")

    def test_counts_and_rates(self, deep_dag):
        genes = complete_graph(4).vertices()
        deep_scorer = scorer_for(deep_dag, genes, deep=True)
        filtered = Cluster(0, list(genes), complete_graph(4), 4.0)
        original = Cluster(1, list(genes), complete_graph(4), 4.0)
        matches = [
            ClusterMatch(filtered, original, node_overlap=1.0, edge_overlap=1.0),
            ClusterMatch(filtered, original, node_overlap=0.1, edge_overlap=0.1),
        ]
        scored = classify_matches(matches, deep_scorer)
        counts = quadrant_counts(scored)
        assert counts.tp == 1 and counts.fn == 1
        assert counts.sensitivity == pytest.approx(0.5)
        assert counts.specificity == 0.0
        assert counts.total == 2
        d = counts.as_dict()
        assert d["TP"] == 1

    def test_custom_thresholds(self, deep_dag):
        genes = complete_graph(4).vertices()
        scorer = scorer_for(deep_dag, genes, deep=True)
        filtered = Cluster(0, list(genes), complete_graph(4), 4.0)
        original = Cluster(1, list(genes), complete_graph(4), 4.0)
        match = ClusterMatch(filtered, original, node_overlap=0.6, edge_overlap=0.6)
        strict = EvaluationThresholds(aees_threshold=100.0, overlap_threshold=0.5)
        assert classify_match(match, scorer, strict).quadrant is Quadrant.FALSE_POSITIVE
