"""Property-based tests (hypothesis) for the chordal kernels and graph invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chordal import (
    chordal_subgraph_edges,
    fill_in_edges,
    is_chordal,
    is_perfect_elimination_ordering,
    maximal_chordal_subgraph,
    maximum_cardinality_search,
)
from repro.graph import Graph, count_triangles, edge_key
from repro.graph.cycles import cycle_basis_sizes


@st.composite
def random_graphs(draw, max_vertices: int = 14, max_extra_edges: int = 30):
    """Strategy: small random simple graphs with string vertex labels."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    vertices = [f"n{i}" for i in range(n)]
    g = Graph(vertices=vertices)
    if n >= 2:
        n_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
        pairs = st.tuples(
            st.integers(min_value=0, max_value=n - 1),
            st.integers(min_value=0, max_value=n - 1),
        )
        for _ in range(n_edges):
            i, j = draw(pairs)
            if i != j:
                g.add_edge(vertices[i], vertices[j])
    return g


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_dsw_output_is_chordal_subgraph(g: Graph):
    """The DSW construction always yields a chordal subgraph of the input."""
    sub = maximal_chordal_subgraph(g)
    assert is_chordal(sub)
    for u, v in sub.iter_edges():
        assert g.has_edge(u, v)
    assert set(sub.vertices()) == set(g.vertices())


@settings(max_examples=40, deadline=None)
@given(random_graphs(max_vertices=10, max_extra_edges=20))
def test_dsw_keeps_all_edges_of_chordal_inputs(g: Graph):
    """If the input is already chordal no edge may be dropped (noise-free ⇒ no reduction)."""
    if is_chordal(g):
        sub = maximal_chordal_subgraph(g)
        assert sub.n_edges == g.n_edges


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_mcs_reverse_peo_iff_chordal(g: Graph):
    """Reverse-MCS is a perfect elimination ordering exactly for chordal graphs."""
    order = maximum_cardinality_search(g)
    if not order:
        return
    peo_ok = is_perfect_elimination_ordering(g, list(reversed(order)))
    assert peo_ok == is_chordal(g)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_fill_in_empty_iff_chordal(g: Graph):
    """The elimination game on reverse MCS produces fill edges iff the graph is non-chordal."""
    fills = fill_in_edges(g)
    assert (len(fills) == 0) == is_chordal(g)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_chordal_subgraph_preserves_triangles_at_least_one_per_clique(g: Graph):
    """The chordal filter never removes an edge of a triangle whose other two edges it kept.

    (Equivalent statement: the kept subgraph is maximal w.r.t. triangle-closing
    edges — if two sides of an original triangle are kept, adding the third
    keeps chordality, so DSW maximality demands it be present.)
    """
    kept = set(chordal_subgraph_edges(g))
    sub = g.spanning_subgraph(kept)
    for u, v in g.iter_edges():
        if (edge_key(u, v)) in kept:
            continue
        common = set(sub.neighbors(u)) & set(sub.neighbors(v))
        for w in common:
            # u-w and v-w kept but u-v dropped: adding u-v would close a triangle
            # over kept edges.  That is only legitimate if it would break
            # chordality elsewhere, which the maximality check below verifies.
            trial = sub.copy()
            trial.add_edge(u, v)
            assert not is_chordal(trial)
            break


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_triangle_count_never_increases_under_filtering(g: Graph):
    """Filtering can only remove triangles, never create them."""
    sub = maximal_chordal_subgraph(g)
    assert count_triangles(sub) <= count_triangles(g)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_cycle_basis_of_chordal_subgraph_has_no_chordless_long_cycle(g: Graph):
    """Sanity link between the cycle utilities and chordality."""
    sub = maximal_chordal_subgraph(g)
    sizes = cycle_basis_sizes(sub)
    # A chordal graph can have long cycles in a fundamental basis, but if the
    # subgraph has no cycle at all the basis must be empty.
    if not sizes:
        assert sub.n_edges < sub.n_vertices or sub.n_vertices == 0
    assert is_chordal(sub)
