"""Unit tests for the synthetic GO DAG generator and study annotation."""

from __future__ import annotations

import pytest

from repro.ontology import EnrichmentScorer, annotate_study, make_go_dag, make_study_ontology


class TestMakeGoDag:
    def test_depth_and_size(self, small_go_dag):
        assert small_go_dag.max_depth() == 5
        assert len(small_go_dag) > 2 ** 5

    def test_validates(self, small_go_dag):
        small_go_dag.validate()

    def test_reproducible(self):
        a = make_go_dag(depth=4, branching=2, seed=9)
        b = make_go_dag(depth=4, branching=2, seed=9)
        assert a.terms() == b.terms()

    def test_some_terms_have_multiple_parents(self):
        dag = make_go_dag(depth=5, branching=3, extra_parent_fraction=0.2, seed=1)
        multi = [t for t in dag.terms() if len(dag.parents(t)) > 1]
        assert multi

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_go_dag(depth=1)
        with pytest.raises(ValueError):
            make_go_dag(branching=1)


class TestAnnotateStudy:
    def test_all_genes_annotated(self, tiny_study, small_go_dag):
        table = annotate_study(tiny_study, small_go_dag)
        assert table.coverage(tiny_study.matrix.genes) == pytest.approx(1.0)

    def test_module_edges_score_higher_than_background_edges(self, tiny_study, small_go_dag):
        table = annotate_study(tiny_study, small_go_dag, seed=2)
        scorer = EnrichmentScorer(small_go_dag, table)
        module = next(iter(tiny_study.modules.values()))
        module_scores = [
            scorer.edge(module[i], module[j]).score
            for i in range(len(module))
            for j in range(i + 1, len(module))
        ]
        background = [g for g in tiny_study.matrix.genes if g not in tiny_study.module_of()][:16]
        background_scores = [
            scorer.edge(background[i], background[j]).score
            for i in range(len(background))
            for j in range(i + 1, len(background))
        ]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(module_scores) > mean(background_scores) + 1.0

    def test_annotation_reproducible_for_seed(self, tiny_study, small_go_dag):
        a = annotate_study(tiny_study, small_go_dag, seed=7)
        b = annotate_study(tiny_study, small_go_dag, seed=7)
        genes = tiny_study.matrix.genes[:20]
        assert all(a.terms_of(g) == b.terms_of(g) for g in genes)

    def test_make_study_ontology_bundles_dag_and_annotations(self, tiny_study):
        dag, table = make_study_ontology(tiny_study, depth=5, branching=2)
        assert table.dag is dag
        assert table.coverage(tiny_study.matrix.genes) == pytest.approx(1.0)

    def test_requires_deep_enough_dag(self, tiny_study):
        shallow = make_go_dag(depth=2, branching=2, seed=0)
        with pytest.raises(ValueError):
            annotate_study(tiny_study, shallow, module_term_min_depth=10)
