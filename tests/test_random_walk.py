"""Unit tests for the parallel random-walk control filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.random_walk import parallel_random_walk_filter, random_walk_edges
from repro.graph import Graph, complete_graph, correlation_like_graph, path_graph


@pytest.fixture(scope="module")
def network():
    return correlation_like_graph(n_modules=3, module_size=8, n_background=60, seed=29)


class TestRandomWalkEdges:
    def test_selected_edges_belong_to_graph(self):
        g = complete_graph(8)
        edges, selections = random_walk_edges(g, np.random.default_rng(0))
        assert selections == int(0.5 * g.n_edges)
        for u, v in edges:
            assert g.has_edge(u, v)

    def test_unique_edges_at_most_selections(self):
        g = complete_graph(10)
        edges, selections = random_walk_edges(g, np.random.default_rng(1))
        assert len(edges) <= selections

    def test_empty_graph(self):
        edges, selections = random_walk_edges(Graph(), np.random.default_rng(0))
        assert edges == [] and selections == 0

    def test_walk_restarts_from_isolated_vertices(self):
        g = path_graph(4)
        g.add_vertex("island")
        edges, _ = random_walk_edges(g, np.random.default_rng(3))
        for u, v in edges:
            assert "island" not in (u, v)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            random_walk_edges(complete_graph(4), np.random.default_rng(0), selection_fraction=1.5)


class TestParallelRandomWalk:
    def test_result_structure(self, network):
        result = parallel_random_walk_filter(network, 4, seed=0)
        assert result.method == "random_walk"
        assert result.n_partitions == 4
        assert len(result.rank_work) == 4
        assert result.simulated_time is not None

    def test_output_is_subgraph_with_all_vertices(self, network):
        result = parallel_random_walk_filter(network, 4, seed=0)
        for u, v in result.graph.iter_edges():
            assert network.has_edge(u, v)
        assert set(result.graph.vertices()) == set(network.vertices())

    def test_reproducible(self, network):
        a = parallel_random_walk_filter(network, 4, seed=5)
        b = parallel_random_walk_filter(network, 4, seed=5)
        assert a.graph == b.graph

    def test_seed_changes_output(self, network):
        a = parallel_random_walk_filter(network, 4, seed=1)
        b = parallel_random_walk_filter(network, 4, seed=2)
        assert a.graph != b.graph

    def test_border_keep_probability_extremes(self, network):
        none_kept = parallel_random_walk_filter(network, 4, seed=0, border_keep_probability=0.0)
        all_kept = parallel_random_walk_filter(network, 4, seed=0, border_keep_probability=1.0)
        assert none_kept.accepted_border_edges == []
        assert set(all_kept.accepted_border_edges) == set(all_kept.border_edges)

    def test_invalid_parameters(self, network):
        with pytest.raises(ValueError):
            parallel_random_walk_filter(network, 0)
        with pytest.raises(ValueError):
            parallel_random_walk_filter(network, 2, border_keep_probability=1.5)

    def test_removes_more_edges_than_chordal(self, network):
        from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter

        walk = parallel_random_walk_filter(network, 4, seed=0)
        chordal = parallel_chordal_nocomm_filter(network, 4)
        assert walk.n_edges_kept < chordal.n_edges_kept

    def test_faster_than_chordal_in_cost_model(self, network):
        from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter

        walk = parallel_random_walk_filter(network, 4, seed=0)
        chordal = parallel_chordal_nocomm_filter(network, 4)
        assert walk.simulated_time <= chordal.simulated_time
