"""Shared fixtures for the test suite.

Heavy objects (synthetic studies, dataset bundles, GO DAGs) are session-scoped
and built at a very small scale so the whole suite stays fast while still
exercising the full pipeline.
"""

from __future__ import annotations

import pytest

from repro.expression.datasets import StudyConfig, generate_study
from repro.graph import Graph, complete_graph, cycle_graph, erdos_renyi_graph
from repro.ontology.generator import make_go_dag
from repro.pipeline.workflow import prepare_dataset


@pytest.fixture
def triangle() -> Graph:
    """K3."""
    return complete_graph(3, prefix="t")


@pytest.fixture
def square() -> Graph:
    """C4 — the smallest non-chordal graph."""
    return cycle_graph(4, prefix="s")


@pytest.fixture
def small_random_graph() -> Graph:
    """A deterministic 30-vertex random graph used across algorithm tests."""
    return erdos_renyi_graph(30, 0.15, seed=7)


@pytest.fixture
def house_graph() -> Graph:
    """A 5-vertex 'house': a square with a triangular roof (not chordal)."""
    g = Graph()
    g.add_edges([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "e"), ("b", "e")])
    return g


@pytest.fixture(scope="session")
def tiny_study_config() -> StudyConfig:
    """A minimal study configuration usable in seconds."""
    return StudyConfig(
        name="TINY",
        n_genes=160,
        n_samples=10,
        n_modules=3,
        module_size=8,
        module_tightness=0.15,
        n_noise_chains=8,
        noise_chain_length=5,
        n_noise_clumps=4,
        noise_clump_size=6,
        clump_tightness=0.24,
        n_module_attachments=10,
        biological_signal=0.9,
    )


@pytest.fixture(scope="session")
def tiny_study(tiny_study_config):
    """A generated tiny study shared across tests (treat as read-only)."""
    return generate_study(tiny_study_config, seed=11)


@pytest.fixture(scope="session")
def tiny_network(tiny_study):
    """The tiny study's thresholded correlation network (treat as read-only)."""
    return tiny_study.network()


@pytest.fixture(scope="session")
def small_go_dag():
    """A small GO-like DAG (depth 5, branching 2) shared across ontology tests."""
    return make_go_dag(depth=5, branching=2, seed=3)


@pytest.fixture(scope="session")
def cre_bundle():
    """A very small CRE bundle exercising the full pipeline (treat as read-only)."""
    return prepare_dataset("CRE", scale=0.02, seed=123)
