"""Unit tests for the vertex orderings (natural, degree-based, RCM)."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    get_ordering,
    high_degree_order,
    low_degree_order,
    natural_order,
    ordering_names,
    path_graph,
    permute_graph,
    random_order,
    rcm_order,
    reverse_order,
    star_graph,
)
from repro.graph.ordering import is_permutation_of_vertices


@pytest.fixture
def sample_graph() -> Graph:
    g = Graph(edges=[("hub", "a"), ("hub", "b"), ("hub", "c"), ("a", "b"), ("d", "e")])
    g.add_vertex("isolated")
    return g


class TestBasicOrderings:
    def test_every_ordering_is_a_permutation(self, sample_graph):
        for name in ordering_names():
            order = get_ordering(name)(sample_graph)
            assert is_permutation_of_vertices(sample_graph, order), name

    def test_natural_order_matches_insertion(self, sample_graph):
        assert natural_order(sample_graph) == sample_graph.vertices()

    def test_high_degree_puts_hub_first(self, sample_graph):
        assert high_degree_order(sample_graph)[0] == "hub"

    def test_low_degree_puts_isolated_first(self, sample_graph):
        assert low_degree_order(sample_graph)[0] == "isolated"

    def test_high_and_low_are_reversed_degree_ranks(self, sample_graph):
        high = high_degree_order(sample_graph)
        low = low_degree_order(sample_graph)
        deg_high = [sample_graph.degree(v) for v in high]
        deg_low = [sample_graph.degree(v) for v in low]
        assert deg_high == sorted(deg_high, reverse=True)
        assert deg_low == sorted(deg_low)

    def test_reverse_order(self, sample_graph):
        assert reverse_order(sample_graph) == list(reversed(sample_graph.vertices()))

    def test_random_order_is_seeded(self, sample_graph):
        assert random_order(sample_graph, seed=1) == random_order(sample_graph, seed=1)
        assert set(random_order(sample_graph, seed=1)) == set(sample_graph.vertices())


class TestRCM:
    def test_rcm_is_permutation(self, sample_graph):
        assert is_permutation_of_vertices(sample_graph, rcm_order(sample_graph))

    def test_rcm_reduces_bandwidth_on_path(self):
        # On a path the RCM ordering should number vertices consecutively,
        # i.e. the maximum index difference across an edge (bandwidth) is 1.
        g = path_graph(12)
        order = rcm_order(g)
        pos = {v: i for i, v in enumerate(order)}
        bandwidth = max(abs(pos[u] - pos[v]) for u, v in g.iter_edges())
        assert bandwidth == 1

    def test_rcm_bandwidth_not_worse_than_natural_on_shuffled_path(self):
        import numpy as np

        g = path_graph(30)
        rng = np.random.default_rng(0)
        shuffled = [g.vertices()[i] for i in rng.permutation(30)]
        g2 = permute_graph(g, shuffled)

        def bandwidth(graph, order):
            pos = {v: i for i, v in enumerate(order)}
            return max(abs(pos[u] - pos[v]) for u, v in graph.iter_edges())

        assert bandwidth(g2, rcm_order(g2)) <= bandwidth(g2, natural_order(g2))

    def test_rcm_handles_disconnected_graphs(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        g.add_vertex("iso")
        assert is_permutation_of_vertices(g, rcm_order(g))

    def test_rcm_star(self):
        g = star_graph(5)
        order = rcm_order(g)
        assert set(order) == set(g.vertices())


class TestRegistry:
    def test_get_ordering_accepts_aliases(self):
        assert get_ordering("HD") is high_degree_order
        assert get_ordering("no") is natural_order
        assert get_ordering("LD") is low_degree_order

    def test_get_ordering_unknown_raises(self):
        with pytest.raises(KeyError):
            get_ordering("bogus")

    def test_ordering_names(self):
        assert ordering_names() == ["natural", "high_degree", "low_degree", "rcm"]


class TestPermuteGraph:
    def test_permute_preserves_edges_and_attrs(self, sample_graph):
        sample_graph.set_edge_attr("hub", "a", "rho", 0.99)
        order = high_degree_order(sample_graph)
        permuted = permute_graph(sample_graph, order)
        assert permuted == sample_graph
        assert permuted.vertices() == order
        assert permuted.edge_attr("hub", "a", "rho") == pytest.approx(0.99)

    def test_permute_rejects_non_permutation(self, sample_graph):
        with pytest.raises(ValueError):
            permute_graph(sample_graph, ["hub"])
