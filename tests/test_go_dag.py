"""Unit tests for the GO-like DAG."""

from __future__ import annotations

import pytest

from repro.ontology import GODag


def make_dag() -> GODag:
    """A small hand-built DAG:

        ROOT
        ├── bio (B)
        │   ├── metab (M)
        │   │   └── glycolysis (G)
        │   └── signaling (S)
        └── other (O)
            └── transport (T) — also child of signaling (two parents)
    """
    dag = GODag()
    dag.add_term("B", [dag.root_id], name="biological regulation")
    dag.add_term("O", [dag.root_id], name="other")
    dag.add_term("M", ["B"], name="metabolic process")
    dag.add_term("S", ["B"], name="signaling")
    dag.add_term("G", ["M"], name="glycolysis")
    dag.add_term("T", ["O"], name="transport")
    dag.add_parent("T", "S")
    return dag


class TestConstruction:
    def test_root_exists(self):
        dag = GODag()
        assert dag.root_id in dag
        assert dag.depth(dag.root_id) == 0
        assert len(dag) == 1

    def test_add_term_requires_existing_parent(self):
        dag = GODag()
        with pytest.raises(KeyError):
            dag.add_term("X", ["missing"])

    def test_add_term_requires_some_parent(self):
        dag = GODag()
        with pytest.raises(ValueError):
            dag.add_term("X", [])

    def test_duplicate_term_rejected(self):
        dag = make_dag()
        with pytest.raises(ValueError):
            dag.add_term("B", [dag.root_id])

    def test_add_parent_cycle_rejected(self):
        dag = make_dag()
        with pytest.raises(ValueError):
            dag.add_parent("B", "G")  # G is a descendant of B

    def test_add_parent_idempotent(self):
        dag = make_dag()
        dag.add_parent("T", "S")
        assert dag.parents("T").count("S") == 1

    def test_validate_passes(self):
        make_dag().validate()


class TestDepthAndAncestry:
    def test_depths(self):
        dag = make_dag()
        assert dag.depth("B") == 1
        assert dag.depth("M") == 2
        assert dag.depth("G") == 3
        assert dag.max_depth() == 3

    def test_multi_parent_depth_is_longest_path(self):
        dag = make_dag()
        # T has parents O (depth 1) and S (depth 2) -> depth 3
        assert dag.depth("T") == 3

    def test_ancestors(self):
        dag = make_dag()
        assert dag.ancestors("G") == frozenset({"G", "M", "B", dag.root_id})
        assert dag.ancestors("G", include_self=False) == frozenset({"M", "B", dag.root_id})

    def test_ancestors_multi_parent(self):
        dag = make_dag()
        anc = dag.ancestors("T")
        assert {"O", "S", "B", dag.root_id} <= anc

    def test_unknown_term_raises(self):
        dag = make_dag()
        with pytest.raises(KeyError):
            dag.depth("nope")
        with pytest.raises(KeyError):
            dag.ancestors("nope")

    def test_subtree(self):
        dag = make_dag()
        assert dag.subtree("B") == {"B", "M", "S", "G", "T"}
        assert dag.subtree("G") == {"G"}

    def test_is_leaf_and_children(self):
        dag = make_dag()
        assert dag.is_leaf("G")
        assert not dag.is_leaf("B")
        assert set(dag.children("B")) == {"M", "S"}


class TestDeepestCommonParent:
    def test_siblings(self):
        dag = make_dag()
        assert dag.deepest_common_parent("M", "S") == "B"

    def test_ancestor_descendant_pair(self):
        dag = make_dag()
        assert dag.deepest_common_parent("M", "G") == "M"

    def test_same_term(self):
        dag = make_dag()
        assert dag.deepest_common_parent("G", "G") == "G"

    def test_unrelated_terms_meet_at_root_or_shared_parent(self):
        dag = make_dag()
        assert dag.deepest_common_parent("G", "O") == dag.root_id

    def test_multi_parent_gives_deeper_dcp(self):
        dag = make_dag()
        # T and G share ancestor B (depth 1) through the S parent, deeper than ROOT
        assert dag.deepest_common_parent("T", "G") == "B"


class TestDistances:
    def test_distance_zero_for_same_term(self):
        dag = make_dag()
        assert dag.term_distance("M", "M") == 0

    def test_sibling_distance(self):
        dag = make_dag()
        assert dag.term_distance("M", "S") == 2

    def test_parent_child_distance(self):
        dag = make_dag()
        assert dag.term_distance("M", "G") == 1

    def test_distance_symmetric(self):
        dag = make_dag()
        assert dag.term_distance("G", "T") == dag.term_distance("T", "G")

    def test_distance_uses_cross_links(self):
        dag = make_dag()
        # T-S edge makes the S↔T distance 1 even though their tree paths are longer
        assert dag.term_distance("S", "T") == 1

    def test_path_to_root(self):
        dag = make_dag()
        path = dag.path_to_root("G")
        assert path[0] == "G"
        assert path[-1] == dag.root_id
        assert len(path) == 4


class TestScopedInvalidation:
    """add_parent / append_leaf_terms invalidate by scope, not wholesale."""

    def _reference_ancestors(self, dag, term_id):
        seen = {term_id}
        frontier = [term_id]
        while frontier:
            nxt = []
            for t in frontier:
                for p in dag.parents(t):
                    if p not in seen:
                        seen.add(p)
                        nxt.append(p)
            frontier = nxt
        return frozenset(seen)

    def test_add_parent_scopes_ancestor_invalidation_to_subtree(self):
        dag = make_dag()
        for term in list(dag._terms):
            dag.ancestors(term)  # warm every cache entry
        cached_before = dict(dag._ancestor_cache)
        dag.add_parent("M", "O")  # M (and G below it) gain O as ancestor
        subtree = dag.subtree("M")
        for term in list(dag._terms):
            if term in subtree:
                assert term not in dag._ancestor_cache
            else:
                # untouched entries survive as the same objects
                assert dag._ancestor_cache[term] is cached_before[term]
        # and every recomputed/retained answer matches a direct traversal
        for term in list(dag._terms):
            assert dag.ancestors(term) == self._reference_ancestors(dag, term)
        assert "O" in dag.ancestors("G")

    def test_add_parent_after_leaf_append_stays_correct(self):
        dag = make_dag()
        for term in list(dag._terms):
            dag.ancestors(term)
        dag.append_leaf_terms([("L1", ["G"]), ("L2", ["L1", "S"])])
        dag.add_parent("L1", "T")
        for term in list(dag._terms):
            assert dag.ancestors(term) == self._reference_ancestors(dag, term)

    def test_append_leaf_terms_extends_index_bit_identically(self):
        import itertools

        dag = make_dag()
        dag.term_distance("G", "T")  # warm SSSP rows + the interned term index
        delta = dag.append_leaf_terms([("L1", ["G"]), ("L2", ["S"])])
        assert delta.distances_safe
        rebuilt = make_dag()
        rebuilt.add_term("L1", ["G"])
        rebuilt.add_term("L2", ["S"])
        for a, b in itertools.combinations(sorted(dag._terms), 2):
            assert dag.term_distance(a, b) == rebuilt.term_distance(a, b), (a, b)
