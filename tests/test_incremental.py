"""Incremental recompute engine: delta updates pinned to the cold oracle.

The contract under test is byte-identity: every canonical payload served from
a warm bundle that absorbed a sequence of delta updates must equal the payload
of a from-scratch build that replays the same update log through the cold
reference paths (``replay_reference``).  The schedule grid randomises the
*kind* ordering and sizes, so structural-sharing shortcuts (standardisation
memos, correlation tile deltas, term-index extensions, pair-table remaps,
reused cluster state) are exercised in interleaved combinations, not one at a
time.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.expression.correlation import (
    correlated_pair_arrays,
    correlated_pair_arrays_delta,
)
from repro.faults import FaultPlan, active_plan
from repro.incremental import (
    UpdateSpec,
    apply_update,
    reference_apply_update,
    replay_reference,
    synthesize_update,
)
from repro.pipeline.workflow import (
    analysis_payload,
    analyze_filter,
    filter_payload,
    prepare_dataset,
)
from repro.serve import ReproServer, ServeClient, ServeError

SCALE = 0.02


def _canon(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _classify_bytes(bundle, method: str = "chordal", seed: int = 0) -> str:
    return _canon(analysis_payload(analyze_filter(bundle, method=method, seed=seed)))


def _filter_bytes(bundle, method: str = "chordal", seed: int = 0) -> str:
    analysis = analyze_filter(bundle, method=method, seed=seed)
    return _canon(filter_payload(analysis.result, include_edges=True))


#: One spec per update kind, plus a mixed one — the grid draws from these.
KINDS = {
    "samples": dict(add_samples=2),
    "genes": dict(add_genes=3),
    "annotations": dict(add_annotations=4),
    "terms": dict(add_terms=2),
    "mixed": dict(add_samples=1, add_genes=2, add_annotations=2, add_terms=1),
}


# ----------------------------------------------------------------------
# layer-level deltas
# ----------------------------------------------------------------------
class TestExpressionDeltas:
    def test_with_genes_extends_standardized_memo(self):
        matrix = prepare_dataset("YNG", scale=SCALE).study.matrix
        warm = matrix.standardized()  # prime the memo
        rng = np.random.default_rng(5)
        extra = rng.normal(size=(3, matrix.n_samples))
        extra[2, :] = 1.25  # zero-variance row exercises the std>0 guard
        grown = matrix.with_genes(extra, ["GX1", "GX2", "GX3"])
        assert grown._standardized is not None  # delta-extended, not dropped
        cold = type(matrix)(
            values=grown.values.copy(),
            genes=grown.genes,
            samples=grown.samples,
            conditions=grown.conditions,
        ).standardized()
        np.testing.assert_array_equal(grown.standardized().values, cold.values)
        # prefix rows are the memo's arrays, shared structurally
        np.testing.assert_array_equal(grown.standardized().values[: matrix.n_genes], warm.values)

    def test_with_samples_drops_memo(self):
        matrix = prepare_dataset("YNG", scale=SCALE).study.matrix
        matrix.standardized()
        grown = matrix.with_samples(
            np.ones((matrix.n_genes, 1)), ["SX1"]
        )
        assert grown._standardized is None  # every row's mean/std changed

    @pytest.mark.parametrize("block_size", [7, 64, 2048])
    def test_pair_delta_matches_cold(self, block_size):
        matrix = prepare_dataset("YNG", scale=SCALE).study.matrix
        old_n = matrix.n_genes
        cached = correlated_pair_arrays(matrix, block_size=block_size)
        rng = np.random.default_rng(11)
        grown = matrix.with_genes(
            rng.normal(size=(5, matrix.n_samples)), [f"GD{i}" for i in range(5)]
        )
        ii, jj, rho = correlated_pair_arrays_delta(
            grown, old_n, cached, block_size=block_size
        )
        cii, cjj, crho = correlated_pair_arrays(grown, block_size=block_size)
        np.testing.assert_array_equal(ii, cii)
        np.testing.assert_array_equal(jj, cjj)
        np.testing.assert_array_equal(rho, crho)


# ----------------------------------------------------------------------
# engine-level identity
# ----------------------------------------------------------------------
class TestUpdateScheduleGrid:
    @pytest.mark.parametrize("grid_seed", [0, 1, 2])
    def test_interleaved_schedule_matches_reference_at_every_step(self, grid_seed):
        """Randomised schedules: each intermediate state equals a cold replay."""
        rng = random.Random(grid_seed)
        kinds = list(KINDS)
        schedule = [rng.choice(kinds) for _ in range(4)]
        bundle = prepare_dataset("YNG", scale=SCALE)
        history: list[UpdateSpec] = []
        for step, kind in enumerate(schedule):
            spec = UpdateSpec(seed=100 * grid_seed + step, **KINDS[kind])
            bundle, report = apply_update(bundle, spec, history=history)
            history.append(spec)
            assert report.mode == "delta", (kind, step)
            reference = replay_reference("YNG", SCALE, None, history)
            assert _classify_bytes(bundle) == _classify_bytes(reference), (kind, step)
        # and the filter payload (inlined edge list) of the final state
        reference = replay_reference("YNG", SCALE, None, history)
        assert _filter_bytes(bundle) == _filter_bytes(reference)

    def test_annotation_only_update_reuses_network_state(self):
        bundle = prepare_dataset("YNG", scale=SCALE)
        net0, csr0, clusters0 = bundle.network, bundle.network_csr, bundle.original_clusters
        bundle, report = apply_update(bundle, UpdateSpec(add_annotations=3, seed=1))
        assert report.dirty == frozenset({"annotations"})
        assert bundle.network is net0
        assert bundle.network_csr is csr0
        assert bundle.original_clusters is clusters0
        assert bundle.generation == 1

    def test_synthesize_update_is_deterministic(self):
        bundle = prepare_dataset("YNG", scale=SCALE)
        spec = UpdateSpec(add_samples=1, add_genes=2, add_annotations=2, seed=9)
        a = synthesize_update(bundle, spec)
        b = synthesize_update(bundle, spec)
        np.testing.assert_array_equal(a.sample_values, b.sample_values)
        np.testing.assert_array_equal(a.gene_values, b.gene_values)
        assert a.sample_names == b.sample_names
        assert a.gene_names == b.gene_names
        assert a.term_specs == b.term_specs
        assert a.annotation_specs == b.annotation_specs

    def test_reference_apply_matches_delta_apply(self):
        spec = UpdateSpec(add_samples=1, add_genes=1, add_terms=1, seed=3)
        warm = prepare_dataset("YNG", scale=SCALE)
        cold = prepare_dataset("YNG", scale=SCALE)
        warm, _ = apply_update(warm, spec)
        cold = reference_apply_update(cold, synthesize_update(cold, spec))
        assert _classify_bytes(warm) == _classify_bytes(cold)


# ----------------------------------------------------------------------
# serve-level warm updates
# ----------------------------------------------------------------------
class TestServeUpdate:
    def test_warm_update_matches_reload_and_scopes_cache(self):
        with ReproServer(default_scale=SCALE, workers=2, max_pending=16) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as c:
                f0 = c.result("filter", dataset="YNG", method="chordal")
                c.result("classify", dataset="YNG", method="chordal")

                up = c.result("update", dataset="YNG", add_annotations=2, seed=5)
                assert up["mode"] == "delta"
                assert up["dirty"] == ["annotations"]
                assert up["network_generation"] == 0
                assert up["ontology_generation"] == 1
                # annotation-only update: filter entries stay valid (cache hit,
                # identical bytes) while classify recomputes
                r = c.request("filter", dataset="YNG", method="chordal")
                assert r["cached"] is True
                assert r["result"] == f0
                assert (
                    c.request("classify", dataset="YNG", method="chordal")["cached"]
                    is False
                )

                up2 = c.result("update", dataset="YNG", add_samples=1, add_genes=1)
                assert up2["mode"] == "delta"
                assert up2["network_generation"] == 1
                warm_filter = c.result("filter", dataset="YNG", method="chordal")
                warm_classify = c.result("classify", dataset="YNG", method="chordal")
                assert warm_filter != f0

                # reload replays the absorbed update log from cold: identical state
                rel = c.result("reload", dataset="YNG")
                assert rel["generation"] == 1
                assert c.result("filter", dataset="YNG", method="chordal") == warm_filter
                assert (
                    c.result("classify", dataset="YNG", method="chordal")
                    == warm_classify
                )

                summary = c.result("datasets")[0]
                assert summary["updates"] == 2
                assert summary["health"] == "healthy"

    def test_noop_update_is_rejected(self):
        with ReproServer(default_scale=SCALE, workers=1) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as c:
                with pytest.raises(ServeError):
                    c.result("update", dataset="YNG")
                with pytest.raises(ServeError):
                    c.result("update", dataset="YNG", add_samples=-1)
                with pytest.raises(ServeError):
                    c.result("update", dataset="YNG", add_samples=1, bogus=2)
