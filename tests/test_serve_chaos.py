"""Chaos tier for the serving layer: the daemon absorbs injected faults.

Schedules (seeded, ``REPRO_CHAOS_SEED`` varies them in CI) are installed via
the fault plane of :mod:`repro.faults` against a live in-process daemon:

* a crashing admission worker fails exactly one ticket, the supervisor
  respawns the thread, and warm results stay byte-identical across the crash;
* a failed dataset rebuild marks the state *degraded* while the previous
  bundle keeps serving — and a later clean reload restores it;
* an admission-path fault errors one request without taking the daemon down;
* the client's bounded retry knobs cover a daemon that is merely *late*
  (connect retry) or momentarily failing (idempotent request retry).
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.faults import FaultPlan, active_plan, clear_plan
from repro.parallel.runner import pop_supervision_events, reset_supervision_counters
from repro.serve import ReproServer, ServeClient, ServeError
from repro.serve.protocol import error_response, ok_response, read_message, write_message

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
SCALE = 0.02


@pytest.fixture(autouse=True)
def _fault_hygiene():
    clear_plan()
    pop_supervision_events()
    reset_supervision_counters()
    yield
    clear_plan()
    pop_supervision_events()


def _wait_for(predicate, timeout: float = 10.0, poll: float = 0.02) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


# ----------------------------------------------------------------------
# admission-worker crash → supervisor respawn
# ----------------------------------------------------------------------
class TestWorkerSupervisor:
    def test_dead_worker_is_respawned_and_results_stay_identical(self):
        with ReproServer(default_scale=SCALE, workers=2, supervisor_interval=0.05) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as client:
                baseline = client.result("filter", dataset="CRE", seed=1)
                plan = FaultPlan(CHAOS_SEED).fail("serve.worker", at=1)
                with active_plan(plan):
                    # The worker that picks this ticket up crashes: the
                    # request errors (no hang), the thread dies.
                    response = client.request("filter", dataset="CRE", seed=2)
                    assert response["ok"] is False
                    assert response["error"]["code"] == "internal"
                assert _wait_for(
                    lambda: srv.admission.stats()["worker_respawns"] >= 1
                    and srv.admission.stats()["workers_alive"] == 2
                ), "supervisor did not respawn the dead worker"
                stats = client.result("stats")
                assert stats["admission"]["workers_alive"] == 2
                assert stats["admission"]["worker_respawns"] >= 1
                # The failed request succeeds on retry, and the warm result
                # from before the crash is byte-identical after it.
                assert client.result("filter", dataset="CRE", seed=2)["edges_kept"] > 0
                assert client.result("filter", dataset="CRE", seed=1) == baseline

    def test_supervise_once_reports_respawn_count(self):
        with ReproServer(default_scale=SCALE, workers=2, supervisor_interval=60.0) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as client:
                plan = FaultPlan(CHAOS_SEED).fail("serve.worker", at=1)
                with active_plan(plan):
                    assert client.request("ping")["ok"]  # ping skips admission
                    assert client.request("filter", dataset="CRE")["ok"] is False
                assert _wait_for(lambda: srv.admission.stats()["workers_alive"] == 1)
                assert srv.supervise_once() == 1
                assert srv.admission.stats()["workers_alive"] == 2


# ----------------------------------------------------------------------
# failed rebuild → degraded, not dead
# ----------------------------------------------------------------------
class TestRebuildDegrade:
    def test_failed_reload_degrades_and_old_bundle_keeps_serving(self):
        with ReproServer(default_scale=SCALE, workers=1) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as client:
                baseline = client.result("filter", dataset="CRE", seed=3)
                plan = FaultPlan(CHAOS_SEED).fail("serve.rebuild", at=1)
                with active_plan(plan):
                    with pytest.raises(ServeError, match="injected fault"):
                        client.result("reload", dataset="CRE")
                summary = client.result("datasets")[0]
                assert summary["health"] == "degraded"
                assert "reload failed" in summary["degraded_reason"]
                assert summary["generation"] == 0
                # Degraded ≠ dead: the previous bundle answers byte-identically.
                assert client.result("filter", dataset="CRE", seed=3) == baseline
                # A clean reload restores health and bumps the generation.
                assert client.result("reload", dataset="CRE")["generation"] == 1
                summary = client.result("datasets")[0]
                assert summary["health"] == "healthy"
                assert "degraded_reason" not in summary
                # The rebuild is deterministic: same bytes after the swap.
                assert client.result("filter", dataset="CRE", seed=3) == baseline


# ----------------------------------------------------------------------
# admission-path fault → one error, daemon survives
# ----------------------------------------------------------------------
class TestAdmitFault:
    def test_admit_fault_errors_one_request_only(self):
        with ReproServer(default_scale=SCALE, workers=1) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as client:
                plan = FaultPlan(CHAOS_SEED).fail("serve.admit", at=1)
                with active_plan(plan):
                    response = client.request("filter", dataset="CRE", seed=4)
                    assert response["ok"] is False
                    assert response["error"]["code"] == "internal"
                    assert "injected fault" in response["error"]["message"]
                    # Budget spent: the daemon is unharmed, same connection.
                    assert client.request("filter", dataset="CRE", seed=4)["ok"]

    def test_execute_fault_is_retryable_via_client(self):
        with ReproServer(default_scale=SCALE, workers=1) as srv:
            plan = FaultPlan(CHAOS_SEED).fail("serve.execute", at=1)
            with active_plan(plan):
                with ServeClient(
                    port=srv.port, timeout=600.0, max_retries=2, backoff_base=0.01
                ) as client:
                    with pytest.raises(ServeError, match="injected fault"):
                        # "internal" is not a retryable code: a genuine
                        # execution error surfaces on the first attempt.
                        client.result("filter", dataset="CRE", seed=5)
                    # The fault budget is spent; the retry knob is for
                    # transient transport errors, tested below.
                    assert client.result("filter", dataset="CRE", seed=5)["edges_kept"] > 0


# ----------------------------------------------------------------------
# client-side bounded retries
# ----------------------------------------------------------------------
class TestClientRetry:
    def test_connect_retry_waits_for_a_late_daemon(self):
        # Reserve a port, release it, open the listener only after a delay —
        # the race `repro request` runs against `repro serve &`.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        opened = threading.Event()
        held: list[socket.socket] = []

        def late_open() -> None:
            time.sleep(0.3)
            listener = socket.create_server(("127.0.0.1", port))
            held.append(listener)
            opened.set()

        threading.Thread(target=late_open, daemon=True).start()
        try:
            client = ServeClient(port=port, timeout=5.0, connect_retries=20, backoff_base=0.02)
            client.close()
            assert opened.is_set()
        finally:
            for sock in held:
                sock.close()

    def test_no_connect_retries_fails_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            ServeClient(port=port, timeout=1.0, connect_retries=0)

    def test_busy_response_is_retried_on_the_same_connection(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def busy_then_ok() -> None:
            conn, _ = listener.accept()
            with conn, conn.makefile("rb") as rf, conn.makefile("wb") as wf:
                first = read_message(rf)
                write_message(wf, error_response(first["id"], "busy", "queue full"))
                second = read_message(rf)
                write_message(wf, ok_response(second["id"], {"answer": 42}))

        server = threading.Thread(target=busy_then_ok, daemon=True)
        server.start()
        try:
            with ServeClient(port=port, timeout=5.0, max_retries=2, backoff_base=0.01) as client:
                assert client.result("ping") == {"answer": 42}
            server.join(10)
        finally:
            listener.close()

    def test_dropped_connection_is_retried_with_reconnect(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def drop_then_serve() -> None:
            conn, _ = listener.accept()
            with conn, conn.makefile("rb") as rf:
                read_message(rf)  # swallow the request, then drop the peer
            conn2, _ = listener.accept()
            with conn2, conn2.makefile("rb") as rf, conn2.makefile("wb") as wf:
                message = read_message(rf)
                write_message(wf, ok_response(message["id"], {"answer": 7}))

        server = threading.Thread(target=drop_then_serve, daemon=True)
        server.start()
        try:
            with ServeClient(
                port=port, timeout=5.0, max_retries=2, connect_retries=5, backoff_base=0.01
            ) as client:
                assert client.result("ping") == {"answer": 7}
            server.join(10)
        finally:
            listener.close()
