"""Property tests pinning the index-native analysis stage to the label seed.

PR 3 moved the analysis half of the workflow — correlation-network
construction, MCODE clustering, k-cores, cluster overlap matching and the
ontology distance engine — onto the CSR substrate.  The seed label-level
implementations are retained (``reference_mcode_clusters``,
``reference_k_core``, ``reference_match_clusters``,
``GODag.reference_term_distance``, …); this suite asserts the index kernels
reproduce them exactly — cluster member lists, scores, ordering, matching
choices and distances — the same discipline ``tests/test_csr.py`` and
``tests/test_index_pipeline.py`` apply to the chordality kernels and the
sampler pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    Cluster,
    MCODEParams,
    highest_k_core,
    k_core,
    match_and_lost_clusters,
    match_clusters,
    lost_clusters,
    mcode_clusters,
    mcode_vertex_weights,
    node_overlap,
    edge_overlap,
    jaccard_node_overlap,
    reference_highest_k_core,
    reference_k_core,
    reference_lost_clusters,
    reference_match_clusters,
    reference_mcode_clusters,
    reference_mcode_vertex_weights,
)
from repro.expression import (
    build_correlation_csr,
    build_correlation_network,
    make_study,
)
from repro.graph import (
    CSRGraph,
    Graph,
    barabasi_albert_graph,
    complete_graph,
    correlation_like_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    planted_partition_graph,
    star_graph,
)
from repro.ontology.generator import make_study_ontology


@st.composite
def random_graphs(draw, max_vertices: int = 16, max_extra_edges: int = 36, mixed_labels: bool = False):
    """Strategy: small random simple graphs (optionally with mixed int/str labels)."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    if mixed_labels:
        vertices = [i if i % 2 == 0 else f"g{i}" for i in range(n)]
    else:
        vertices = [f"n{i}" for i in range(n)]
    g = Graph(vertices=vertices)
    if n >= 2:
        n_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
        pairs = st.tuples(
            st.integers(min_value=0, max_value=n - 1),
            st.integers(min_value=0, max_value=n - 1),
        )
        for _ in range(n_edges):
            i, j = draw(pairs)
            if i != j:
                g.add_edge(vertices[i], vertices[j])
    return g


MCODE_PARAM_GRID = [
    MCODEParams(),
    MCODEParams(min_score=0.5, min_size=2),
    MCODEParams(fluff=True, fluff_density_threshold=0.1, min_score=1.0),
    MCODEParams(haircut=False, require_two_core=False, min_score=1.0, min_size=2),
    MCODEParams(haircut=False, require_two_core=True, min_score=0.0, min_size=1),
    MCODEParams(vertex_weight_percentage=0.0, min_score=1.0),
    MCODEParams(fluff=True, haircut=False, require_two_core=False, min_score=0.0, min_size=1),
]

GENERATOR_GRAPHS = [
    erdos_renyi_graph(60, 0.12, seed=1),
    erdos_renyi_graph(80, 0.06, seed=2),
    barabasi_albert_graph(60, 3, seed=3),
    planted_partition_graph([10, 10, 10, 10], 0.8, 0.05, seed=4),
    correlation_like_graph(n_modules=4, module_size=8, n_background=80, seed=5),
    complete_graph(8),
    path_graph(10),
    cycle_graph(9),
    star_graph(7),
]


def assert_clusters_identical(ref: list[Cluster], new: list[Cluster]) -> None:
    assert len(ref) == len(new)
    for r, c in zip(ref, new):
        assert r.members == c.members          # exact member list incl. order
        assert r.score == c.score              # bit-identical float
        assert r.seed == c.seed
        assert r.cluster_id == c.cluster_id
        assert r.subgraph == c.subgraph
        assert r.subgraph.vertices() == c.subgraph.vertices()


class TestCSRKCore:
    @settings(max_examples=40, deadline=None)
    @given(random_graphs(), st.integers(min_value=0, max_value=4))
    def test_k_core_matches_reference(self, g: Graph, k: int):
        ref = reference_k_core(g, k)
        new = k_core(g, k)
        assert ref == new
        assert ref.vertices() == new.vertices()

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(mixed_labels=True))
    def test_highest_k_core_matches_reference(self, g: Graph):
        k_ref, core_ref = reference_highest_k_core(g)
        k_new, core_new = highest_k_core(g)
        assert k_ref == k_new
        assert core_ref == core_new
        assert core_ref.vertices() == core_new.vertices()

    def test_k_core_keeps_edge_attributes(self):
        g = complete_graph(4)
        g.set_edge_attr("v0", "v1", "rho", 0.97)
        core = k_core(g, 2)
        assert core.edge_attr("v0", "v1", "rho") == 0.97


class TestCSRMCODE:
    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_vertex_weights_match_reference(self, g: Graph):
        assert reference_mcode_vertex_weights(g) == mcode_vertex_weights(g)

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(mixed_labels=True))
    def test_vertex_weights_match_reference_mixed_labels(self, g: Graph):
        assert reference_mcode_vertex_weights(g) == mcode_vertex_weights(g)

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(), st.sampled_from(MCODE_PARAM_GRID))
    def test_clusters_match_reference(self, g: Graph, params: MCODEParams):
        assert_clusters_identical(
            reference_mcode_clusters(g, params), mcode_clusters(g, params)
        )

    @settings(max_examples=15, deadline=None)
    @given(random_graphs(mixed_labels=True))
    def test_clusters_match_reference_mixed_labels(self, g: Graph):
        assert_clusters_identical(reference_mcode_clusters(g), mcode_clusters(g))

    @pytest.mark.parametrize("gi", range(len(GENERATOR_GRAPHS)))
    def test_clusters_match_reference_generators(self, gi: int):
        g = GENERATOR_GRAPHS[gi]
        assert reference_mcode_vertex_weights(g) == mcode_vertex_weights(g)
        for params in MCODE_PARAM_GRID[:4]:
            assert_clusters_identical(
                reference_mcode_clusters(g, params), mcode_clusters(g, params)
            )

    def test_prebuilt_csr_shortcut(self):
        g = correlation_like_graph(n_modules=3, module_size=8, n_background=40, seed=9)
        csr = CSRGraph.from_graph(g)
        assert_clusters_identical(mcode_clusters(g), mcode_clusters(g, csr=csr))


def _random_clusters(g: Graph, rng: np.random.Generator, count: int) -> list[Cluster]:
    verts = g.vertices()
    out = []
    for i in range(count):
        k = int(rng.integers(0, min(8, len(verts)) + 1))
        members = [verts[j] for j in rng.choice(len(verts), size=k, replace=False)]
        out.append(
            Cluster(cluster_id=i, members=members, subgraph=g.subgraph(members), score=1.0)
        )
    return out


class TestCSRMatching:
    @pytest.mark.parametrize("seed", range(8))
    def test_match_clusters_matches_reference(self, seed: int):
        rng = np.random.default_rng(seed)
        g = erdos_renyi_graph(25, 0.2, seed=seed)
        original = _random_clusters(g, rng, int(rng.integers(0, 7)))
        filtered = _random_clusters(g, rng, int(rng.integers(0, 7)))
        for key in (node_overlap, edge_overlap):
            ref = reference_match_clusters(original, filtered, key)
            new = match_clusters(original, filtered, key)
            assert len(ref) == len(new)
            for r, m in zip(ref, new):
                assert r.original is m.original
                assert r.node_overlap == m.node_overlap
                assert r.edge_overlap == m.edge_overlap
            assert reference_lost_clusters(original, filtered, key) == lost_clusters(
                original, filtered, key
            )
            combined_matches, combined_lost = match_and_lost_clusters(
                original, filtered, key
            )
            assert [(m.original, m.node_overlap, m.edge_overlap) for m in combined_matches] == [
                (m.original, m.node_overlap, m.edge_overlap) for m in new
            ]
            assert combined_lost == reference_lost_clusters(original, filtered, key)

    def test_generic_key_falls_back_to_reference(self):
        rng = np.random.default_rng(3)
        g = erdos_renyi_graph(20, 0.25, seed=3)
        original = _random_clusters(g, rng, 4)
        filtered = _random_clusters(g, rng, 4)
        ref = reference_match_clusters(original, filtered, jaccard_node_overlap)
        new = match_clusters(original, filtered, jaccard_node_overlap)
        assert [(m.original, m.node_overlap, m.edge_overlap) for m in ref] == [
            (m.original, m.node_overlap, m.edge_overlap) for m in new
        ]

    def test_no_originals_yields_found_matches(self):
        g = complete_graph(5)
        filtered = _random_clusters(g, np.random.default_rng(0), 3)
        for m in match_clusters([], filtered):
            assert m.original is None and m.is_found
        assert lost_clusters([], filtered) == []

    def test_no_filtered_clusters_loses_everything(self):
        g = complete_graph(5)
        original = _random_clusters(g, np.random.default_rng(1), 3)
        assert lost_clusters(original, []) == list(original)


class TestCorrelationCSRNetwork:
    def test_study_network_csr_equals_graph_view(self):
        study = make_study("YNG", scale=0.03)
        for include_all in (False, True):
            net = study.network(include_all_genes=include_all)
            csr = study.network_csr(include_all_genes=include_all)
            assert csr == CSRGraph.from_graph(net)

    def test_study_csr_cached(self):
        study = make_study("MID", scale=0.03)
        assert study.network_csr() is study.network_csr()

    def test_multi_tile_csr_equals_graph_view(self):
        study = make_study("YNG", scale=0.03)
        net = build_correlation_network(
            study.matrix, block_size=61, include_all_genes=False
        )
        csr = build_correlation_csr(study.matrix, block_size=61, include_all_genes=False)
        assert csr == CSRGraph.from_graph(net)


class TestOntologyDistances:
    def test_term_distance_matches_reference(self):
        study = make_study("YNG", scale=0.02)
        dag, annotations = make_study_ontology(study, depth=6, branching=3)
        rng = np.random.default_rng(0)
        terms = dag.terms()
        picks = rng.integers(0, len(terms), size=(200, 2))
        for a_i, b_i in picks:
            a, b = terms[int(a_i)], terms[int(b_i)]
            assert dag.term_distance(a, b) == dag.reference_term_distance(a, b)

    def test_term_distance_symmetric_and_cached(self):
        study = make_study("YNG", scale=0.02)
        dag, _ = make_study_ontology(study, depth=6, branching=3)
        terms = dag.terms()
        a, b = terms[1], terms[-1]
        assert dag.term_distance(a, b) == dag.term_distance(b, a)

    def test_distance_cache_invalidated_by_growth(self):
        study = make_study("YNG", scale=0.02)
        dag, _ = make_study_ontology(study, depth=6, branching=3)
        terms = dag.terms()
        a, b = terms[1], terms[-1]
        dag.term_distance(a, b)  # warm the cache
        new_term = dag.add_term("GO:TEST_NEW", [a]).term_id
        assert dag.term_distance(new_term, a) == 1
        assert dag.term_distance(new_term, b) == dag.reference_term_distance(new_term, b)


class TestEndToEndWorkflowEquivalence:
    def test_full_analysis_stage_identical_on_study(self):
        """The whole CSR analysis stage reproduces the label seed on one study."""
        study = make_study("UNT", scale=0.03)
        net = study.network()
        csr = study.network_csr()
        ref_orig = reference_mcode_clusters(net, source="orig")
        new_orig = mcode_clusters(net, source="orig", csr=csr)
        assert_clusters_identical(ref_orig, new_orig)
