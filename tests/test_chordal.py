"""Unit tests for the chordal-graph kernels (recognition + DSW construction)."""

from __future__ import annotations

import pytest

from repro.core.chordal import (
    augment_to_maximal,
    chordal_subgraph_edges,
    edge_insertion_preserves_chordality,
    fill_in_edges,
    find_simplicial_vertex,
    is_chordal,
    is_maximal_chordal_subgraph,
    is_perfect_elimination_ordering,
    is_simplicial,
    maximal_chordal_subgraph,
    maximum_cardinality_search,
)
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)


class TestRecognition:
    def test_small_graphs_are_chordal(self):
        assert is_chordal(Graph())
        assert is_chordal(complete_graph(3))
        assert is_chordal(path_graph(2))

    def test_trees_are_chordal(self):
        assert is_chordal(path_graph(10))
        assert is_chordal(star_graph(6))

    def test_complete_graphs_are_chordal(self):
        assert is_chordal(complete_graph(6))

    def test_cycles_longer_than_three_are_not_chordal(self):
        for n in (4, 5, 6, 9):
            assert not is_chordal(cycle_graph(n)), n

    def test_chorded_cycle_is_chordal(self):
        g = cycle_graph(5)
        g.add_edge("v0", "v2")
        g.add_edge("v0", "v3")
        assert is_chordal(g)

    def test_grid_is_not_chordal(self):
        assert not is_chordal(grid_graph(3, 3))

    def test_disconnected_chordality(self):
        g = Graph(edges=[("a", "b"), ("c", "d"), ("d", "e"), ("e", "c")])
        assert is_chordal(g)
        g2 = Graph(edges=list(cycle_graph(4).iter_edges()) + [("x", "y")])
        assert not is_chordal(g2)


class TestMCS:
    def test_mcs_is_permutation(self):
        g = erdos_renyi_graph(20, 0.2, seed=1)
        order = maximum_cardinality_search(g)
        assert sorted(map(str, order)) == sorted(map(str, g.vertices()))

    def test_mcs_start_vertex(self):
        g = path_graph(5)
        assert maximum_cardinality_search(g, start="v3")[0] == "v3"

    def test_mcs_unknown_start_raises(self):
        with pytest.raises(KeyError):
            maximum_cardinality_search(path_graph(3), "zzz")

    def test_reverse_mcs_is_peo_for_chordal_graph(self):
        g = complete_graph(4)
        g.add_edge("v0", "leaf")
        order = maximum_cardinality_search(g)
        assert is_perfect_elimination_ordering(g, list(reversed(order)))

    def test_empty_graph(self):
        assert maximum_cardinality_search(Graph()) == []


class TestPEO:
    def test_path_any_leaf_first_order(self):
        g = path_graph(4)
        assert is_perfect_elimination_ordering(g, ["v0", "v1", "v2", "v3"])

    def test_cycle_has_no_peo(self):
        g = cycle_graph(4)
        assert not is_perfect_elimination_ordering(g, g.vertices())

    def test_rejects_non_permutation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            is_perfect_elimination_ordering(g, ["v0", "v1"])


class TestSimplicial:
    def test_clique_vertices_are_simplicial(self):
        g = complete_graph(4)
        assert all(is_simplicial(g, v) for v in g.vertices())

    def test_cycle_has_no_simplicial_vertex(self):
        assert find_simplicial_vertex(cycle_graph(5)) is None

    def test_chordal_graph_has_simplicial_vertex(self):
        g = complete_graph(4)
        g.add_edge("v0", "pendant")
        assert find_simplicial_vertex(g) is not None

    def test_degree_one_vertex_is_simplicial(self):
        g = path_graph(3)
        assert is_simplicial(g, "v0")
        assert not is_simplicial(g, "v1")


class TestFillIn:
    def test_chordal_graph_has_empty_fill_in(self):
        g = complete_graph(5)
        assert fill_in_edges(g) == []

    def test_cycle_fill_in_nonempty(self):
        assert len(fill_in_edges(cycle_graph(5))) > 0

    def test_explicit_bad_order_on_path_creates_fill(self):
        g = path_graph(3)
        # eliminating the middle vertex first connects its two neighbours
        fills = fill_in_edges(g, order=["v1", "v0", "v2"])
        assert fills == [("v0", "v2")]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            fill_in_edges(path_graph(3), order=["v0"])


class TestDearingShierWarner:
    @pytest.mark.parametrize("n", [4, 5, 6, 8])
    def test_cycle_loses_exactly_one_edge(self, n):
        g = cycle_graph(n)
        sub = maximal_chordal_subgraph(g)
        assert sub.n_edges == n - 1
        assert is_chordal(sub)

    def test_complete_graph_fully_kept(self):
        g = complete_graph(6)
        sub = maximal_chordal_subgraph(g)
        assert sub.n_edges == g.n_edges

    def test_chordal_input_unchanged(self):
        g = complete_graph(4)
        g.add_edge("v0", "x")
        g.add_edge("v1", "x")
        assert is_chordal(g)
        sub = maximal_chordal_subgraph(g)
        assert sub.n_edges == g.n_edges

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_chordal_and_maximal(self, seed):
        g = erdos_renyi_graph(22, 0.25, seed=seed)
        sub = maximal_chordal_subgraph(g)
        assert is_chordal(sub)
        assert is_maximal_chordal_subgraph(g, sub)

    def test_result_is_subgraph_of_original(self):
        g = erdos_renyi_graph(25, 0.2, seed=10)
        sub = maximal_chordal_subgraph(g)
        for u, v in sub.iter_edges():
            assert g.has_edge(u, v)

    def test_keep_all_vertices_flag(self):
        g = cycle_graph(4)
        g.add_vertex("isolated")
        sub = maximal_chordal_subgraph(g, keep_all_vertices=True)
        assert sub.has_vertex("isolated")
        sub2 = maximal_chordal_subgraph(g, keep_all_vertices=False)
        assert not sub2.has_vertex("isolated")

    def test_ordering_changes_result_size_or_content(self):
        # Orderings may change which maximal subgraph is found; the result
        # must stay chordal either way and cover the same vertex set.
        g = erdos_renyi_graph(30, 0.2, seed=3)
        natural = maximal_chordal_subgraph(g, order=g.vertices())
        reverse = maximal_chordal_subgraph(g, order=list(reversed(g.vertices())))
        assert is_chordal(natural)
        assert is_chordal(reverse)
        assert set(natural.vertices()) == set(reverse.vertices())

    def test_strict_order_is_chordal(self):
        g = erdos_renyi_graph(25, 0.25, seed=5)
        sub = maximal_chordal_subgraph(g, order=g.vertices(), strict_order=True)
        assert is_chordal(sub)

    def test_explicit_start_vertex(self):
        g = cycle_graph(5)
        edges = chordal_subgraph_edges(g, start="v3")
        assert len(edges) == 4

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            chordal_subgraph_edges(path_graph(3), order=["v0", "v1"])

    def test_bad_start_rejected(self):
        with pytest.raises(KeyError):
            chordal_subgraph_edges(path_graph(3), start="nope")

    def test_empty_graph(self):
        assert chordal_subgraph_edges(Graph()) == []


class TestAugmentAndMaximality:
    def test_augment_reaches_maximality(self):
        g = cycle_graph(6)
        partial = g.spanning_subgraph([("v0", "v1"), ("v2", "v3")])
        augmented = augment_to_maximal(g, partial)
        assert is_chordal(augmented)
        assert is_maximal_chordal_subgraph(g, augmented)

    def test_is_maximal_rejects_non_chordal(self):
        g = cycle_graph(4)
        assert not is_maximal_chordal_subgraph(g, g)

    def test_is_maximal_rejects_extendable(self):
        g = complete_graph(4)
        partial = g.spanning_subgraph([("v0", "v1")])
        assert not is_maximal_chordal_subgraph(g, partial)


class TestEdgeInsertion:
    def test_two_pair_insertion_allowed(self):
        # a-b-c path: adding a-c creates a triangle, stays chordal
        g = path_graph(3)
        assert edge_insertion_preserves_chordality(g, "v0", "v2")

    def test_insertion_closing_long_cycle_rejected(self):
        g = path_graph(4)
        assert not edge_insertion_preserves_chordality(g, "v0", "v3")

    def test_insertion_between_components_allowed(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        assert edge_insertion_preserves_chordality(g, "a", "c")

    def test_insertion_with_new_vertex_allowed(self):
        g = complete_graph(3)
        assert edge_insertion_preserves_chordality(g, "v0", "newcomer")

    def test_existing_edge_is_trivially_fine(self):
        g = complete_graph(3)
        assert edge_insertion_preserves_chordality(g, "v0", "v1")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            edge_insertion_preserves_chordality(complete_graph(3), "v0", "v0")

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_on_random_chordal_graphs(self, seed):
        base = erdos_renyi_graph(14, 0.3, seed=seed)
        chordal = maximal_chordal_subgraph(base)
        missing = [e for e in base.iter_edges() if not chordal.has_edge(*e)]
        for u, v in missing:
            fast = edge_insertion_preserves_chordality(chordal, u, v)
            trial = chordal.copy()
            trial.add_edge(u, v)
            assert fast == is_chordal(trial)
