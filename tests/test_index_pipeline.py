"""Property tests pinning the index-native pipeline to the label-level seed.

PR 2 moved orderings, partitioning, per-rank subgraph construction and border
admission from the label-keyed ``Graph`` onto the CSR kernel.  The label-level
implementations are retained (as ``reference_*`` orderings, the label
partitioners, and the label admission helpers); this suite asserts the index
kernels reproduce them exactly — the same pattern ``tests/test_csr.py`` uses
for the chordality kernels — so the perf rewrite cannot silently change any
filter output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel_comm import (
    parallel_chordal_comm_filter,
    receiver_admit_border_edges,
    receiver_admit_border_edges_indices,
)
from repro.core.parallel_nocomm import (
    admit_border_edges_no_communication,
    admit_border_edges_no_communication_indices,
    local_chordal_phase,
    parallel_chordal_nocomm_filter,
)
from repro.graph import CSRGraph, Graph, erdos_renyi_graph, partition_graph
from repro.graph.graph import edge_key
from repro.graph.ordering import (
    ORDERING_INDEX_FNS,
    get_ordering,
    ordering_indices,
    rcm_order,
    reference_high_degree_order,
    reference_low_degree_order,
    reference_rcm_order,
)
from repro.graph.partition import (
    INDEX_PARTITIONERS,
    IndexPartition,
    index_partition_graph,
)

ORDERING_NAMES = list(ORDERING_INDEX_FNS)
PARTITIONER_NAMES = sorted(INDEX_PARTITIONERS)

REFERENCE_ORDERINGS = {
    "natural": lambda g: g.vertices(),
    "high_degree": reference_high_degree_order,
    "low_degree": reference_low_degree_order,
    "rcm": reference_rcm_order,
}


@st.composite
def random_graphs(draw, max_vertices: int = 16, max_extra_edges: int = 36, mixed_labels: bool = False):
    """Strategy: small random simple graphs (optionally with mixed int/str labels)."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    if mixed_labels:
        vertices = [i if i % 2 == 0 else f"g{i}" for i in range(n)]
    else:
        vertices = [f"n{i}" for i in range(n)]
    g = Graph(vertices=vertices)
    if n >= 2:
        n_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
        pairs = st.tuples(
            st.integers(min_value=0, max_value=n - 1),
            st.integers(min_value=0, max_value=n - 1),
        )
        for _ in range(n_edges):
            i, j = draw(pairs)
            if i != j:
                g.add_edge(vertices[i], vertices[j])
    return g


def label_view(csr: CSRGraph, us, vs) -> set:
    """Canonical label edge set of aligned index arrays."""
    labels = csr.labels
    return {edge_key(labels[int(u)], labels[int(v)]) for u, v in zip(us, vs)}


class TestIndexOrderings:
    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_orderings_match_reference(self, g: Graph):
        csr = CSRGraph.from_graph(g)
        for name in ORDERING_NAMES:
            perm = ordering_indices(name, csr)
            assert perm.dtype == np.int64
            assert sorted(perm.tolist()) == list(range(g.n_vertices))
            assert csr.to_labels(perm) == REFERENCE_ORDERINGS[name](g), name

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(mixed_labels=True))
    def test_orderings_match_reference_mixed_labels(self, g: Graph):
        csr = CSRGraph.from_graph(g)
        for name in ORDERING_NAMES:
            assert csr.to_labels(ordering_indices(name, csr)) == REFERENCE_ORDERINGS[name](g), name

    @settings(max_examples=20, deadline=None)
    @given(random_graphs())
    def test_label_wrappers_equal_reference(self, g: Graph):
        for name in ORDERING_NAMES:
            assert get_ordering(name)(g) == REFERENCE_ORDERINGS[name](g), name

    @pytest.mark.parametrize("seed", range(3))
    def test_rcm_start_vertex_matches_reference(self, seed):
        g = erdos_renyi_graph(30, 0.1, seed=seed)
        for start in (g.vertices()[0], g.vertices()[7]):
            assert rcm_order(g, start=start) == reference_rcm_order(g, start=start)


class TestIndexPartitioners:
    @settings(max_examples=25, deadline=None)
    @given(random_graphs(), st.integers(min_value=1, max_value=5))
    def test_partitioners_match_reference(self, g: Graph, n_parts: int):
        csr = CSRGraph.from_graph(g)
        labels = csr.labels
        for method in PARTITIONER_NAMES:
            lp = partition_graph(g, n_parts, method=method)
            ip = index_partition_graph(csr, n_parts, method=method)
            ip.validate()
            assert {labels[i]: int(p) for i, p in enumerate(ip.assignment)} == lp.assignment, method
            # per-part traversal order (not just membership) must agree: the
            # DSW kernel's natural-order fallback depends on it
            for p in range(n_parts):
                assert [labels[int(i)] for i in ip.part_indices(p)] == lp.parts[p], method
            assert label_view(csr, *ip.border_edges()) == set(lp.border_edges), method
            for p in range(n_parts):
                assert label_view(csr, *ip.border_edges_of(p)) == set(lp.border_edges_of(p))
                assert label_view(csr, *ip.internal_edges_of(p)) == set(lp.internal_edges[p])

    @settings(max_examples=15, deadline=None)
    @given(random_graphs(), st.integers(min_value=1, max_value=4))
    def test_induced_subgraph_matches_graph_subgraph(self, g: Graph, n_parts: int):
        csr = CSRGraph.from_graph(g)
        lp = partition_graph(g, n_parts, method="hash")
        ip = index_partition_graph(csr, n_parts, method="hash")
        for p in range(n_parts):
            sub = ip.part_csr(p)
            assert sub.to_graph() == lp.part_subgraph(p)
            assert list(sub.labels) == lp.part_subgraph(p).vertices()

    @settings(max_examples=15, deadline=None)
    @given(random_graphs(), st.integers(min_value=1, max_value=4))
    def test_partition_round_trips(self, g: Graph, n_parts: int):
        csr = CSRGraph.from_graph(g)
        lp = partition_graph(g, n_parts, method="greedy")
        ip = IndexPartition.from_partition(lp, csr)
        assert label_view(csr, *ip.border_edges()) == set(lp.border_edges)
        back = ip.to_partition(g)
        back.validate()
        assert back.assignment == lp.assignment
        assert back.parts == lp.parts

    def test_induced_subgraph_rejects_bad_indices(self):
        csr = CSRGraph.from_graph(erdos_renyi_graph(6, 0.5, seed=0))
        with pytest.raises(ValueError):
            csr.induced_subgraph([0, 0, 1])
        with pytest.raises(ValueError):
            csr.induced_subgraph([0, 99])

    @pytest.mark.parametrize("method", ["block", "greedy"])
    def test_explicit_order_parts_match_reference(self, method):
        # The label block partitioner lists parts in the given order, the
        # label greedy partitioner in *natural* order even when streaming in
        # a custom order — the index views must mirror both conventions.
        from repro.graph.partition import (
            block_partition,
            block_partition_indices,
            greedy_edge_cut_partition,
            greedy_partition_indices,
        )

        g = erdos_renyi_graph(25, 0.15, seed=4)
        csr = CSRGraph.from_graph(g)
        perm = np.arange(25, dtype=np.int64)[::-1].copy()
        label_order = [csr.labels[int(i)] for i in perm]
        if method == "block":
            lp = block_partition(g, 3, order=label_order)
            ip = block_partition_indices(csr, 3, order=perm)
        else:
            lp = greedy_edge_cut_partition(g, 3, order=label_order)
            ip = greedy_partition_indices(csr, 3, order=perm)
        assert {csr.labels[i]: int(p) for i, p in enumerate(ip.assignment)} == lp.assignment
        for p in range(3):
            assert [csr.labels[int(i)] for i in ip.part_indices(p)] == lp.parts[p]

    def test_from_partition_rejects_incomplete_partition(self):
        g = erdos_renyi_graph(8, 0.3, seed=1)
        csr = CSRGraph.from_graph(g)
        lp = partition_graph(g, 2, method="block")
        missing = g.vertices()[0]
        del lp.assignment[missing]
        with pytest.raises(ValueError):
            IndexPartition.from_partition(lp, csr)


class TestBorderAdmission:
    @settings(max_examples=25, deadline=None)
    @given(random_graphs(), st.integers(min_value=2, max_value=5))
    def test_index_admission_matches_reference(self, g: Graph, n_parts: int):
        csr = CSRGraph.from_graph(g)
        labels = csr.labels
        ip = index_partition_graph(csr, n_parts, method="hash")
        lp = partition_graph(g, n_parts, method="hash")
        for rank in range(n_parts):
            local_edges, _ = local_chordal_phase(lp.part_subgraph(rank))
            ref = admit_border_edges_no_communication(
                lp.border_edges_of(rank), set(lp.parts[rank]), set(local_edges)
            )
            index = csr.label_index
            chordal_adj: dict[int, set[int]] = {}
            for a, b in local_edges:
                ia, ib = index[a], index[b]
                chordal_adj.setdefault(ia, set()).add(ib)
                chordal_adj.setdefault(ib, set()).add(ia)
            bu, bv = ip.border_edges_of(rank)
            got = admit_border_edges_no_communication_indices(
                bu, bv, ip.assignment[bu] == rank, ip.assignment[bv] == rank, chordal_adj
            )
            assert {edge_key(labels[i], labels[j]) for i, j in got} == set(ref)

    def test_receiver_admission_matches_reference_sequence(self):
        # Admission is order-dependent: feed both implementations the same
        # candidate sequence and require identical accept/reject decisions.
        g = erdos_renyi_graph(18, 0.2, seed=3)
        csr = CSRGraph.from_graph(g)
        local = Graph(vertices=g.vertices()[:9])
        chordal_edges = [e for e in g.iter_edges() if e[0] in set(local.vertices()) and e[1] in set(local.vertices())][:6]
        for u, v in chordal_edges:
            local.add_edge(u, v)
        candidates = [e for e in g.iter_edges() if not local.has_edge(*e)][:12]
        index = csr.label_index
        adj: dict[int, set[int]] = {index[v]: set() for v in local.vertices()}
        for u, v in local.iter_edges():
            adj[index[u]].add(index[v])
            adj[index[v]].add(index[u])
        ref_accepted, ref_checks = receiver_admit_border_edges(local, candidates)
        got, checks = receiver_admit_border_edges_indices(
            adj, [(index[u], index[v]) for u, v in candidates]
        )
        labels = csr.labels
        assert [edge_key(labels[i], labels[j]) for i, j in got] == ref_accepted
        assert checks == ref_checks


def reference_nocomm_kept(graph: Graph, n_parts: int, ordering, method: str):
    """The PR1 label pipeline recomposed from its retained reference pieces."""
    order = get_ordering(ordering)(graph) if ordering else None
    if method == "block" and order is not None:
        part = partition_graph(graph, n_parts, method="block", order=order)
    else:
        part = partition_graph(graph, n_parts, method=method)
    kept = set()
    for rank in range(part.n_parts):
        local, _ = local_chordal_phase(part.part_subgraph(rank), order=order)
        kept.update(local)
        kept.update(
            admit_border_edges_no_communication(
                part.border_edges_of(rank), set(part.parts[rank]), set(local)
            )
        )
    return kept


class TestFilterEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(random_graphs(max_vertices=14), st.integers(min_value=1, max_value=4))
    def test_nocomm_filter_matches_label_pipeline(self, g: Graph, n_parts: int):
        for ordering in ORDERING_NAMES:
            for method in PARTITIONER_NAMES:
                res = parallel_chordal_nocomm_filter(
                    g, n_parts, ordering=ordering, partition_method=method
                )
                assert set(res.graph.iter_edges()) == reference_nocomm_kept(
                    g, n_parts, ordering, method
                ), (ordering, method)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("ordering", ORDERING_NAMES)
    def test_nocomm_filter_matches_label_pipeline_larger(self, seed, ordering):
        g = erdos_renyi_graph(40, 0.12, seed=seed)
        for method in PARTITIONER_NAMES:
            res = parallel_chordal_nocomm_filter(g, 6, ordering=ordering, partition_method=method)
            assert set(res.graph.iter_edges()) == reference_nocomm_kept(g, 6, ordering, method)

    @pytest.mark.parametrize("seed", range(2))
    def test_comm_filter_output_is_chordal_superset_of_locals(self, seed):
        # The comm filter's full reference run needs the SPMD substrate; pin
        # the cheap invariant here (per-part chordality is covered by
        # tests/test_parallel_comm.py on the rewritten path).
        g = erdos_renyi_graph(36, 0.15, seed=seed)
        res = parallel_chordal_comm_filter(g, 4, ordering="rcm")
        part = partition_graph(g, 4, method="block", order=rcm_order(g))
        for rank in range(4):
            local, _ = local_chordal_phase(part.part_subgraph(rank), order=rcm_order(g))
            for e in local:
                assert res.graph.has_edge(*e)


class TestCSREdgeHelpers:
    @settings(max_examples=30, deadline=None)
    @given(random_graphs())
    def test_edge_indices_matches_iter_edges(self, g: Graph):
        csr = CSRGraph.from_graph(g)
        labels = csr.labels
        got = [edge_key(labels[i], labels[j]) for i, j in csr.edge_indices()]
        assert sorted(map(repr, got)) == sorted(map(repr, g.edges()))
        assert len(got) == g.n_edges  # each edge exactly once, no dedup set

    @settings(max_examples=30, deadline=None)
    @given(random_graphs())
    def test_edge_array_matches_edge_indices(self, g: Graph):
        csr = CSRGraph.from_graph(g)
        us, vs = csr.edge_array()
        assert (us < vs).all()
        assert list(zip(us.tolist(), vs.tolist())) == [
            (min(i, j), max(i, j)) for i, j in csr.edge_indices()
        ]
