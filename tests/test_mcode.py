"""Unit tests for the MCODE clustering implementation."""

from __future__ import annotations

import pytest

from repro.clustering import MCODEParams, highest_k_core, k_core, mcode_clusters, mcode_vertex_weights
from repro.clustering.mcode import mcode_score
from repro.graph import Graph, complete_graph, cycle_graph, path_graph


def two_cliques_with_bridge() -> Graph:
    """Two K6 cliques connected by a 3-vertex path of bridge vertices."""
    g = Graph()
    a = [f"a{i}" for i in range(6)]
    b = [f"b{i}" for i in range(6)]
    for group in (a, b):
        for i in range(6):
            for j in range(i + 1, 6):
                g.add_edge(group[i], group[j])
    g.add_edge(a[0], "bridge1")
    g.add_edge("bridge1", "bridge2")
    g.add_edge("bridge2", b[0])
    return g


class TestKCore:
    def test_k_core_of_clique(self):
        g = complete_graph(5)
        assert k_core(g, 4).n_vertices == 5
        assert k_core(g, 5).n_vertices == 0

    def test_k_core_strips_pendants(self):
        g = complete_graph(4)
        g.add_edge("v0", "pendant")
        core = k_core(g, 2)
        assert not core.has_vertex("pendant")
        assert core.n_vertices == 4

    def test_highest_k_core(self):
        g = complete_graph(6)
        g.add_edge("v0", "tail")
        k, core = highest_k_core(g)
        assert k == 5
        assert core.n_vertices == 6

    def test_highest_k_core_empty_graph(self):
        k, core = highest_k_core(Graph())
        assert k == 0
        assert core.n_vertices == 0


class TestVertexWeights:
    def test_clique_vertices_heavily_weighted(self):
        g = complete_graph(6)
        weights = mcode_vertex_weights(g)
        # neighbourhood of each vertex is K5 => core number 4, density 1 => weight 4
        assert all(w == pytest.approx(4.0) for w in weights.values())

    def test_path_vertices_weight_zero(self):
        weights = mcode_vertex_weights(path_graph(5))
        assert all(w == 0.0 for w in weights.values())

    def test_clique_members_outweigh_bridges(self):
        g = two_cliques_with_bridge()
        weights = mcode_vertex_weights(g)
        assert weights["a1"] > weights["bridge1"]


class TestClusters:
    def test_finds_both_planted_cliques(self):
        g = two_cliques_with_bridge()
        clusters = mcode_clusters(g)
        assert len(clusters) == 2
        member_sets = [c.node_set() for c in clusters]
        assert {f"a{i}" for i in range(6)} in member_sets
        assert {f"b{i}" for i in range(6)} in member_sets

    def test_bridge_vertices_excluded(self):
        g = two_cliques_with_bridge()
        clusters = mcode_clusters(g)
        for c in clusters:
            assert "bridge1" not in c
            assert "bridge2" not in c

    def test_scores_and_ids_ordered(self):
        g = two_cliques_with_bridge()
        clusters = mcode_clusters(g)
        assert [c.cluster_id for c in clusters] == [0, 1]
        assert clusters[0].score >= clusters[1].score
        for c in clusters:
            assert c.score == pytest.approx(mcode_score(c.subgraph))

    def test_no_clusters_in_sparse_graph(self):
        assert mcode_clusters(path_graph(10)) == []
        assert mcode_clusters(cycle_graph(8)) == []

    def test_min_score_threshold_filters_triangles(self):
        # A K3 has score 3.0 exactly under density*size; K3-only graphs are kept
        # only if the threshold allows them.
        g = complete_graph(3)
        default = mcode_clusters(g)
        lenient = mcode_clusters(g, MCODEParams(min_score=2.0))
        assert len(lenient) >= len(default)

    def test_min_size_respected(self):
        g = complete_graph(4)
        clusters = mcode_clusters(g, MCODEParams(min_size=5, min_score=1.0))
        assert clusters == []

    def test_haircut_removes_stragglers(self):
        g = complete_graph(5)
        g.add_edge("v0", "straggler")
        clusters = mcode_clusters(g, MCODEParams(min_score=2.0))
        assert clusters
        assert all("straggler" not in c for c in clusters)

    def test_fluff_can_only_grow_members(self):
        g = two_cliques_with_bridge()
        plain = mcode_clusters(g)
        fluffed = mcode_clusters(g, MCODEParams(fluff=True, fluff_density_threshold=0.1))
        assert sum(c.n_vertices for c in fluffed) >= sum(c.n_vertices for c in plain)

    def test_source_label_propagates(self):
        clusters = mcode_clusters(complete_graph(5), source="unit-test")
        assert clusters[0].source == "unit-test"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MCODEParams(vertex_weight_percentage=2.0)
        with pytest.raises(ValueError):
            MCODEParams(min_size=0)

    def test_cluster_helpers(self):
        clusters = mcode_clusters(complete_graph(5))
        c = clusters[0]
        assert c.n_vertices == 5
        assert c.n_edges == 10
        assert c.density == pytest.approx(1.0)
        assert len(c.edge_set()) == 10
        assert len(c) == 5
