"""Unit tests for the Graph data structure."""

from __future__ import annotations

import pytest

from repro.graph import Graph, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key("b", "a") == ("a", "b")
        assert edge_key(2, 1) == (1, 2)

    def test_mixed_types_are_deterministic(self):
        assert edge_key("x", 1) == edge_key(1, "x")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            edge_key("a", "a")


class _ConstRepr:
    """Unorderable objects whose repr does not identify the instance."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<blob>"


class _OtherConstRepr:
    """A different type with the same repr as :class:`_ConstRepr`."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<blob>"


class TestEdgeKeyMixedTypes:
    """Regression tests for the documented edge_key fallback contract.

    The seed fallback ordered incomparable endpoints by ``repr`` alone, so two
    unequal vertices of different types with identical reprs produced two
    *different* canonical keys for the same undirected edge.  The fallback now
    orders by (type module, type qualname, repr) and refuses truly
    indistinguishable pairs.
    """

    def test_mixed_int_str_is_canonical(self):
        assert edge_key(1, "1") == edge_key("1", 1)
        assert edge_key(2, "x") == edge_key("x", 2)

    def test_equal_repr_different_types_is_canonical(self):
        a, b = _ConstRepr(), _OtherConstRepr()
        assert edge_key(a, b) == edge_key(b, a)

    def test_indistinguishable_vertices_rejected(self):
        a, b = _ConstRepr(), _ConstRepr()
        with pytest.raises(ValueError):
            edge_key(a, b)

    def test_mixed_graph_round_trips_edges_and_attrs(self):
        g = Graph()
        g.add_edge(1, "1", weight=0.5)
        g.add_edge("a", 2)
        g.add_edge(1, 2)
        assert g.has_edge("1", 1)
        assert g.edge_attr(1, "1", "weight") == 0.5
        assert g.edge_attr("1", 1, "weight") == 0.5
        g.set_edge_attr("a", 2, "sign", -1)
        assert g.edge_attrs(2, "a") == {"sign": -1}
        assert set(g.edges()) == {edge_key(1, "1"), edge_key("a", 2), edge_key(1, 2)}
        g.remove_edge("1", 1)
        assert not g.has_edge(1, "1")
        assert g.edge_attrs(1, "1") == {}


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.n_vertices == 0
        assert g.n_edges == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.n_vertices == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.has_vertex("a") and g.has_vertex("b")
        assert g.has_edge("a", "b") and g.has_edge("b", "a")
        assert g.n_edges == 1

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_constructor_with_edges_and_vertices(self):
        g = Graph(edges=[("a", "b"), ("b", "c")], vertices=["z"])
        assert g.vertices()[0] == "z"
        assert g.n_edges == 2

    def test_insertion_order_preserved(self):
        g = Graph(vertices=["c", "a", "b"])
        assert g.vertices() == ["c", "a", "b"]


class TestRemoval:
    def test_remove_edge(self):
        g = Graph(edges=[("a", "b")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.n_edges == 0
        assert g.has_vertex("a")

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(KeyError):
            g.remove_edge("a", "c")

    def test_discard_edge(self):
        g = Graph(edges=[("a", "b")])
        assert g.discard_edge("a", "b") is True
        assert g.discard_edge("a", "b") is False

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph(edges=[("a", "b"), ("a", "c"), ("b", "c")])
        g.remove_vertex("a")
        assert not g.has_vertex("a")
        assert g.n_edges == 1
        assert g.has_edge("b", "c")

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_vertex("x")


class TestQueries:
    def test_degree_and_neighbors(self):
        g = Graph(edges=[("a", "b"), ("a", "c")])
        assert g.degree("a") == 2
        assert g.degree("b") == 1
        assert set(g.neighbors("a")) == {"b", "c"}
        assert g.neighbor_set("a") == {"b", "c"}

    def test_degrees_and_max_degree(self):
        g = Graph(edges=[("a", "b"), ("a", "c"), ("a", "d")])
        assert g.degrees() == {"a": 3, "b": 1, "c": 1, "d": 1}
        assert g.max_degree() == 3
        assert Graph().max_degree() == 0

    def test_edges_listed_once(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        assert len(g.edges()) == 3
        assert len(set(g.edges())) == 3

    def test_density(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        assert g.density() == pytest.approx(1.0)
        assert Graph().density() == 0.0

    def test_contains_len_iter(self):
        g = Graph(edges=[("a", "b")])
        assert "a" in g
        assert len(g) == 2
        assert list(iter(g)) == ["a", "b"]

    def test_equality_ignores_order(self):
        g1 = Graph(edges=[("a", "b"), ("b", "c")])
        g2 = Graph(edges=[("b", "c"), ("a", "b")])
        assert g1 == g2

    def test_graphs_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())


class TestEdgeAttributes:
    def test_attr_roundtrip(self):
        g = Graph()
        g.add_edge("a", "b", rho=0.97)
        assert g.edge_attr("a", "b", "rho") == pytest.approx(0.97)
        assert g.edge_attr("b", "a", "rho") == pytest.approx(0.97)
        assert g.edge_attr("a", "b", "missing", default=-1) == -1

    def test_set_edge_attr_requires_edge(self):
        g = Graph(edges=[("a", "b")])
        g.set_edge_attr("a", "b", "w", 2)
        assert g.edge_attrs("a", "b") == {"w": 2}
        with pytest.raises(KeyError):
            g.set_edge_attr("a", "c", "w", 2)

    def test_attrs_survive_subgraph(self):
        g = Graph()
        g.add_edge("a", "b", rho=0.99)
        g.add_edge("b", "c", rho=0.96)
        sub = g.subgraph(["a", "b"])
        assert sub.edge_attr("a", "b", "rho") == pytest.approx(0.99)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph(edges=[("a", "b")])
        c = g.copy()
        c.add_edge("b", "c")
        assert g.n_edges == 1
        assert c.n_edges == 2

    def test_subgraph_induced(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        sub = g.subgraph(["a", "b", "c"])
        assert sub.n_vertices == 3
        assert sub.n_edges == 3
        assert not sub.has_vertex("d")

    def test_subgraph_ignores_unknown_vertices(self):
        g = Graph(edges=[("a", "b")])
        sub = g.subgraph(["a", "zzz"])
        assert sub.vertices() == ["a"]

    def test_edge_subgraph(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        sub = g.edge_subgraph([("a", "b"), ("x", "y")])
        assert sub.n_edges == 1
        assert sub.n_vertices == 2

    def test_spanning_subgraph_keeps_all_vertices(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        sub = g.spanning_subgraph([("a", "b")])
        assert sub.n_vertices == 3
        assert sub.n_edges == 1
        assert sub.degree("c") == 0

    def test_relabeled(self):
        g = Graph(edges=[("a", "b")])
        r = g.relabeled({"a": "x"})
        assert r.has_edge("x", "b")
        assert not r.has_vertex("a")

    def test_relabeled_requires_injective_mapping(self):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(ValueError):
            g.relabeled({"a": "b"})


class TestInterop:
    def test_networkx_roundtrip(self):
        g = Graph()
        g.add_edge("a", "b", rho=0.99)
        g.add_vertex("isolated")
        nxg = g.to_networkx()
        back = Graph.from_networkx(nxg)
        assert back == g
        assert back.edge_attr("a", "b", "rho") == pytest.approx(0.99)

    def test_from_edge_list(self):
        g = Graph.from_edge_list([("a", "b"), ("b", "c")])
        assert g.n_edges == 2

    def test_adjacency_lists(self):
        g = Graph(edges=[("a", "b"), ("a", "c")])
        adj = g.adjacency_lists()
        assert adj["a"] == ["b", "c"]
        assert adj["b"] == ["a"]
