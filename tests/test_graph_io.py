"""Unit tests for edge-list / adjacency I/O."""

from __future__ import annotations

import io

from repro.graph import (
    Graph,
    edge_list_string,
    graph_from_string,
    read_adjacency,
    read_edge_list,
    write_adjacency,
    write_edge_list,
)


def make_graph() -> Graph:
    g = Graph()
    g.add_edge("geneA", "geneB", rho=0.97)
    g.add_edge("geneB", "geneC", rho=0.99)
    g.add_vertex("lonely")
    return g


class TestEdgeList:
    def test_roundtrip_via_file(self, tmp_path):
        g = make_graph()
        path = tmp_path / "net.tsv"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back == g

    def test_roundtrip_with_weights(self, tmp_path):
        g = make_graph()
        path = tmp_path / "net.tsv"
        write_edge_list(g, path, weight_attr="rho")
        back = read_edge_list(path, weight_attr="rho")
        assert back.edge_attr("geneA", "geneB", "rho") == 0.97

    def test_isolated_vertices_roundtrip(self, tmp_path):
        g = make_graph()
        path = tmp_path / "net.tsv"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.has_vertex("lonely")
        assert back.degree("lonely") == 0

    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n\na b\n"
        g = read_edge_list(io.StringIO(text))
        assert g.n_edges == 1

    def test_non_numeric_weight_kept_as_string(self):
        g = read_edge_list(io.StringIO("a b strong\n"))
        assert g.edge_attr("a", "b", "weight") == "strong"

    def test_string_roundtrip(self):
        g = make_graph()
        text = edge_list_string(g)
        assert graph_from_string(text) == g

    def test_write_to_stream(self):
        g = make_graph()
        buf = io.StringIO()
        write_edge_list(g, buf)
        assert "geneA\tgeneB" in buf.getvalue()


class TestAdjacency:
    def test_roundtrip(self, tmp_path):
        g = make_graph()
        path = tmp_path / "adj.txt"
        write_adjacency(g, path)
        back = read_adjacency(path)
        assert back == g

    def test_isolated_vertex_line(self):
        g = Graph()
        g.add_vertex("solo")
        buf = io.StringIO()
        write_adjacency(g, buf)
        assert buf.getvalue().strip() == "solo"
        back = read_adjacency(io.StringIO(buf.getvalue()))
        assert back.has_vertex("solo")
