"""Unit tests for the with-communication parallel chordal sampler (baseline)."""

from __future__ import annotations

import pytest

from repro.core import is_chordal
from repro.core.parallel_comm import parallel_chordal_comm_filter, receiver_admit_border_edges
from repro.graph import Graph, complete_graph, correlation_like_graph, edge_key, partition_graph


@pytest.fixture(scope="module")
def network():
    return correlation_like_graph(n_modules=3, module_size=8, n_background=60, p_noise=0.004, seed=23)


class TestReceiverAdmission:
    def test_admits_triangle_closing_edge(self):
        local = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        accepted, checks = receiver_admit_border_edges(local, [edge_key("a", "x"), edge_key("b", "x")])
        assert set(accepted) == {edge_key("a", "x"), edge_key("b", "x")}
        assert checks == 2

    def test_rejects_edge_closing_long_cycle(self):
        # local path a-b-c-d; adding a-d would close a chordless C4
        local = Graph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        accepted, _ = receiver_admit_border_edges(local, [edge_key("a", "d")])
        assert accepted == []

    def test_receiver_graph_stays_chordal_and_grows(self):
        local = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        candidates = [edge_key("a", "x"), edge_key("x", "c"), edge_key("x", "b")]
        accepted, _ = receiver_admit_border_edges(local, candidates)
        assert is_chordal(local)
        for e in accepted:
            assert local.has_edge(*e)

    def test_existing_edges_skipped(self):
        local = complete_graph(3)
        accepted, _ = receiver_admit_border_edges(local, [edge_key("v0", "v1")])
        assert accepted == []


class TestParallelCommFilter:
    @pytest.mark.parametrize("n_partitions", [2, 3, 4, 8])
    def test_output_is_subgraph(self, network, n_partitions):
        result = parallel_chordal_comm_filter(network, n_partitions)
        for u, v in result.graph.iter_edges():
            assert network.has_edge(u, v)
        assert set(result.graph.vertices()) == set(network.vertices())

    def test_method_and_provenance(self, network):
        result = parallel_chordal_comm_filter(network, 4)
        assert result.method == "chordal_comm"
        assert result.n_partitions == 4
        assert "comm_stats" in result.extra
        assert result.simulated_time is not None

    def test_messages_were_exchanged(self, network):
        result = parallel_chordal_comm_filter(network, 4, partition_method="hash")
        stats = result.extra["comm_stats"]
        if result.n_border_edges:
            assert stats.messages_sent > 0
            assert stats.messages_received > 0
            assert stats.items_sent > 0

    def test_accepted_border_edges_subset_of_border(self, network):
        result = parallel_chordal_comm_filter(network, 4, partition_method="hash")
        border = set(result.border_edges)
        assert all(e in border for e in result.accepted_border_edges)

    def test_receiver_side_has_no_duplicates(self, network):
        # unlike the no-communication variant, each border edge is judged by a
        # single receiver, so duplicates should not occur.
        result = parallel_chordal_comm_filter(network, 6, partition_method="hash")
        assert result.duplicate_border_edges == 0

    def test_local_partitions_of_result_remain_chordal(self, network):
        result = parallel_chordal_comm_filter(network, 4, partition_method="block")
        part = partition_graph(network, 4, method="block", order=network.vertices())
        for idx in range(4):
            assert is_chordal(result.graph.subgraph(part.parts[idx]))

    def test_single_partition_falls_back_to_serial(self, network):
        result = parallel_chordal_comm_filter(network, 1)
        assert is_chordal(result.graph)
        assert result.n_border_edges == 0

    def test_invalid_partition_count(self, network):
        with pytest.raises(ValueError):
            parallel_chordal_comm_filter(network, 0)

    def test_rank_work_records_border_edges(self, network):
        result = parallel_chordal_comm_filter(network, 4, partition_method="hash")
        assert len(result.rank_work) == 4
        assert sum(w.border_edges for w in result.rank_work) >= result.n_border_edges

    def test_comm_simulated_time_not_cheaper_than_nocomm(self, network):
        from repro.core.parallel_nocomm import parallel_chordal_nocomm_filter

        comm = parallel_chordal_comm_filter(network, 4, partition_method="hash")
        nocomm = parallel_chordal_nocomm_filter(network, 4, partition_method="hash")
        assert comm.simulated_time >= nocomm.simulated_time
