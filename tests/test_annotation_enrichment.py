"""Unit tests for annotation tables and edge-enrichment (AEES) scoring."""

from __future__ import annotations

import pytest

from repro.graph import Graph
from repro.ontology import (
    AnnotationTable,
    EnrichmentScorer,
    GODag,
    score_cluster,
    score_edge,
)


@pytest.fixture
def dag() -> GODag:
    dag = GODag()
    dag.add_term("L1a", [dag.root_id])
    dag.add_term("L1b", [dag.root_id])
    dag.add_term("L2a", ["L1a"])
    dag.add_term("L2b", ["L1a"])
    dag.add_term("L3a", ["L2a"])
    dag.add_term("L3b", ["L2a"])
    dag.add_term("L4a", ["L3a"])
    return dag


@pytest.fixture
def annotations(dag) -> AnnotationTable:
    table = AnnotationTable(dag)
    table.annotate("geneA", ["L3a"])
    table.annotate("geneB", ["L3b"])
    table.annotate("geneC", ["L4a"])
    table.annotate("geneD", ["L1b"])
    table.annotate("geneMulti", ["L1b", "L4a"])
    return table


class TestAnnotationTable:
    def test_annotate_and_query(self, annotations):
        assert annotations.terms_of("geneA") == {"L3a"}
        assert annotations.terms_of("unknown") == set()
        assert annotations.is_annotated("geneA")
        assert not annotations.is_annotated("unknown")

    def test_unknown_term_rejected(self, dag):
        table = AnnotationTable(dag)
        with pytest.raises(KeyError):
            table.annotate("g", ["NOPE"])

    def test_genes_of_term_and_subtree(self, dag, annotations):
        assert annotations.genes_of("L3a") == {"geneA"}
        assert annotations.genes_of_subtree("L2a") == {"geneA", "geneB", "geneC", "geneMulti"}

    def test_coverage(self, annotations):
        assert annotations.coverage(["geneA", "nobody"]) == pytest.approx(0.5)
        assert annotations.coverage([]) == 0.0

    def test_len_contains_and_counts(self, annotations):
        assert len(annotations) == 5
        assert "geneA" in annotations
        assert annotations.n_annotations() == 6

    def test_merged_with(self, dag, annotations):
        other = AnnotationTable(dag)
        other.annotate("geneZ", ["L1a"])
        merged = annotations.merged_with(other)
        assert merged.is_annotated("geneZ")
        assert merged.is_annotated("geneA")

    def test_merged_with_different_dag_rejected(self, annotations):
        other = AnnotationTable(GODag())
        with pytest.raises(ValueError):
            annotations.merged_with(other)


class TestEdgeScoring:
    def test_sibling_terms_score(self, dag, annotations):
        # L3a and L3b share DCP L2a (depth 2) at breadth 2 -> score 0
        ann = score_edge(dag, annotations, "geneA", "geneB")
        assert ann.dcp == "L2a"
        assert ann.depth == 2
        assert ann.breadth == 2
        assert ann.score == pytest.approx(0.0)

    def test_parent_child_terms_score_high(self, dag, annotations):
        # L3a and L4a: DCP is L3a (depth 3), breadth 1 -> score 2
        ann = score_edge(dag, annotations, "geneA", "geneC")
        assert ann.dcp == "L3a"
        assert ann.score == pytest.approx(2.0)

    def test_unrelated_terms_score_negative(self, dag, annotations):
        # L3a vs L1b: DCP root (depth 0), breadth 4 -> score -4
        ann = score_edge(dag, annotations, "geneA", "geneD")
        assert ann.dcp == dag.root_id
        assert ann.score < 0

    def test_multi_term_gene_takes_best_pair(self, dag, annotations):
        ann = score_edge(dag, annotations, "geneC", "geneMulti")
        assert ann.score == pytest.approx(4.0)  # L4a with itself: depth 4, breadth 0

    def test_unannotated_gene_scores_zero(self, dag, annotations):
        ann = score_edge(dag, annotations, "geneA", "mystery")
        assert ann.dcp is None
        assert ann.score == 0.0


class TestClusterScoring:
    def test_cluster_aees_average(self, dag, annotations):
        cluster = Graph(edges=[("geneA", "geneC"), ("geneA", "geneD")])
        enrichment = score_cluster(dag, annotations, cluster)
        scores = sorted(e.score for e in enrichment.edges)
        assert enrichment.aees == pytest.approx(sum(scores) / 2)
        assert enrichment.max_score == max(scores)

    def test_empty_cluster(self, dag, annotations):
        enrichment = score_cluster(dag, annotations, Graph())
        assert enrichment.aees == 0.0
        assert enrichment.dominant_term() is None

    def test_dominant_term(self, dag, annotations):
        cluster = Graph(edges=[("geneA", "geneC"), ("geneB", "geneA")])
        enrichment = score_cluster(dag, annotations, cluster)
        assert enrichment.dominant_term() in {"L3a", "L2a"}
        freqs = enrichment.term_frequencies()
        assert sum(freqs.values()) == 2

    def test_scorer_caches(self, dag, annotations):
        scorer = EnrichmentScorer(dag, annotations)
        scorer.edge("geneA", "geneC")
        scorer.edge("geneC", "geneA")
        assert scorer.cache_size == 1

    def test_scorer_cluster_matches_direct(self, dag, annotations):
        scorer = EnrichmentScorer(dag, annotations)
        cluster = Graph(edges=[("geneA", "geneB"), ("geneB", "geneC")])
        via_scorer = scorer.cluster(cluster).aees
        direct = score_cluster(dag, annotations, cluster).aees
        assert via_scorer == pytest.approx(direct)

    def test_edge_subset(self, dag, annotations):
        scorer = EnrichmentScorer(dag, annotations)
        enrichment = scorer.edge_subset([("geneA", "geneC")])
        assert len(enrichment.edges) == 1
