"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.graph import (
    barabasi_albert_graph,
    complete_graph,
    correlation_like_graph,
    count_triangles,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    is_connected,
    path_graph,
    planted_partition_graph,
    random_tree,
    star_graph,
)
from repro.graph.cycles import has_cycle


class TestDeterministicShapes:
    def test_path_graph(self):
        g = path_graph(5)
        assert g.n_vertices == 5
        assert g.n_edges == 4
        assert not has_cycle(g)

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.n_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.n_edges == 15
        assert count_triangles(g) == 20

    def test_star_graph(self):
        g = star_graph(7)
        assert g.degree("v0") == 7
        assert g.n_edges == 7

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.n_vertices == 12
        assert g.n_edges == 3 * 3 + 2 * 4  # horizontal + vertical edges

    def test_random_tree(self):
        g = random_tree(20, seed=4)
        assert g.n_edges == 19
        assert is_connected(g)
        assert not has_cycle(g)


class TestRandomGenerators:
    def test_erdos_renyi_seeded(self):
        a = erdos_renyi_graph(30, 0.2, seed=9)
        b = erdos_renyi_graph(30, 0.2, seed=9)
        assert a == b

    def test_erdos_renyi_p_zero_and_one(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).n_edges == 0
        assert erdos_renyi_graph(10, 1.0, seed=1).n_edges == 45

    def test_erdos_renyi_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_barabasi_albert_edge_count(self):
        g = barabasi_albert_graph(50, 2, seed=0)
        assert g.n_vertices == 50
        # star on m+1 vertices plus m edges per new vertex
        assert g.n_edges == 2 + (50 - 3) * 2
        assert is_connected(g)

    def test_barabasi_albert_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 3)

    def test_barabasi_albert_has_hubs(self):
        g = barabasi_albert_graph(120, 2, seed=1)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]


class TestPlantedPartition:
    def test_modules_denser_than_background(self):
        g = planted_partition_graph([15, 15], p_in=0.8, p_out=0.02, seed=3)
        module_a = [f"g{i}" for i in range(15)]
        module_b = [f"g{i}" for i in range(15, 30)]
        internal = g.subgraph(module_a).n_edges + g.subgraph(module_b).n_edges
        cross = g.n_edges - internal
        assert internal > cross

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            planted_partition_graph([5, 5], p_in=0.1, p_out=0.5)

    def test_vertex_count(self):
        g = planted_partition_graph([4, 6, 8], p_in=0.5, p_out=0.0, seed=0)
        assert g.n_vertices == 18


class TestCorrelationLikeGraph:
    def test_contains_dense_modules(self):
        g = correlation_like_graph(n_modules=3, module_size=8, n_background=40, seed=2)
        module0 = [f"gene{i}" for i in range(8)]
        sub = g.subgraph(module0)
        assert sub.density() > 0.5

    def test_reproducible(self):
        a = correlation_like_graph(seed=5)
        b = correlation_like_graph(seed=5)
        assert a == b

    def test_sparse_overall(self):
        g = correlation_like_graph(seed=1)
        assert g.density() < 0.1
