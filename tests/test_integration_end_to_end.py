"""End-to-end integration tests reproducing the paper's hypotheses on tiny data.

Each test corresponds to one of the paper's claims (H0, H0a, H0b, H0c) and
exercises the whole stack: synthetic microarray → correlation network →
filters → MCODE → enrichment → overlap analysis.
"""

from __future__ import annotations

import pytest

from repro.core import apply_filter, is_chordal
from repro.graph import count_triangles
from repro.pipeline import analyze_filter


@pytest.fixture(scope="module")
def bundle(cre_bundle):
    return cre_bundle


class TestH0NoiseRemoval:
    """H0: the maximal chordal subgraph preserves dense subgraphs and removes noise."""

    def test_filter_removes_edges_but_keeps_module_cores(self, bundle):
        result = apply_filter(bundle.network, method="chordal", ordering="natural", n_partitions=1)
        assert 0 < result.n_edges_removed < bundle.n_edges
        # planted modules: the filtered network must retain a dense core for each
        study = bundle.study
        for members in study.modules.values():
            present = [m for m in members if bundle.network.has_vertex(m)]
            if len(present) < 4:
                continue
            original_density = bundle.network.subgraph(present).density()
            filtered_density = result.graph.subgraph(present).density()
            # The module core must survive: the filter may thin a near-clique a
            # little, but not collapse it.
            assert filtered_density >= 0.5 * original_density
            assert filtered_density > 0.2

    def test_triangle_motifs_are_preserved_better_than_random_walk(self, bundle):
        chordal = apply_filter(bundle.network, method="chordal", n_partitions=2)
        walk = apply_filter(bundle.network, method="random_walk", n_partitions=2, seed=1)
        assert count_triangles(chordal.graph) > count_triangles(walk.graph)

    def test_sequential_filter_output_is_chordal(self, bundle):
        result = apply_filter(bundle.network, method="chordal", n_partitions=1)
        assert is_chordal(result.graph)


class TestH0aFilterSelection:
    """H0a: the chordal filter beats the random-walk control at retaining clusters."""

    def test_chordal_retains_clusters_random_walk_does_not(self, bundle):
        chordal = analyze_filter(bundle, method="chordal", ordering="natural", n_partitions=4)
        walk = analyze_filter(bundle, method="random_walk", ordering=None, n_partitions=4, seed=0)
        assert len(chordal.clusters) > 0
        assert len(walk.clusters) < len(chordal.clusters) / 4

    def test_chordal_uncovers_new_clusters(self, bundle):
        chordal = analyze_filter(bundle, method="chordal", ordering="natural", n_partitions=1)
        # "found" clusters may be zero on tiny data, but the machinery must report them
        assert isinstance(chordal.found, list)
        assert len(chordal.found) + len(chordal.matches) >= len(chordal.clusters)


class TestH0bOrderingRobustness:
    """H0b: vertex orderings perturb the subgraph but not the biological conclusions."""

    @pytest.mark.parametrize("ordering", ["natural", "high_degree", "low_degree", "rcm"])
    def test_each_ordering_keeps_relevant_clusters(self, bundle, ordering):
        analysis = analyze_filter(bundle, method="chordal", ordering=ordering, n_partitions=1)
        original_relevant = [
            c for c in bundle.original_clusters if bundle.scorer.cluster(c.subgraph).aees >= 3.0
        ]
        if original_relevant:
            assert analysis.high_scoring_clusters(), ordering

    def test_subgraph_sizes_vary_only_mildly_across_orderings(self, bundle):
        sizes = []
        for ordering in ("natural", "high_degree", "low_degree", "rcm"):
            result = apply_filter(bundle.network, method="chordal", ordering=ordering, n_partitions=1)
            sizes.append(result.n_edges_kept)
        assert max(sizes) - min(sizes) <= 0.1 * max(sizes)


class TestH0cParallelRobustness:
    """H0c: data distribution / processor count shrink the edge set, not the clusters."""

    def test_more_processors_fewer_edges_same_relevant_clusters(self, bundle):
        one = analyze_filter(bundle, method="chordal", ordering="natural", n_partitions=1)
        many = analyze_filter(bundle, method="chordal", ordering="natural", n_partitions=16)
        assert many.result.n_edges_kept <= one.result.n_edges_kept
        if one.high_scoring_clusters():
            assert many.high_scoring_clusters()

    def test_comm_and_nocomm_agree_on_relevant_clusters(self, bundle):
        comm = analyze_filter(bundle, method="chordal_comm", ordering="natural", n_partitions=4)
        nocomm = analyze_filter(bundle, method="chordal", ordering="natural", n_partitions=4)
        high_comm = {frozenset(c.members) for c in comm.high_scoring_clusters()}
        high_nocomm = {frozenset(c.members) for c in nocomm.high_scoring_clusters()}
        if high_comm and high_nocomm:
            # at least one biologically relevant cluster is common to both variants
            shared = any(a & b for a in high_comm for b in high_nocomm)
            assert shared

    def test_duplicate_border_edges_do_not_appear_in_final_graph(self, bundle):
        result = apply_filter(bundle.network, method="chordal", n_partitions=8, partition_method="hash")
        edges = result.graph.edges()
        assert len(edges) == len(set(edges))
