"""Kernel backend registry and jit-tier equivalence tests.

The jit kernels are written in the numba-compilable subset but degrade to
plain Python when numba is absent (``@njit`` becomes the identity
decorator), so this suite runs the *exact* jit code paths — dispatch, packed
heaps, flat-array DSW, bitset planes — on every machine and pins their
outputs bit-identically against the ``numpy`` and ``reference`` tiers.
With numba installed (the CI ``kernels-jit`` job) the same grid runs
compiled.
"""

from __future__ import annotations

import importlib.util
import sys
import warnings

import numpy as np
import pytest

import repro.kernels as kernels_registry
from repro.clustering.mcode import (
    MCODEParams,
    k_core,
    mcode_clusters,
    mcode_clusters_indices,
    mcode_vertex_weights_indices,
)
from repro.core.chordal import (
    chordal_subgraph_edge_indices,
    chordal_subgraph_edges,
    maximum_cardinality_search,
    mcs_order_indices,
    reference_chordal_subgraph_edges,
    reference_maximum_cardinality_search,
)
from repro.core.sampling import apply_filter
from repro.graph import Graph, erdos_renyi_graph
from repro.graph.csr import CSRGraph
from repro.kernels import (
    available_kernel_tiers,
    jit_available,
    kernel_backend,
    kernel_tier_info,
    resolve_kernels,
    set_kernel_backend,
    warm_kernels,
)
from repro.kernels.testing import pure_python_jit
from repro.ontology.go_dag import distance_batch_arrays


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Every test starts from pristine registry state (no env, no default)."""
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    kernels_registry._reset_for_tests()
    yield
    kernels_registry._reset_for_tests()


def graph_pair(seed: int, n: int = 40, p: float = 0.15) -> tuple[Graph, CSRGraph]:
    g = erdos_renyi_graph(n, p, seed=seed)
    return g, CSRGraph.from_graph(g)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
def test_available_tiers():
    assert available_kernel_tiers() == ["reference", "numpy", "jit"]


def test_unknown_tier_raises_listing_valid_names():
    with pytest.raises(ValueError) as err:
        resolve_kernels("vectorised")
    message = str(err.value)
    for tier in available_kernel_tiers():
        assert tier in message
    with pytest.raises(ValueError):
        set_kernel_backend("nope")
    with pytest.raises(ValueError):
        with kernel_backend("nope"):
            pass  # pragma: no cover - the context must raise before entry


def test_unknown_tier_raises_from_entry_points():
    g, _ = graph_pair(0, n=10)
    with pytest.raises(ValueError):
        apply_filter(g, method="chordal", kernels="gpu")
    with pytest.raises(ValueError):
        mcs_order_indices(CSRGraph.from_graph(g), kernels="gpu")


def test_resolution_order_call_over_context_over_default_over_env(monkeypatch):
    assert resolve_kernels() == ("jit" if jit_available() else "numpy")
    monkeypatch.setenv("REPRO_KERNELS", "reference")
    assert resolve_kernels() == "reference"
    set_kernel_backend("numpy")
    assert resolve_kernels() == "numpy"
    with kernel_backend("reference"):
        assert resolve_kernels() == "reference"
        assert resolve_kernels("numpy") == "numpy"  # per-call wins over all
    assert resolve_kernels() == "numpy"
    set_kernel_backend(None)
    assert resolve_kernels() == "reference"  # back to the env setting


def test_set_kernel_backend_reports_active_tier():
    assert set_kernel_backend("numpy") == "numpy"
    # Requesting jit reports what will actually serve.
    active = set_kernel_backend("jit")
    assert active == ("jit" if jit_available() else "numpy")
    assert kernel_tier_info()["requested"] == "jit"


def test_jit_requested_but_unavailable_warns_once(monkeypatch):
    monkeypatch.setattr(kernels_registry, "_jit_probe", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert resolve_kernels("jit") == "numpy"
        assert resolve_kernels("jit") == "numpy"
        assert resolve_kernels("jit") == "numpy"
    relevant = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(relevant) == 1
    assert "repro[kernels]" in str(relevant[0].message)


def test_numba_absent_import_failure_falls_back_cleanly(monkeypatch):
    """Reload jit_kernels with ``import numba`` failing: numpy fallback, no error."""
    monkeypatch.setitem(sys.modules, "numba", None)  # import numba -> ImportError
    spec = importlib.util.find_spec("repro.kernels.jit_kernels")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.HAVE_NUMBA is False
    assert module.NUMBA_VERSION is None
    monkeypatch.setitem(sys.modules, "repro.kernels.jit_kernels", module)
    monkeypatch.setattr(kernels_registry, "_jit_probe", None)
    assert resolve_kernels() == "numpy"  # auto never picks an unservable jit
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        assert resolve_kernels("jit") == "numpy"
    # The whole pipeline still runs on the fallback tier.
    g, _ = graph_pair(3, n=20)
    result = apply_filter(g, method="chordal", ordering="natural", kernels="numpy")
    assert result.graph.n_vertices == g.n_vertices
    # The degraded module's kernels still compute correctly (plain Python).
    indptr = np.array([0, 2, 4, 6], dtype=np.int64)
    indices = np.array([1, 2, 0, 2, 0, 1], dtype=np.int64)
    assert module.KERNELS["mcs_order"](indptr, indices, -1).tolist() == [0, 1, 2]


def test_kernel_tier_info_shape():
    info = kernel_tier_info()
    assert info["tiers"] == ["reference", "numpy", "jit"]
    assert info["requested"] == "auto"
    assert info["active"] in ("numpy", "jit")
    assert isinstance(info["jit_available"], bool)


def test_warm_kernels_without_jit_is_a_noop(monkeypatch):
    monkeypatch.setattr(kernels_registry, "_jit_probe", False)
    assert warm_kernels() == {}


def test_warm_kernels_runs_every_kernel_in_pure_python_mode():
    with pure_python_jit():
        timings = warm_kernels()
    assert set(timings) == {
        "mcs_order",
        "dsw_greedy",
        "dsw_strict",
        "peel",
        "subset_edge_count",
        "mcode_weights",
        "bitset_bfs",
    }
    assert all(t >= 0.0 for t in timings.values())


# ----------------------------------------------------------------------
# the MCS lazy-seed fix
# ----------------------------------------------------------------------
def test_mcs_start_vertex_not_left_stale_in_heap():
    """With ``start`` given, the heap is seeded after the visit — and the
    produced orders match the seed reference exactly (the fix must not move
    any pin)."""
    for seed in range(6):
        g, csr = graph_pair(seed, n=25)
        for start in (None, 0, 7, 24):
            start_label = None if start is None else csr.labels[start]
            expected = reference_maximum_cardinality_search(g, start_label)
            got = maximum_cardinality_search(g, start_label)
            assert got == expected
            order = mcs_order_indices(csr, start)
            assert sorted(order) == list(range(csr.n_vertices))
            if start is not None:
                assert order[0] == start


# ----------------------------------------------------------------------
# jit-tier equivalence (pure-python jit bodies; compiled on CI)
# ----------------------------------------------------------------------
def tiers_for_grid():
    """numpy always; jit through the pure-python hook when numba is absent."""
    return ["numpy", "jit"]


def run_in_tier(tier, fn, *args, **kwargs):
    if tier == "jit" and not kernels_registry._jit_ready():
        with pure_python_jit():
            return fn(*args, kernels="jit", **kwargs)
    return fn(*args, kernels=tier, **kwargs)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_mcs_order_identical_across_tiers(seed):
    _, csr = graph_pair(seed)
    for start in (None, 3):
        base = mcs_order_indices(csr, start, kernels="numpy")
        assert run_in_tier("jit", mcs_order_indices, csr, start) == base


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("strict", [False, True])
def test_dsw_identical_across_tiers(seed, strict):
    rng = np.random.default_rng(seed)
    _, csr = graph_pair(seed)
    n = csr.n_vertices
    priorities = [
        None,
        rng.permutation(n).astype(np.int64),
        (rng.permutation(n).astype(np.int64) * 3 + 5),  # sparse, non-dense ranks
        (np.arange(n, dtype=np.int64) // 4),  # ties: index breaks them
    ]
    for priority in priorities:
        for start in (None, int(rng.integers(n))):
            base = chordal_subgraph_edge_indices(
                csr, priority=priority, strict_order=strict, start=start, kernels="numpy"
            )
            jit = run_in_tier(
                "jit",
                chordal_subgraph_edge_indices,
                csr,
                priority=priority,
                strict_order=strict,
                start=start,
            )
            assert jit == base


def test_chordal_edges_reference_tier_runs_seed_body():
    g, _ = graph_pair(5, n=20)
    ref = chordal_subgraph_edges(g, kernels="reference")
    seed_ref = reference_chordal_subgraph_edges(g)
    assert ref == seed_ref
    assert sorted(map(tuple, ref)) == sorted(
        map(tuple, chordal_subgraph_edges(g, kernels="numpy"))
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_mcode_identical_across_tiers(seed):
    g, csr = graph_pair(seed, n=60, p=0.12)
    base_w = mcode_vertex_weights_indices(csr, kernels="numpy")
    jit_w = run_in_tier("jit", mcode_vertex_weights_indices, csr)
    assert base_w.tobytes() == jit_w.tobytes()  # bit-identical float64
    for params in (MCODEParams(), MCODEParams(fluff=True, min_score=1.0, min_size=2)):
        base = mcode_clusters_indices(csr, params, kernels="numpy")
        assert run_in_tier("jit", mcode_clusters_indices, csr, params) == base
    ref_clusters = mcode_clusters(g, kernels="reference")
    numpy_clusters = mcode_clusters(g, kernels="numpy")
    assert [c.members for c in ref_clusters] == [c.members for c in numpy_clusters]
    assert [c.score for c in ref_clusters] == [c.score for c in numpy_clusters]
    for k in (2, 3):
        base_core = k_core(g, k, kernels="numpy")
        jit_core = run_in_tier("jit", k_core, g, k)
        ref_core = k_core(g, k, kernels="reference")
        for other in (jit_core, ref_core):
            assert other.vertices() == base_core.vertices()
            assert sorted(other.edges()) == sorted(base_core.edges())


def test_bitset_bfs_identical_across_tiers():
    rng = np.random.default_rng(9)
    # A random tree plus chords: connected, irregular levels.
    n = 80
    rows: list[list[int]] = [[] for _ in range(n)]
    for v in range(1, n):
        u = int(rng.integers(v))
        rows[u].append(v)
        rows[v].append(u)
    for _ in range(40):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and v not in rows[u]:
            rows[u].append(v)
            rows[v].append(u)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        indptr[v + 1] = indptr[v] + len(rows[v])
    indices = np.array([w for row in rows for w in sorted(row)], dtype=np.int64)
    a = rng.integers(n, size=400).astype(np.int64)
    b = rng.integers(n, size=400).astype(np.int64)
    base = distance_batch_arrays(a, b, indptr, indices, kernels="numpy")
    ref = distance_batch_arrays(a, b, indptr, indices, kernels="reference")
    with pure_python_jit():
        jit = distance_batch_arrays(a, b, indptr, indices, kernels="jit")
    assert base.tolist() == ref.tolist() == jit.tolist()


# ----------------------------------------------------------------------
# full ordering × partitioner × tier grid on the real filters
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["chordal", "chordal_comm"])
@pytest.mark.parametrize("ordering", ["natural", "high_degree", "rcm"])
@pytest.mark.parametrize("partitioning", [(1, "block"), (4, "block"), (4, "bfs")])
def test_filter_grid_identical_across_tiers(method, ordering, partitioning):
    n_partitions, partition_method = partitioning
    g, _ = graph_pair(11, n=48, p=0.12)
    kwargs = {}
    if n_partitions > 1:
        kwargs["partition_method"] = partition_method
    base = apply_filter(
        g, method=method, ordering=ordering, n_partitions=n_partitions,
        kernels="numpy", **kwargs,
    )
    if kernels_registry._jit_ready():
        jit = apply_filter(
            g, method=method, ordering=ordering, n_partitions=n_partitions,
            kernels="jit", **kwargs,
        )
    else:
        with pure_python_jit():
            jit = apply_filter(
                g, method=method, ordering=ordering, n_partitions=n_partitions,
                kernels="jit", **kwargs,
            )
    assert sorted(jit.graph.edges()) == sorted(base.graph.edges())
    assert jit.graph.vertices() == base.graph.vertices()


def test_analyze_filter_identical_across_tiers(cre_bundle):
    from repro.pipeline.workflow import analysis_payload, analyze_filter

    base = analysis_payload(
        analyze_filter(cre_bundle, method="chordal", ordering="natural", kernels="numpy")
    )
    with pure_python_jit():
        jit = analysis_payload(
            analyze_filter(cre_bundle, method="chordal", ordering="natural", kernels="jit")
        )
    ref = analysis_payload(
        analyze_filter(cre_bundle, method="chordal", ordering="natural", kernels="reference")
    )
    assert base == jit == ref


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_kernels_report(capsys):
    from repro.cli import main

    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "reference, numpy, jit" in out
    assert "active" in out
    if not jit_available():
        assert "not installed" in out


def test_cli_kernels_warm_flag(capsys):
    from repro.cli import main

    assert main(["kernels", "--warm"]) == 0
    out = capsys.readouterr().out
    if jit_available():
        assert "warm[mcs_order]" in out
    else:
        assert "skipped" in out


def test_cli_filter_accepts_kernels_flag(capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    assert main([
        "filter", "--dataset", "CRE", "--scale", "0.02", "--kernels", "numpy", "--json",
    ]) == 0
    import os

    assert os.environ["REPRO_KERNELS"] == "numpy"
    baseline = capsys.readouterr().out
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    kernels_registry._reset_for_tests()
    with pure_python_jit():
        assert main([
            "filter", "--dataset", "CRE", "--scale", "0.02", "--kernels", "jit", "--json",
        ]) == 0
    assert capsys.readouterr().out == baseline  # byte-identical payload
