"""Unit tests for the simulated MPI communicator and SPMD runner."""

from __future__ import annotations

import pytest

from repro.parallel import (
    ANY_SOURCE,
    CommStats,
    SimCommWorld,
    available_backends,
    parallel_map,
    run_spmd,
)


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def rank_fn(comm):
            if comm.rank == 0:
                comm.send({"payload": [1, 2, 3]}, dest=1, tag=5)
                return "sent"
            return comm.recv(source=0, tag=5)

        report = run_spmd(rank_fn, 2)
        assert report.values[0] == "sent"
        assert report.values[1] == {"payload": [1, 2, 3]}

    def test_tag_matching(self):
        def rank_fn(comm):
            if comm.rank == 0:
                comm.send("low", dest=1, tag=1)
                comm.send("high", dest=1, tag=2)
                return None
            high = comm.recv(source=0, tag=2)
            low = comm.recv(source=0, tag=1)
            return (low, high)

        report = run_spmd(rank_fn, 2)
        assert report.values[1] == ("low", "high")

    def test_any_source(self):
        def rank_fn(comm):
            if comm.rank == 0:
                got = [comm.recv(source=ANY_SOURCE) for _ in range(2)]
                return sorted(got)
            comm.send(comm.rank, dest=0)
            return None

        report = run_spmd(rank_fn, 3)
        assert report.values[0] == [1, 2]

    def test_stats_counted(self):
        def rank_fn(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3, 4], dest=1)
            else:
                comm.recv(source=0)
            return None

        report = run_spmd(rank_fn, 2)
        total = report.total_stats()
        assert total.messages_sent == 1
        assert total.messages_received == 1
        assert total.items_sent == 4

    def test_probe(self):
        def rank_fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=9)
                comm.barrier()
                return None
            comm.barrier()
            assert comm.probe(source=0, tag=9)
            assert not comm.probe(source=0, tag=1)
            return comm.recv(source=0, tag=9)

        report = run_spmd(rank_fn, 2)
        assert report.values[1] == "x"


class TestCollectives:
    def test_barrier_all_ranks(self):
        def rank_fn(comm):
            comm.barrier()
            return comm.rank

        assert run_spmd(rank_fn, 4).values == [0, 1, 2, 3]

    def test_bcast(self):
        def rank_fn(comm):
            data = {"config": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert all(v == {"config": 42} for v in run_spmd(rank_fn, 4).values)

    def test_gather(self):
        def rank_fn(comm):
            return comm.gather(comm.rank * 10, root=0)

        values = run_spmd(rank_fn, 4).values
        assert values[0] == [0, 10, 20, 30]
        assert values[1] is None

    def test_allgather(self):
        def rank_fn(comm):
            return comm.allgather(comm.rank)

        values = run_spmd(rank_fn, 3).values
        assert all(v == [0, 1, 2] for v in values)

    def test_reduce_and_allreduce(self):
        def rank_fn(comm):
            total = comm.allreduce(comm.rank + 1, op=lambda a, b: a + b)
            partial = comm.reduce(comm.rank + 1, op=lambda a, b: a + b, root=0)
            return (total, partial)

        values = run_spmd(rank_fn, 4).values
        assert all(v[0] == 10 for v in values)
        assert values[0][1] == 10
        assert values[1][1] is None

    def test_scatter(self):
        def rank_fn(comm):
            data = [f"part{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert run_spmd(rank_fn, 3).values == ["part0", "part1", "part2"]

class TestWorldAndErrors:
    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            SimCommWorld(0)

    def test_comm_rank_range(self):
        world = SimCommWorld(2)
        with pytest.raises(ValueError):
            world.comm(5)

    def test_send_to_invalid_rank(self):
        world = SimCommWorld(2)
        with pytest.raises(ValueError):
            world.comm(0).send("x", dest=7)

    def test_stats_merge(self):
        a = CommStats(messages_sent=1, items_sent=3)
        b = CommStats(messages_sent=2, barriers=1)
        merged = a.merge(b)
        assert merged.messages_sent == 3
        assert merged.items_sent == 3
        assert merged.barriers == 1


class TestRunner:
    def test_backends_listed(self):
        # The single source of truth for run_spmd AND parallel_map; the
        # process backends joined the list with the shared-memory runtime.
        assert available_backends() == [
            "serial", "thread", "process", "process-shm", "process-sock"
        ]

    def test_unknown_backend_errors_name_the_backends(self):
        with pytest.raises(ValueError, match="process-shm"):
            run_spmd(lambda c: None, 2, backend="mpi")
        with pytest.raises(ValueError, match="process-shm"):
            parallel_map(lambda a: a, [(1,)], backend="cluster")

    def test_serial_backend_for_independent_ranks(self):
        report = run_spmd(lambda comm: comm.rank ** 2, 4, backend="serial")
        assert report.values == [0, 1, 4, 9]
        assert report.backend == "serial"

    def test_rank_args(self):
        report = run_spmd(
            lambda comm, item: (comm.rank, item), 3, rank_args=[("a",), ("b",), ("c",)]
        )
        assert report.values == [(0, "a"), (1, "b"), (2, "c")]

    def test_shared_args_and_kwargs(self):
        report = run_spmd(
            lambda comm, x, y=0: comm.rank + x + y, 2, args=(10,), kwargs={"y": 100}
        )
        assert report.values == [110, 111]

    def test_rank_exception_propagates(self):
        def rank_fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return "ok"

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(rank_fn, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 0)
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 2, rank_args=[()])
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 2, backend="mpi")

    def test_parallel_map_serial(self):
        results = parallel_map(lambda a, b: a * b, [(2, 3), (4, 5)])
        assert results == [6, 20]

    def test_parallel_map_invalid_backend(self):
        with pytest.raises(ValueError):
            parallel_map(lambda a: a, [(1,)], backend="cluster")
