"""CSR kernel tests: Graph ↔ CSRGraph round-trips and seed-vs-CSR equivalence.

The chordality hot paths run on :class:`repro.graph.csr.CSRGraph`; the seed
label-level implementations are retained in :mod:`repro.core.chordal` as
``reference_*``.  These tests pin the two contracts the port relies on:

* the CSR view is a faithful, order-preserving image of the ``Graph``;
* the CSR kernels produce the identical results (same MCS ordering, same
  accepted edge set under every ordering in ``graph/ordering.py``, greedy and
  strict) as the seed implementation, on randomized and on mixed-label graphs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chordal import (
    chordal_subgraph_edges,
    is_chordal,
    is_perfect_elimination_ordering,
    maximum_cardinality_search,
    reference_chordal_subgraph_edges,
    reference_maximum_cardinality_search,
)
from repro.graph import CSRGraph, Graph, erdos_renyi_graph
from repro.graph.ordering import ORDERINGS, random_order, reverse_order


@st.composite
def random_graphs(draw, max_vertices: int = 14, max_extra_edges: int = 30, mixed_labels: bool = False):
    """Strategy: small random simple graphs (optionally with mixed int/str labels)."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    if mixed_labels:
        # Alternate int and string labels; they are unorderable against each
        # other, so every canonical edge key exercises the edge_key fallback.
        vertices = [i if i % 2 == 0 else f"g{i}" for i in range(n)]
    else:
        vertices = [f"n{i}" for i in range(n)]
    g = Graph(vertices=vertices)
    if n >= 2:
        n_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
        pairs = st.tuples(
            st.integers(min_value=0, max_value=n - 1),
            st.integers(min_value=0, max_value=n - 1),
        )
        for _ in range(n_edges):
            i, j = draw(pairs)
            if i != j:
                g.add_edge(vertices[i], vertices[j])
    return g


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_round_trip_preserves_graph(self, g: Graph):
        csr = CSRGraph.from_graph(g)
        back = csr.to_graph()
        assert back == g
        assert back.vertices() == g.vertices()

    @settings(max_examples=40, deadline=None)
    @given(random_graphs(mixed_labels=True))
    def test_round_trip_mixed_labels(self, g: Graph):
        back = CSRGraph.from_graph(g).to_graph()
        assert back == g
        assert back.vertices() == g.vertices()

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_structure_counters_match(self, g: Graph):
        csr = CSRGraph.from_graph(g)
        assert csr.n_vertices == g.n_vertices
        assert csr.n_edges == g.n_edges
        assert csr.max_degree() == g.max_degree()
        degs = csr.degrees()
        for i, v in enumerate(g.vertices()):
            assert csr.degree(i) == g.degree(v) == degs[i]
            assert csr.to_labels(csr.neighbors(i)) == g.neighbors(v)

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_edge_membership_matches(self, g: Graph):
        csr = CSRGraph.from_graph(g)
        n = g.n_vertices
        verts = g.vertices()
        for i in range(n):
            for j in range(n):
                assert csr.has_edge(i, j) == g.has_edge(verts[i], verts[j])

    def test_has_edges_vectorized(self):
        g = erdos_renyi_graph(20, 0.3, seed=2)
        csr = CSRGraph.from_graph(g)
        verts = g.vertices()
        rng = np.random.default_rng(0)
        us = rng.integers(0, 20, size=50)
        vs = rng.integers(0, 20, size=50)
        expect = np.array([g.has_edge(verts[u], verts[v]) for u, v in zip(us, vs)])
        assert np.array_equal(csr.has_edges(us, vs), expect)

    def test_frozen(self):
        csr = CSRGraph.from_graph(erdos_renyi_graph(5, 0.5, seed=1))
        with pytest.raises(AttributeError):
            csr.labels = ()
        with pytest.raises(ValueError):
            csr.indices[0] = 0

    def test_label_index_round_trip(self):
        g = Graph(vertices=["a", 7, ("t", 1)])
        g.add_edge("a", 7)
        csr = CSRGraph.from_graph(g)
        for i, v in enumerate(g.vertices()):
            assert csr.index_of(v) == i
            assert csr.label_of(i) == v
            assert v in csr
        assert "missing" not in csr

    def test_validation_rejects_malformed_arrays(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0]), labels=("a",))
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]), labels=("a",))

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(Graph())
        assert csr.n_vertices == 0
        assert csr.n_edges == 0
        assert csr.to_graph() == Graph()


def _all_orders(g: Graph) -> list:
    """Every ordering of ``graph/ordering.py`` plus reverse and a seeded shuffle."""
    orders = [None]
    if g.n_vertices:
        orders.extend(fn(g) for fn in ORDERINGS.values())
        orders.append(reverse_order(g))
        orders.append(random_order(g, seed=13))
    return orders


class TestSeedEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(random_graphs())
    def test_extraction_matches_reference_all_orderings(self, g: Graph):
        for order in _all_orders(g):
            for strict in (False, True):
                new = chordal_subgraph_edges(g, order=order, strict_order=strict)
                ref = reference_chordal_subgraph_edges(g, order=order, strict_order=strict)
                assert set(new) == set(ref)
                assert len(new) == len(set(new))  # no duplicate edges

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(mixed_labels=True))
    def test_extraction_matches_reference_mixed_labels(self, g: Graph):
        new = chordal_subgraph_edges(g)
        ref = reference_chordal_subgraph_edges(g)
        assert set(new) == set(ref)

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_mcs_matches_reference(self, g: Graph):
        assert maximum_cardinality_search(g) == reference_maximum_cardinality_search(g)
        for v in list(g.vertices())[:3]:
            assert maximum_cardinality_search(g, start=v) == reference_maximum_cardinality_search(
                g, start=v
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_extraction_matches_reference_larger_graphs(self, seed):
        g = erdos_renyi_graph(60, 0.12, seed=seed)
        for order in _all_orders(g):
            new = chordal_subgraph_edges(g, order=order)
            ref = reference_chordal_subgraph_edges(g, order=order)
            assert set(new) == set(ref)

    @pytest.mark.parametrize("seed", range(3))
    def test_explicit_start_matches_reference(self, seed):
        g = erdos_renyi_graph(25, 0.2, seed=seed)
        start = g.vertices()[7]
        new = chordal_subgraph_edges(g, start=start)
        ref = reference_chordal_subgraph_edges(g, start=start)
        assert set(new) == set(ref)

    @settings(max_examples=30, deadline=None)
    @given(random_graphs())
    def test_peo_and_chordality_consistency(self, g: Graph):
        order = maximum_cardinality_search(g)
        if order:
            assert is_perfect_elimination_ordering(g, list(reversed(order))) == is_chordal(g)
