"""Pins for the batched enrichment engine.

The repo convention: when a hot path is rewritten index-native, the seed
implementation is retained as ``reference_*`` and the new path is pinned
**bit-identical** to it.  These tests pin

* the interned term space (``TermIndex`` depths / ancestors / distances
  against the scalar ``GODag`` queries),
* the batched edge scorer against ``reference_score_edge`` — including the
  orientation-sensitive first-pair-wins tie-break — across randomized DAGs
  and annotation tables,
* the whole-bundle array front-end (``score_cluster_graphs``) against
  per-cluster ``reference_score_cluster`` aggregates,
* every execution backend against the serial path,
* the edge cases: unannotated endpoints, empty clusters, empty term lists
  and ``dominant_term`` tie-breaking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph
from repro.ontology import (
    AnnotationTable,
    EnrichmentScorer,
    GODag,
    make_go_dag,
    reference_score_cluster,
    reference_score_edge,
    score_cluster,
    score_edge,
)


def random_dag(seed: int, depth: int = 5, branching: int = 3) -> GODag:
    return make_go_dag(depth=depth, branching=branching, extra_parent_fraction=0.15, seed=seed)


def random_annotations(
    dag: GODag, seed: int, n_genes: int = 40, unannotated_fraction: float = 0.2
) -> AnnotationTable:
    """Random gene → term table with some unannotated and empty-list genes."""
    rng = np.random.default_rng(seed)
    terms = dag.terms()
    table = AnnotationTable(dag)
    for g in range(n_genes):
        gene = f"gene{g}"
        if rng.random() < unannotated_fraction:
            if rng.random() < 0.5:
                table.annotate(gene, [])  # annotated gene with an empty term list
            continue
        picks = rng.integers(0, len(terms), size=rng.integers(1, 5))
        table.annotate(gene, [terms[int(i)] for i in picks])
    return table


class TestTermIndex:
    def test_ids_are_sorted_term_order(self):
        dag = random_dag(0)
        index = dag.term_index()
        assert list(index.terms) == sorted(dag.terms())
        # interned comparison == lexical comparison, the tie-break invariant
        for a, b in zip(index.terms, index.terms[1:]):
            assert index.id_of[a] < index.id_of[b] and a < b

    def test_depths_and_ancestors_match_scalar(self):
        dag = random_dag(1)
        index = dag.term_index()
        for t in dag.terms():
            i = index.id_of[t]
            assert int(index.depths[i]) == dag.depth(t)
            ancestors = {index.terms[int(j)] for j in index.ancestors_of(i)}
            assert ancestors == set(dag.ancestors(t))
            row = index.ancestors_of(i)
            assert np.array_equal(row, np.sort(row))

    def test_dcp_and_distance_batches_match_scalar(self):
        dag = random_dag(2)
        index = dag.term_index()
        terms = dag.terms()
        rng = np.random.default_rng(7)
        a = rng.integers(0, len(terms), 200)
        b = rng.integers(0, len(terms), 200)
        a_ids = index.ids_for([terms[int(i)] for i in a])
        b_ids = index.ids_for([terms[int(i)] for i in b])
        dcp = index.dcp_batch(a_ids, b_ids)
        dist = index.distance_batch(a_ids, b_ids)
        for i in range(a.shape[0]):
            ta, tb = terms[int(a[i])], terms[int(b[i])]
            assert index.terms[int(dcp[i])] == dag.deepest_common_parent(ta, tb)
            assert int(dist[i]) == dag.term_distance(ta, tb)

    def test_bitset_and_per_source_distances_agree(self):
        from repro.ontology.go_dag import (
            _BITSET_SOURCE_THRESHOLD,
            distance_batch_arrays,
        )

        dag = random_dag(3)
        index = dag.term_index()
        n = index.n_terms
        rng = np.random.default_rng(11)
        a = rng.integers(0, n, 400).astype(np.int64)
        b = rng.integers(0, n, 400).astype(np.int64)
        assert np.unique(np.minimum(a, b)).size > _BITSET_SOURCE_THRESHOLD
        csr = index.term_csr
        cold = distance_batch_arrays(a, b, csr.indptr, csr.indices)  # bitset path
        warm = index.distance_batch(a, b)  # row-cache path (sources get cached)
        again = index.distance_batch(a, b)  # pure cache hits
        assert np.array_equal(cold, warm)
        assert np.array_equal(cold, again)

    def test_index_invalidated_on_mutation(self):
        dag = random_dag(4)
        first = dag.term_index()
        dag.add_term("GO:FRESH", [dag.root_id])
        second = dag.term_index()
        assert second is not first
        assert "GO:FRESH" in second.id_of

    def test_annotation_index_rows_sorted_and_rebuilt(self):
        dag = random_dag(5)
        table = random_annotations(dag, 5)
        index = table.indexed()
        assert table.indexed() is index
        for gene in table.genes():
            row = index.terms_of_row(index.row_of(gene))
            assert np.array_equal(row, np.sort(row))
            assert {index.term_index.terms[int(t)] for t in row} == table.terms_of(gene)
        assert index.row_of("nobody") == -1
        table.annotate("late", [dag.root_id])
        assert table.indexed() is not index


class TestBatchedEqualsReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_edges_bit_identical(self, seed):
        """Property test: engine == reference on random DAGs and annotations."""
        dag = random_dag(seed)
        table = random_annotations(dag, seed * 13 + 1)
        genes = [f"gene{g}" for g in range(45)]  # includes unannotated names
        rng = np.random.default_rng(seed)
        edges = []
        while len(edges) < 150:
            u = genes[int(rng.integers(len(genes)))]
            v = genes[int(rng.integers(len(genes)))]
            if u != v:
                edges.append((u, v))
        scorer = EnrichmentScorer(dag, table)
        batched = scorer.edge_annotations(edges)
        # Mirror the seed scorer's cache contract: a repeated unordered edge
        # keeps the result of its *first* orientation (the candidate
        # tie-break is orientation-sensitive), keyed by edge_key.
        from repro.graph.graph import edge_key

        expected: dict = {}
        for u, v in edges:
            key = edge_key(u, v)
            if key not in expected:
                expected[key] = reference_score_edge(dag, table, u, v)
        for (u, v), got in zip(edges, batched):
            assert got == expected[edge_key(u, v)]

    def test_orientation_sensitive_tie_break(self):
        """(u, v) and (v, u) can legitimately pick different DCPs on score
        ties; the engine must reproduce the scalar loop's choice for the
        orientation it was asked, like the seed scorer did."""
        dag = GODag()
        dag.add_term("A", [dag.root_id])
        dag.add_term("B", [dag.root_id])
        dag.add_term("A1", ["A"])
        dag.add_term("B1", ["B"])
        table = AnnotationTable(dag, {"g1": ["A1", "B1"], "g2": ["A1", "B1"]})
        forward = score_edge(dag, table, "g1", "g2")
        assert forward == reference_score_edge(dag, table, "g1", "g2")
        # identical term sets, so both orientations agree here — but each
        # must match its own reference run
        backward = score_edge(dag, table, "g2", "g1")
        assert backward == reference_score_edge(dag, table, "g2", "g1")

    def test_module_functions_route_through_engine(self):
        dag = random_dag(6)
        table = random_annotations(dag, 6)
        cluster = Graph(edges=[("gene1", "gene2"), ("gene2", "gene3")])
        assert score_edge(dag, table, "gene1", "gene2") == reference_score_edge(
            dag, table, "gene1", "gene2"
        )
        got = score_cluster(dag, table, cluster)
        ref = reference_score_cluster(dag, table, cluster)
        assert got.edges == ref.edges
        assert got.aees == ref.aees

    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_score_cluster_graphs_matches_reference_aggregates(self, seed):
        dag = random_dag(seed, depth=4)
        table = random_annotations(dag, seed + 100, n_genes=30)
        rng = np.random.default_rng(seed)
        clusters: list[Graph] = []
        for c in range(10):
            g = Graph()
            members = [f"gene{int(i)}" for i in rng.integers(0, 32, size=6)]
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    if members[i] != members[j] and rng.random() < 0.5:
                        g.add_edge(members[i], members[j])
            clusters.append(g)
        clusters.append(Graph())  # empty cluster
        scorer = EnrichmentScorer(dag, table)
        scores = scorer.score_cluster_graphs(clusters)
        assert len(scores) == len(clusters)
        for i, g in enumerate(clusters):
            ref = reference_score_cluster(dag, table, g)
            assert scores.aees[i] == ref.aees
            assert scores.max_score[i] == ref.max_score
            assert scores.max_depth[i] == ref.max_depth
            assert scores.n_edges[i] == len(ref.edges)
            assert scores.dominant[i] == ref.dominant_term()

    def test_cluster_aees_matches_object_path(self):
        dag = random_dag(7)
        table = random_annotations(dag, 7)
        g = Graph(edges=[("gene1", "gene2"), ("gene3", "gene4"), ("gene2", "gene3")])
        scorer = EnrichmentScorer(dag, table)
        assert scorer.cluster_aees([g, Graph()]) == [scorer.cluster(g).aees, 0.0]

    def test_reference_engine_scorer(self):
        dag = random_dag(8)
        table = random_annotations(dag, 8)
        g = Graph(edges=[("gene1", "gene2"), ("gene2", "gene5")])
        ref_scorer = EnrichmentScorer(dag, table, engine="reference")
        fast_scorer = EnrichmentScorer(dag, table)
        assert ref_scorer.cluster(g).edges == fast_scorer.cluster(g).edges
        assert ref_scorer.cluster_aees([g]) == fast_scorer.cluster_aees([g])
        scores = ref_scorer.score_cluster_graphs([g])
        assert scores.aees[0] == fast_scorer.cluster(g).aees

    def test_invalid_engine_and_backend_rejected(self):
        dag = random_dag(9)
        table = random_annotations(dag, 9)
        with pytest.raises(ValueError):
            EnrichmentScorer(dag, table, engine="nope")
        with pytest.raises(ValueError):
            EnrichmentScorer(dag, table, backend="mpi")


class TestEdgeCases:
    @pytest.fixture
    def dag(self) -> GODag:
        dag = GODag()
        dag.add_term("L1a", [dag.root_id])
        dag.add_term("L1b", [dag.root_id])
        dag.add_term("L2a", ["L1a"])
        dag.add_term("L2b", ["L1a"])
        return dag

    def test_unannotated_endpoints_score_zero(self, dag):
        table = AnnotationTable(dag, {"known": ["L2a"]})
        table.annotate("hollow", [])  # in the table, zero terms
        scorer = EnrichmentScorer(dag, table)
        for u, v in [("known", "ghost"), ("ghost", "known"), ("known", "hollow"), ("x", "y")]:
            ann = scorer.edge(u, v)
            assert ann == reference_score_edge(dag, table, u, v)
            assert ann.dcp is None and ann.score == 0.0

    def test_empty_cluster_scores(self, dag):
        table = AnnotationTable(dag, {"g": ["L2a"]})
        scorer = EnrichmentScorer(dag, table)
        scores = scorer.score_cluster_graphs([Graph(), Graph(vertices=["g"])])
        assert scores.aees.tolist() == [0.0, 0.0]
        assert scores.max_score.tolist() == [0.0, 0.0]
        assert scores.max_depth.tolist() == [0, 0]
        assert scores.dominant == [None, None]
        assert scorer.cluster(Graph()).dominant_term() is None

    def test_all_unannotated_cluster_has_no_dominant_term(self, dag):
        table = AnnotationTable(dag, {"g": ["L2a"]})
        scorer = EnrichmentScorer(dag, table)
        g = Graph(edges=[("u1", "u2"), ("u2", "u3")])
        scores = scorer.score_cluster_graphs([g])
        assert scores.dominant == [None]
        assert scores.aees[0] == 0.0 and scores.n_edges[0] == 2

    def test_dominant_term_count_tie_breaks_lexically(self, dag):
        # two edges with DCP L2a, two with DCP L2b -> tie broken by the
        # lexically larger term id, exactly like Counter + max on (count, id)
        table = AnnotationTable(
            dag, {"a1": ["L2a"], "a2": ["L2a"], "b1": ["L2b"], "b2": ["L2b"]}
        )
        g = Graph(edges=[("a1", "a2"), ("b1", "b2")])
        scorer = EnrichmentScorer(dag, table)
        scores = scorer.score_cluster_graphs([g])
        ref = reference_score_cluster(dag, table, g)
        assert scores.dominant[0] == ref.dominant_term() == "L2b"

    def test_dominant_term_prefers_count_over_lexical(self, dag):
        table = AnnotationTable(
            dag, {"a1": ["L2a"], "a2": ["L2a"], "a3": ["L2a"], "b1": ["L2b"], "b2": ["L2b"]}
        )
        g = Graph(edges=[("a1", "a2"), ("a2", "a3"), ("a1", "a3"), ("b1", "b2")])
        scorer = EnrichmentScorer(dag, table)
        scores = scorer.score_cluster_graphs([g])
        ref = reference_score_cluster(dag, table, g)
        assert scores.dominant[0] == ref.dominant_term() == "L2a"

    def test_edge_cache_normalises_orientation(self, dag):
        table = AnnotationTable(dag, {"g1": ["L2a"], "g2": ["L2b"]})
        scorer = EnrichmentScorer(dag, table)
        scorer.edge("g1", "g2")
        scorer.edge("g2", "g1")
        assert scorer.cache_size == 1
        assert scorer.pair_table_size >= 1

    def test_pair_table_reset_on_dag_mutation(self, dag):
        table = AnnotationTable(dag, {"g1": ["L2a"], "g2": ["L2b"]})
        scorer = EnrichmentScorer(dag, table)
        scorer.edge("g1", "g2")
        assert scorer.pair_table_size >= 1
        dag.add_term("L2c", ["L1a"])
        scorer.edge_annotations([("g1", "g2"), ("g2", "g1")])
        # table rebuilt against the fresh index; cached edge results remain
        assert scorer.cache_size == 1


class TestBackends:
    @pytest.mark.parametrize("backend", ["thread", "process", "process-shm"])
    def test_backends_bit_identical_to_serial(self, backend):
        dag = random_dag(10, depth=4)
        table = random_annotations(dag, 10, n_genes=30, unannotated_fraction=0.0)
        rng = np.random.default_rng(10)
        edges = []
        while len(edges) < 200:
            u, v = (f"gene{int(i)}" for i in rng.integers(0, 30, size=2))
            if u != v:
                edges.append((u, v))
        serial = EnrichmentScorer(dag, table).edge_annotations(edges)
        scorer = EnrichmentScorer(dag, table, backend=backend, pair_chunk=64)
        try:
            assert scorer.edge_annotations(edges) == serial
        finally:
            scorer.close()

    def test_small_batches_stay_serial(self):
        dag = random_dag(11, depth=4)
        table = random_annotations(dag, 11, n_genes=10, unannotated_fraction=0.0)
        scorer = EnrichmentScorer(dag, table, backend="process-shm", pair_chunk=10**6)
        try:
            got = scorer.edge_annotations([("gene0", "gene1")])
            assert got[0] == reference_score_edge(dag, table, "gene0", "gene1")
            assert scorer._arena is None  # never left the serial path
        finally:
            scorer.close()


class TestBitsetBfsEdgeCases:
    def test_trailing_empty_rows_do_not_corrupt_segments(self):
        """Zero-degree trailing vertices must not shift the reduceat segments
        of the last non-empty row (regression: the old start-clipping dropped
        that row's final neighbour)."""
        from repro.ontology.go_dag import (
            _bfs_distances,
            _bitset_distance_queries,
        )

        # path 0-1-...-29 plus chord (0, 29), then an isolated vertex 30
        n = 31
        edges = [(i, i + 1) for i in range(29)] + [(0, 29)]
        indptr = np.zeros(n + 1, dtype=np.int64)
        rows: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            rows[u].append(v)
            rows[v].append(u)
        flat: list[int] = []
        for i, r in enumerate(rows):
            r.sort()
            flat.extend(r)
            indptr[i + 1] = len(flat)
        indices = np.array(flat, dtype=np.int64)
        rng = np.random.default_rng(0)
        src = rng.integers(0, n - 1, 80).astype(np.int64)
        dst = rng.integers(0, n, 80).astype(np.int64)
        src, dst = np.minimum(src, dst), np.maximum(src, dst)
        assert np.unique(src).size > 16
        got = _bitset_distance_queries(indptr, indices, src, dst)
        for i in range(src.shape[0]):
            assert got[i] == _bfs_distances(indptr, indices, int(src[i]))[int(dst[i])]
        # the isolated vertex is unreachable: -1, like the scalar BFS
        iso = _bitset_distance_queries(
            indptr, indices, np.arange(17, dtype=np.int64), np.full(17, 30, dtype=np.int64)
        )
        assert (iso == -1).all()
