"""Unit tests for the differential-expression pre-filter (GSE5078-style)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expression import (
    ExpressionMatrix,
    apply_differential_filter,
    differential_expression_scores,
    select_differential_genes,
)


def make_conditions() -> tuple[ExpressionMatrix, ExpressionMatrix]:
    rng = np.random.default_rng(3)
    n_samples = 8
    genes = [f"g{i}" for i in range(30)]
    base_a = rng.standard_normal((30, n_samples))
    base_b = rng.standard_normal((30, n_samples))
    # genes 0-9 are strongly shifted between conditions, the rest are not
    base_b[:10] += 5.0
    a = ExpressionMatrix(base_a, genes=genes, samples=[f"a{i}" for i in range(n_samples)])
    b = ExpressionMatrix(base_b, genes=genes, samples=[f"b{i}" for i in range(n_samples)])
    return a, b


class TestScores:
    def test_shifted_genes_have_larger_t(self):
        a, b = make_conditions()
        result = differential_expression_scores(a, b)
        shifted = np.abs(result.t_statistics[:10]).min()
        stable = np.abs(result.t_statistics[10:]).max()
        assert shifted > stable

    def test_p_values_in_unit_interval(self):
        a, b = make_conditions()
        result = differential_expression_scores(a, b)
        assert np.all(result.p_values >= 0.0)
        assert np.all(result.p_values <= 1.0)

    def test_gene_mismatch_rejected(self):
        a, b = make_conditions()
        b2 = b.subset_genes(list(reversed(b.genes)))
        with pytest.raises(ValueError):
            differential_expression_scores(a, b2)

    def test_zero_variance_genes_handled(self):
        genes = ["flat", "varying"]
        a = ExpressionMatrix(np.vstack([np.ones(4), np.arange(4.0)]), genes=genes, samples=list("abcd"))
        b = ExpressionMatrix(np.vstack([np.ones(4), np.arange(4.0) + 1]), genes=genes, samples=list("efgh"))
        result = differential_expression_scores(a, b)
        assert np.isfinite(result.t_statistics).all()


class TestSelection:
    def test_top_fraction_selects_shifted_genes(self):
        a, b = make_conditions()
        kept = select_differential_genes(a, b, fraction=0.33)
        assert len(kept) == 10
        assert set(kept) == {f"g{i}" for i in range(10)}

    def test_top_fraction_preserves_original_order(self):
        a, b = make_conditions()
        result = differential_expression_scores(a, b)
        kept = result.top_fraction(0.5)
        indices = [a.genes.index(g) for g in kept]
        assert indices == sorted(indices)

    def test_invalid_fraction(self):
        a, b = make_conditions()
        with pytest.raises(ValueError):
            select_differential_genes(a, b, fraction=0.0)

    def test_apply_filter_returns_subsets(self):
        a, b = make_conditions()
        fa, fb, kept = apply_differential_filter(a, b, fraction=0.33)
        assert fa.genes == kept
        assert fb.genes == kept
        assert fa.n_samples == a.n_samples
