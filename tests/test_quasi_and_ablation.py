"""Tests for quasi-chordal analysis and the ablation drivers."""

from __future__ import annotations

import pytest

from repro.core import apply_filter, chordality_deficit, long_cycle_census, quasi_chordal_report
from repro.graph import complete_graph, cycle_graph, partition_graph, path_graph
from repro.pipeline import experiments as exp
from repro.pipeline.ablation import (
    hub_retention_study,
    mcode_threshold_sweep,
    partitioner_ablation,
    quasi_chordality_study,
)

SCALE = 0.02


class TestChordalityDeficit:
    def test_chordal_graphs_have_zero_deficit(self):
        assert chordality_deficit(complete_graph(5)) == 0
        assert chordality_deficit(path_graph(6)) == 0

    def test_cycle_deficit_positive(self):
        assert chordality_deficit(cycle_graph(6)) > 0

    def test_long_cycle_census(self):
        census = long_cycle_census(cycle_graph(7))
        assert census == {7: 1}
        assert long_cycle_census(complete_graph(5)) == {}


class TestQuasiChordalReport:
    def test_sequential_result_is_chordal(self, cre_bundle):
        result = apply_filter(cre_bundle.network, method="chordal", n_partitions=1)
        report = quasi_chordal_report(result)
        assert report.is_chordal
        assert report.chordality_deficit == 0
        assert report.n_long_cycles == 0
        assert report.max_cycle_length == 3

    def test_parallel_result_partitions_stay_chordal(self, cre_bundle):
        result = apply_filter(
            cre_bundle.network, method="chordal", ordering="natural", n_partitions=8
        )
        partition = partition_graph(cre_bundle.network, 8, method="block")
        report = quasi_chordal_report(result, partition)
        # only border edges can break chordality, so every partition-induced
        # subgraph of the filtered network must itself be chordal
        assert report.partitions_chordal == 8
        assert report.n_border_edges == len(result.border_edges)
        d = report.as_dict()
        assert d["n_partitions"] == 8

    def test_deficit_reported_when_not_chordal(self, cre_bundle):
        result = apply_filter(
            cre_bundle.network, method="chordal", ordering="natural", n_partitions=8
        )
        report = quasi_chordal_report(result)
        if not report.is_chordal:
            assert report.chordality_deficit > 0


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    exp.clear_bundle_cache()
    yield
    exp.clear_bundle_cache()


class TestAblationDrivers:
    def test_mcode_threshold_sweep_monotone(self):
        out = mcode_threshold_sweep(scale=SCALE, dataset="CRE", thresholds=(2.0, 3.0, 4.0))
        rows = out["rows"]
        assert len(rows) == 3
        counts = [r["filtered_clusters"] for r in rows]
        assert counts == sorted(counts, reverse=True)  # stricter threshold, fewer clusters

    def test_partitioner_ablation_rows(self):
        out = partitioner_ablation(scale=SCALE, dataset="CRE", n_partitions=4, methods=("block", "bfs"))
        assert len(out["rows"]) == 2
        for row in out["rows"]:
            assert row["duplicates"] <= row["border_edges"]
            assert row["edges_kept"] > 0
        bfs_row = next(r for r in out["rows"] if r["partitioner"] == "bfs")
        block_row = next(r for r in out["rows"] if r["partitioner"] == "block")
        assert bfs_row["border_edges"] <= block_row["border_edges"]

    def test_hub_retention_study(self):
        out = hub_retention_study(scale=SCALE, dataset="CRE", k=10, n_partitions=4, measures=("degree",))
        assert len(out["rows"]) == 2
        for row in out["rows"]:
            assert 0.0 <= row["hub_retention"] <= 1.0
            assert -1.0 <= row["rank_correlation"] <= 1.0
        chordal = next(r for r in out["rows"] if r["filter"] == "chordal")
        walk = next(r for r in out["rows"] if r["filter"] == "random_walk")
        assert chordal["hub_retention"] >= walk["hub_retention"] - 0.3

    def test_quasi_chordality_study(self):
        out = quasi_chordality_study(scale=SCALE, dataset="CRE", processor_counts=(2, 4))
        rows = out["rows"]
        sequential = rows[0]
        assert sequential["variant"] == "sequential"
        assert sequential["is_chordal"] is True
        for row in rows[1:]:
            assert row["duplicate_border_edges"] <= row["border_edges"]
            if row["variant"].startswith("nocomm"):
                assert row["partitions_chordal"] == row["n_partitions"]
        # the repair pass deletes border edges, so it can only keep fewer or the
        # same number of accepted border edges.  (The paper notes that deleting
        # edges can expose *new* cycles, so the long-cycle count itself is not
        # monotone — we only check the edge-set containment here.)
        for p in (2, 4):
            raw = next(r for r in rows if r["variant"] == "nocomm" and r["processors"] == p)
            rep = next(r for r in rows if r["variant"] == "nocomm+repair" and r["processors"] == p)
            assert rep["accepted_border_edges"] <= raw["accepted_border_edges"]
