"""Unit tests for expression-matrix TSV I/O."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.expression import ExpressionMatrix, read_expression_tsv, write_expression_tsv


def make_matrix(with_conditions: bool = True) -> ExpressionMatrix:
    return ExpressionMatrix(
        values=np.array([[1.5, 2.0, 3.25], [0.1, 0.2, 0.3]]),
        genes=["geneA", "geneB"],
        samples=["s1", "s2", "s3"],
        conditions=["YNG", "YNG", "MID"] if with_conditions else None,
    )


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        m = make_matrix()
        path = tmp_path / "expr.tsv"
        write_expression_tsv(m, path)
        back = read_expression_tsv(path)
        assert back.genes == m.genes
        assert back.samples == m.samples
        assert back.conditions == m.conditions
        assert np.allclose(back.values, m.values)

    def test_stream_roundtrip_without_conditions(self):
        m = make_matrix(with_conditions=False)
        buf = io.StringIO()
        write_expression_tsv(m, buf)
        back = read_expression_tsv(io.StringIO(buf.getvalue()))
        assert back.conditions is None
        assert np.allclose(back.values, m.values)

    def test_conditions_can_be_omitted_on_write(self):
        m = make_matrix()
        buf = io.StringIO()
        write_expression_tsv(m, buf, include_conditions=False)
        assert "#condition" not in buf.getvalue()


class TestErrors:
    def test_empty_file(self):
        with pytest.raises(ValueError):
            read_expression_tsv(io.StringIO(""))

    def test_missing_gene_header(self):
        with pytest.raises(ValueError):
            read_expression_tsv(io.StringIO("s1\ts2\n"))

    def test_wrong_column_count(self):
        text = "gene\ts1\ts2\ngeneA\t1.0\n"
        with pytest.raises(ValueError):
            read_expression_tsv(io.StringIO(text))

    def test_no_gene_rows(self):
        with pytest.raises(ValueError):
            read_expression_tsv(io.StringIO("gene\ts1\ts2\n"))

    def test_comment_lines_ignored(self):
        text = "gene\ts1\ts2\n# a comment\ngeneA\t1.0\t2.0\n\n"
        m = read_expression_tsv(io.StringIO(text))
        assert m.genes == ["geneA"]
