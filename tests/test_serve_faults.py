"""Fault-injection tests for the serving layer and its process substrate.

Covers the failure modes a resident daemon must absorb:

* a pool worker SIGKILLed mid-request → :class:`WorkerPoolError` for that
  request, pool torn down and respawned, daemon keeps serving;
* a stalled peer → the client times out instead of hanging forever;
* repeated serve start/stop cycles → no leaked shared-memory segments and no
  orphaned worker pool (the arena layer's open-handle accounting);
* interpreter-exit interplay → arena cleanup tears the worker pool down
  before unlinking segments, regardless of atexit registration order.

The worker kill is deterministic: the victim is the pool process executing
the poisoned item, which SIGKILLs itself — no racing an external kill against
scheduler timing.
"""

from __future__ import annotations

import os
import signal
import socket
import threading

import pytest

from repro.parallel import shm
from repro.parallel.runner import (
    WorkerPoolError,
    parallel_map,
    shutdown_worker_pool,
    worker_pool_size,
)
from repro.serve import ReproServer, ServeClient, ServeError, ServeTimeout

SCALE = 0.02


def _suicide_on_zero(item: int) -> int:
    """Pool-worker payload: the item-0 worker SIGKILLs itself mid-task."""
    if item == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return item * 10


def _well_behaved(item: int) -> int:
    return item + 1


# ----------------------------------------------------------------------
# dead-worker detection in the shared pool
# ----------------------------------------------------------------------
class TestDeadPoolWorker:
    # max_retries=0: these tests pin the *raise* path — retrying a payload
    # that unconditionally SIGKILLs its worker would only repeat the drain.
    def test_killed_worker_raises_instead_of_hanging(self):
        with pytest.raises(WorkerPoolError, match="died"):
            parallel_map(
                _suicide_on_zero, [(i,) for i in range(4)], backend="process", max_retries=0
            )
        # The broken pool was torn down, not left half-dead.
        assert worker_pool_size() == 0

    def test_pool_respawns_after_failure(self):
        with pytest.raises(WorkerPoolError):
            parallel_map(
                _suicide_on_zero, [(i,) for i in range(4)], backend="process", max_retries=0
            )
        # The next call builds a fresh pool and works normally.
        assert parallel_map(_well_behaved, [(i,) for i in range(6)], backend="process") == [
            1, 2, 3, 4, 5, 6,
        ]
        shutdown_worker_pool()


# ----------------------------------------------------------------------
# the daemon survives a killed pool worker
# ----------------------------------------------------------------------
def _faulty_op(params: dict) -> dict:
    """Test-only server op: fans a poisoned map over the process pool."""
    values = parallel_map(
        _suicide_on_zero, [(i,) for i in range(4)], backend="process", max_retries=0
    )
    return {"values": values}


class TestDaemonSurvivesWorkerDeath:
    def test_failed_request_errors_but_daemon_keeps_serving(self):
        with ReproServer(
            default_scale=SCALE, workers=2, extra_handlers={"faulty": _faulty_op}
        ) as srv:
            with ServeClient(port=srv.port, timeout=600.0) as client:
                response = client.request("faulty")
                assert response["ok"] is False
                assert response["error"]["code"] == "internal"
                assert "WorkerPoolError" in response["error"]["message"]
                # Same connection, next request: the daemon is unharmed.
                after = client.request("filter", dataset="CRE", seed=5)
                assert after["ok"] is True
            # A fresh connection works too, and the pool slot is clean.
            with ServeClient(port=srv.port, timeout=600.0) as client:
                assert client.ping()["status"] == "ok"


# ----------------------------------------------------------------------
# client-side timeout against a stalled peer
# ----------------------------------------------------------------------
class TestClientTimeout:
    def test_stalled_socket_times_out_instead_of_hanging(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        held: list[socket.socket] = []
        accepted = threading.Event()

        def hold_open() -> None:
            conn, _ = listener.accept()
            held.append(conn)
            accepted.set()
            # Never read, never respond: a stalled daemon.

        acceptor = threading.Thread(target=hold_open, daemon=True)
        acceptor.start()
        try:
            client = ServeClient(port=port, timeout=0.5)
            assert accepted.wait(30)
            with pytest.raises(ServeTimeout):
                client.request("ping")
            client.close()
        finally:
            for conn in held:
                conn.close()
            listener.close()

    def test_daemon_closing_connection_is_an_error_not_a_hang(self):
        srv = ReproServer(default_scale=SCALE, workers=1)
        srv.start()
        client = ServeClient(port=srv.port, timeout=60.0)
        assert client.ping()["status"] == "ok"
        srv.stop()  # drains, then closes the client's connection
        with pytest.raises((ServeError, OSError)):
            client.request("ping")
        client.close()


# ----------------------------------------------------------------------
# start/stop cycles leak nothing
# ----------------------------------------------------------------------
class TestServeCycleLeaks:
    def test_repeated_start_stop_cycles_leak_no_segments(self):
        baseline_segments = shm.open_segment_count()
        baseline_handles = shm.attached_handle_count()
        for cycle in range(3):
            with ReproServer(default_scale=SCALE, workers=2) as srv:
                with ServeClient(port=srv.port, timeout=600.0) as client:
                    params = {"dataset": "CRE", "partitions": 2, "seed": 700 + cycle}
                    if cycle == 1:
                        # One cycle exercises the shared-memory path for real:
                        # the filter exports its graph into the server's arena.
                        params["backend"] = "process-shm"
                    assert client.result("filter", **params)["edges_kept"] > 0
            assert shm.open_segment_count() == baseline_segments, f"cycle {cycle} leaked"
            assert worker_pool_size() == 0
        assert shm.attached_handle_count() == baseline_handles

    def test_arena_cleanup_shuts_worker_pool_first(self):
        # The atexit interplay, invoked directly: _cleanup_all_arenas must be
        # able to run before the runner's own atexit hook without stranding
        # pool workers attached to segments it is about to unlink.
        parallel_map(_well_behaved, [(1,)], backend="process")
        assert worker_pool_size() > 0
        arena = shm.SharedArena()
        try:
            shm._cleanup_all_arenas()
            assert worker_pool_size() == 0  # pool down first...
            assert arena._unlinked  # ...then the arena
        finally:
            arena.unlink()
