"""Unit tests for BFS/DFS traversal, components and shortest paths."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    bfs_levels,
    bfs_order,
    bfs_tree_edges,
    connected_components,
    dfs_order,
    is_connected,
    path_graph,
    pseudo_peripheral_vertex,
    shortest_path,
    shortest_path_lengths,
    star_graph,
)
from repro.graph.traversal import component_of, eccentricity, induced_neighborhood


class TestBFS:
    def test_bfs_order_path(self):
        g = path_graph(5)
        assert bfs_order(g, "v0") == ["v0", "v1", "v2", "v3", "v4"]

    def test_bfs_order_from_middle(self):
        g = path_graph(5)
        order = bfs_order(g, "v2")
        assert order[0] == "v2"
        assert set(order) == {f"v{i}" for i in range(5)}

    def test_bfs_unknown_source_raises(self):
        with pytest.raises(KeyError):
            bfs_order(path_graph(3), "nope")

    def test_bfs_levels_star(self):
        g = star_graph(4)
        levels = bfs_levels(g, "v0")
        assert levels[0] == ["v0"]
        assert set(levels[1]) == {"v1", "v2", "v3", "v4"}

    def test_bfs_levels_distances_match_shortest_paths(self):
        g = path_graph(6)
        levels = bfs_levels(g, "v0")
        dist = shortest_path_lengths(g, "v0")
        for d, level in enumerate(levels):
            for v in level:
                assert dist[v] == d

    def test_bfs_tree_edges_count(self):
        g = path_graph(5)
        edges = bfs_tree_edges(g, "v0")
        assert len(edges) == 4
        assert all(parent != child for parent, child in edges)


class TestDFS:
    def test_dfs_covers_component(self):
        g = path_graph(5)
        assert set(dfs_order(g, "v0")) == {f"v{i}" for i in range(5)}

    def test_dfs_goes_deep_first(self):
        g = Graph(edges=[("r", "a"), ("r", "b"), ("a", "x")])
        order = dfs_order(g, "r")
        assert order.index("x") < order.index("b")

    def test_dfs_unknown_source_raises(self):
        with pytest.raises(KeyError):
            dfs_order(Graph(), "missing")


class TestComponents:
    def test_single_component(self):
        g = path_graph(4)
        comps = connected_components(g)
        assert len(comps) == 1
        assert is_connected(g)

    def test_multiple_components(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        g.add_vertex("lonely")
        comps = connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 2, 2]
        assert not is_connected(g)

    def test_component_of(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        assert component_of(g, "a") == {"a", "b"}

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph())


class TestShortestPaths:
    def test_lengths_on_path(self):
        g = path_graph(5)
        dist = shortest_path_lengths(g, "v0")
        assert dist["v4"] == 4

    def test_shortest_path_endpoints(self):
        g = path_graph(5)
        sp = shortest_path(g, "v0", "v4")
        assert sp == ["v0", "v1", "v2", "v3", "v4"]

    def test_shortest_path_same_vertex(self):
        g = path_graph(3)
        assert shortest_path(g, "v1", "v1") == ["v1"]

    def test_shortest_path_disconnected_returns_none(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        assert shortest_path(g, "a", "c") is None

    def test_shortest_path_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            shortest_path(path_graph(3), "v0", "nope")

    def test_shortest_path_prefers_short_route(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        assert shortest_path(g, "a", "c") == ["a", "c"]


class TestPeripheral:
    def test_eccentricity_path(self):
        g = path_graph(5)
        assert eccentricity(g, "v0") == 4
        assert eccentricity(g, "v2") == 2

    def test_pseudo_peripheral_on_path_is_an_endpoint(self):
        g = path_graph(7)
        v = pseudo_peripheral_vertex(g)
        assert v in ("v0", "v6")

    def test_pseudo_peripheral_empty_graph_raises(self):
        with pytest.raises(ValueError):
            pseudo_peripheral_vertex(Graph())

    def test_pseudo_peripheral_unknown_start_raises(self):
        with pytest.raises(KeyError):
            pseudo_peripheral_vertex(path_graph(3), "zzz")


class TestInducedNeighborhood:
    def test_expands_by_one_hop(self):
        g = path_graph(5)
        sub = induced_neighborhood(g, ["v2"])
        assert set(sub.vertices()) == {"v1", "v2", "v3"}

    def test_ignores_unknown_vertices(self):
        g = path_graph(3)
        sub = induced_neighborhood(g, ["v0", "ghost"])
        assert "ghost" not in sub.vertices()
