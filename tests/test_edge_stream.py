"""Chunked out-of-core CSR construction (`CSRGraph.from_edge_stream`).

The streaming build must be *bit-identical* to the in-RAM
:meth:`CSRGraph.from_edge_arrays` whatever the chunking, reject the same
malformed inputs, support memory-mapped output buffers for graphs larger
than RAM, and actually bound its peak allocation below the in-RAM path's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_chord_edge_stream


def _random_edges(n: int, m: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """``m`` distinct undirected non-loop edges on ``n`` vertices."""
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, int]] = set()
    while len(seen) < m:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v:
            continue
        seen.add((min(u, v), max(u, v)))
    us, vs = zip(*sorted(seen))
    return np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)


def _chunked(us: np.ndarray, vs: np.ndarray, size: int):
    def chunks():
        for start in range(0, us.size, size):
            yield us[start : start + size], vs[start : start + size]

    return chunks


class TestEquivalence:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 50, 10_000])
    def test_matches_from_edge_arrays(self, chunk):
        n, m = 60, 140
        us, vs = _random_edges(n, m, seed=5)
        ram = CSRGraph.from_edge_arrays(range(n), us, vs)
        streamed = CSRGraph.from_edge_stream(n, _chunked(us, vs, chunk))
        assert np.array_equal(streamed.indptr, ram.indptr)
        assert np.array_equal(streamed.indices, ram.indices)
        assert streamed.labels == ram.labels

    def test_accepts_label_sequence(self):
        us = np.array([0, 1], dtype=np.int64)
        vs = np.array([1, 2], dtype=np.int64)
        g = CSRGraph.from_edge_stream(["a", "b", "c"], _chunked(us, vs, 1))
        assert g.labels == ("a", "b", "c")
        assert g.n_edges == 2

    def test_accepts_list_of_chunks(self):
        # A re-iterable sequence works as well as a callable.
        chunks = [
            (np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)),
            (np.array([1], dtype=np.int64), np.array([2], dtype=np.int64)),
        ]
        g = CSRGraph.from_edge_stream(3, chunks)
        assert g.n_edges == 2

    def test_ring_chord_deterministic_across_chunk_sizes(self):
        n = 600
        a = CSRGraph.from_edge_stream(n, ring_chord_edge_stream(n, seed=3, chunk=64))
        b = CSRGraph.from_edge_stream(n, ring_chord_edge_stream(n, seed=3, chunk=4096))
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        # Ring + one chord per vertex: exactly 2n edges, average degree 4.
        assert a.n_edges == 2 * n

    def test_ring_chord_seed_changes_graph(self):
        n = 200
        a = CSRGraph.from_edge_stream(n, ring_chord_edge_stream(n, seed=0))
        b = CSRGraph.from_edge_stream(n, ring_chord_edge_stream(n, seed=1))
        assert not np.array_equal(a.indices, b.indices)

    def test_ring_chord_needs_five_vertices(self):
        with pytest.raises(ValueError):
            ring_chord_edge_stream(4)


class TestValidation:
    def test_self_loop_rejected(self):
        us = np.array([0, 1], dtype=np.int64)
        vs = np.array([0, 2], dtype=np.int64)
        with pytest.raises(ValueError, match="self loop"):
            CSRGraph.from_edge_stream(3, _chunked(us, vs, 10))

    def test_out_of_range_rejected(self):
        us = np.array([0], dtype=np.int64)
        vs = np.array([5], dtype=np.int64)
        with pytest.raises(ValueError):
            CSRGraph.from_edge_stream(3, _chunked(us, vs, 10))

    def test_duplicate_within_chunk_rejected(self):
        us = np.array([0, 1, 0], dtype=np.int64)
        vs = np.array([1, 2, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="duplicate"):
            CSRGraph.from_edge_stream(3, _chunked(us, vs, 10))

    def test_duplicate_across_chunks_rejected(self):
        us = np.array([0, 1, 1], dtype=np.int64)
        vs = np.array([1, 2, 0], dtype=np.int64)
        with pytest.raises(ValueError, match="duplicate"):
            CSRGraph.from_edge_stream(3, _chunked(us, vs, 2))

    def test_one_shot_generator_rejected(self):
        us = np.array([0], dtype=np.int64)
        vs = np.array([1], dtype=np.int64)
        gen = iter([(us, vs)])  # exhausted after pass 1
        with pytest.raises(ValueError, match="one-shot"):
            CSRGraph.from_edge_stream(2, gen)

    def test_empty_stream(self):
        g = CSRGraph.from_edge_stream(4, lambda: iter(()))
        assert g.n_vertices == 4
        assert g.n_edges == 0
        assert np.array_equal(g.indptr, np.zeros(5, dtype=np.int64))

    def test_empty_stream_with_out(self, tmp_path):
        # mmap cannot back a zero-length file: out= must degrade to the
        # in-memory buffer instead of crashing on an empty stream.
        out = str(tmp_path / "indices.bin")
        g = CSRGraph.from_edge_stream(4, lambda: iter(()), out=out)
        assert g.n_vertices == 4
        assert g.n_edges == 0
        assert np.array_equal(g.indptr, np.zeros(5, dtype=np.int64))


class TestOutOfCore:
    def test_memmap_out_matches_in_ram(self, tmp_path):
        n, m = 40, 90
        us, vs = _random_edges(n, m, seed=9)
        ram = CSRGraph.from_edge_arrays(range(n), us, vs)
        out = str(tmp_path / "indices.bin")
        streamed = CSRGraph.from_edge_stream(n, _chunked(us, vs, 13), out=out)
        # The adjacency buffer is a zero-copy view over the mapped file
        # (from_buffers strips the memmap subclass but keeps its buffer).
        assert not streamed.indices.flags.owndata
        assert np.array_equal(np.asarray(streamed.indices), ram.indices)
        # The file holds the flushed adjacency, re-openable independently.
        reread = np.fromfile(out, dtype=np.int64)
        assert np.array_equal(reread, ram.indices)

    def test_peak_allocation_below_in_ram_build(self):
        # The streaming point: peak temporary memory scales with the chunk,
        # not the edge count.  Measured comparatively (same interpreter,
        # same labels) so the assertion is hardware- and version-stable.
        import tracemalloc

        n = 60_000
        stream = ring_chord_edge_stream(n, seed=2, chunk=4096)
        us_parts, vs_parts = [], []
        for cu, cv in stream():
            us_parts.append(cu)
            vs_parts.append(cv)
        us, vs = np.concatenate(us_parts), np.concatenate(vs_parts)

        tracemalloc.start()
        ram = CSRGraph.from_edge_arrays(range(n), us, vs)
        _, ram_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del us, vs, us_parts, vs_parts

        tracemalloc.start()
        streamed = CSRGraph.from_edge_stream(n, stream)
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert np.array_equal(streamed.indices, ram.indices)
        assert stream_peak < ram_peak, (
            f"streaming build peaked at {stream_peak} bytes, "
            f"in-RAM build at {ram_peak} bytes"
        )
