"""Unit tests for the graph partitioners used by the parallel samplers."""

from __future__ import annotations

import pytest

from repro.graph import (
    PARTITIONERS,
    Graph,
    bfs_partition,
    block_partition,
    erdos_renyi_graph,
    get_partitioner,
    greedy_edge_cut_partition,
    hash_partition,
    partition_graph,
    path_graph,
    planted_partition_graph,
)


@pytest.fixture
def medium_graph() -> Graph:
    return erdos_renyi_graph(40, 0.12, seed=3)


ALL_METHODS = sorted(PARTITIONERS)


class TestPartitionInvariants:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("n_parts", [1, 2, 3, 5, 8])
    def test_partition_validates(self, medium_graph, method, n_parts):
        part = partition_graph(medium_graph, n_parts, method=method)
        part.validate()
        assert part.n_parts == n_parts

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_edge_accounting(self, medium_graph, method):
        part = partition_graph(medium_graph, 4, method=method)
        internal = sum(len(e) for e in part.internal_edges)
        assert internal + len(part.border_edges) == medium_graph.n_edges

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_partition_has_no_border_edges(self, medium_graph, method):
        part = partition_graph(medium_graph, 1, method=method)
        assert part.border_edges == []
        assert len(part.parts[0]) == medium_graph.n_vertices

    def test_invalid_n_parts_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            block_partition(medium_graph, 0)


class TestBlockPartition:
    def test_balanced_sizes(self):
        g = path_graph(10)
        part = block_partition(g, 3)
        sizes = sorted(len(p) for p in part.parts)
        assert sizes == [3, 3, 4]

    def test_respects_explicit_order(self):
        g = path_graph(6)
        order = list(reversed(g.vertices()))
        part = block_partition(g, 2, order=order)
        assert part.parts[0] == order[:3]

    def test_path_block_partition_cut(self):
        # Cutting a path into contiguous blocks cuts exactly n_parts - 1 edges.
        g = path_graph(20)
        part = block_partition(g, 4)
        assert part.edge_cut() == 3

    def test_rejects_bad_order(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            block_partition(g, 2, order=["v0", "v1"])


class TestHashPartition:
    def test_deterministic(self, medium_graph):
        a = hash_partition(medium_graph, 4)
        b = hash_partition(medium_graph, 4)
        assert a.assignment == b.assignment

    def test_salt_changes_assignment(self, medium_graph):
        a = hash_partition(medium_graph, 4, salt=0)
        b = hash_partition(medium_graph, 4, salt=99)
        assert a.assignment != b.assignment


class TestBfsPartition:
    def test_fewer_border_edges_than_hash_on_modular_graph(self):
        g = planted_partition_graph([20, 20, 20], p_in=0.5, p_out=0.01, seed=5)
        bfs_cut = bfs_partition(g, 3).edge_cut()
        hash_cut = hash_partition(g, 3).edge_cut()
        assert bfs_cut <= hash_cut

    def test_covers_disconnected_graphs(self):
        g = Graph(edges=[("a", "b"), ("c", "d"), ("e", "f")])
        part = bfs_partition(g, 3)
        part.validate()


class TestGreedyPartition:
    def test_respects_imbalance_cap(self, medium_graph):
        part = greedy_edge_cut_partition(medium_graph, 4, imbalance=1.1)
        assert part.balance() <= 1.3  # cap is ceil-based, allow slack for rounding

    def test_rejects_bad_imbalance(self, medium_graph):
        with pytest.raises(ValueError):
            greedy_edge_cut_partition(medium_graph, 4, imbalance=0.5)

    def test_better_cut_than_hash_on_modular_graph(self):
        g = planted_partition_graph([25, 25, 25], p_in=0.4, p_out=0.01, seed=2)
        greedy_cut = greedy_edge_cut_partition(g, 3).edge_cut()
        hash_cut = hash_partition(g, 3).edge_cut()
        assert greedy_cut <= hash_cut


class TestPartitionHelpers:
    def test_part_subgraph_contains_only_internal_edges(self, medium_graph):
        part = partition_graph(medium_graph, 4, method="block")
        for idx in range(part.n_parts):
            sub = part.part_subgraph(idx)
            for u, v in sub.iter_edges():
                assert part.part_of(u) == idx
                assert part.part_of(v) == idx

    def test_border_edges_of(self, medium_graph):
        part = partition_graph(medium_graph, 4, method="hash")
        for idx in range(part.n_parts):
            for u, v in part.border_edges_of(idx):
                assert idx in (part.part_of(u), part.part_of(v))

    def test_get_partitioner_unknown(self):
        with pytest.raises(KeyError):
            get_partitioner("metis")

    def test_balance_of_even_split(self):
        g = path_graph(8)
        assert block_partition(g, 4).balance() == pytest.approx(1.0)
