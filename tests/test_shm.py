"""Unit tests for the shared-memory arena (`repro.parallel.shm`).

Covers the satellite edge cases of the zero-copy execution runtime: empty
arrays and zero-edge graphs, export dedup, bundle offsets, double
close/unlink safety, attach-after-unlink errors, payload resolution, the
ambient arena scope, and the zero-copy ``CSRGraph`` buffer round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.parallel.shm import (
    ArenaError,
    ArenaRef,
    SharedArena,
    arena_scope,
    attach,
    export_payload,
    get_active_arena,
    resolve_payload,
)


class TestExportAttach:
    def test_round_trip_values_and_read_only(self):
        arena = SharedArena()
        try:
            src = np.arange(100, dtype=np.int64)
            ref = arena.export(src)
            view = attach(ref)
            assert np.array_equal(view, src)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 1
        finally:
            arena.unlink()

    def test_dtype_and_shape_preserved(self):
        arena = SharedArena()
        try:
            src = np.linspace(0.0, 1.0, 12, dtype=np.float64).reshape(3, 4)
            view = attach(arena.export(src))
            assert view.dtype == src.dtype
            assert view.shape == (3, 4)
            assert np.array_equal(view, src)
        finally:
            arena.unlink()

    def test_empty_array_has_no_segment(self):
        arena = SharedArena()
        try:
            ref = arena.export(np.empty(0, dtype=np.int64))
            assert ref.name is None
            assert arena.n_segments == 0
            view = attach(ref)
            assert view.shape == (0,)
            assert view.dtype == np.int64
            assert not view.flags.writeable
        finally:
            arena.unlink()

    def test_export_dedup_by_identity(self):
        arena = SharedArena()
        try:
            src = np.arange(10)
            assert arena.export(src) is arena.export(src)
            assert arena.n_segments == 1
            # Without content dedup, an equal but distinct array is a
            # distinct export (a private per-call arena never re-sees data).
            other = arena.export(np.arange(10))
            assert other.name != arena.export(src).name
            assert arena.n_segments == 2
        finally:
            arena.unlink()

    def test_export_dedup_by_content(self):
        arena = SharedArena(content_dedup=True)
        try:
            src = np.arange(10)
            first = arena.export(src)
            # An equal-content array reuses the existing segment (a batch
            # scale-group rebuilds identical CSR buffers run after run; the
            # group arena must not pin one copy per run).
            other = arena.export(np.arange(10))
            assert other == first
            assert arena.n_segments == 1
            bundle = arena.export_bundle({"a": np.arange(10), "b": np.arange(11)})
            assert bundle["a"] == first
            assert np.array_equal(attach(bundle["b"]), np.arange(11))
            # Different content is a distinct segment.
            third = arena.export(np.arange(12))
            assert third.name != first.name
        finally:
            arena.unlink()

    def test_export_rejects_non_arrays(self):
        arena = SharedArena()
        try:
            with pytest.raises(TypeError):
                arena.export([1, 2, 3])
        finally:
            arena.unlink()

    def test_export_many_passes_none_through(self):
        arena = SharedArena()
        try:
            refs = arena.export_many({"a": np.arange(3), "b": None})
            assert refs["b"] is None
            assert np.array_equal(attach(refs["a"]), np.arange(3))
        finally:
            arena.unlink()


class TestExportBundle:
    def test_bundle_shares_one_segment(self):
        arena = SharedArena()
        try:
            arrays = {
                "x": np.arange(7, dtype=np.int64),
                "y": np.arange(5, dtype=np.float64),
                "z": None,
                "w": np.empty(0, dtype=np.int64),
            }
            refs = arena.export_bundle(arrays)
            assert refs["z"] is None
            assert refs["w"].name is None
            assert refs["x"].name == refs["y"].name
            assert arena.n_segments == 1
            assert np.array_equal(attach(refs["x"]), arrays["x"])
            assert np.array_equal(attach(refs["y"]), arrays["y"])
            # Offsets are dtype-aligned.
            assert refs["x"].offset % 16 == 0
            assert refs["y"].offset % 16 == 0
        finally:
            arena.unlink()

    def test_bundle_reuses_cached_refs_and_dedups_within_call(self):
        arena = SharedArena()
        try:
            shared = np.arange(9, dtype=np.int64)
            first = arena.export(shared)
            refs = arena.export_bundle({"a": shared, "b": np.arange(4), "c": shared})
            assert refs["a"] is first
            assert refs["c"] is first
            assert arena.n_segments == 2  # the original export + one bundle
        finally:
            arena.unlink()


class TestLifecycle:
    def test_double_close_and_double_unlink_are_safe(self):
        arena = SharedArena()
        arena.export(np.arange(4))
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()

    def test_attach_after_unlink_raises(self):
        arena = SharedArena()
        ref = arena.export(np.arange(16))
        assert np.array_equal(attach(ref), np.arange(16))
        arena.unlink()
        with pytest.raises(FileNotFoundError):
            attach(ref)

    def test_export_after_unlink_raises(self):
        arena = SharedArena()
        arena.unlink()
        with pytest.raises(ArenaError):
            arena.export(np.arange(3))
        with pytest.raises(ArenaError):
            arena.export_bundle({"a": np.arange(3)})

    def test_context_manager_unlinks(self):
        with SharedArena() as arena:
            ref = arena.export(np.arange(8))
        with pytest.raises(FileNotFoundError):
            attach(ref)

    def test_total_bytes_counts_segments(self):
        arena = SharedArena()
        try:
            arena.export(np.arange(10, dtype=np.int64))
            assert arena.total_bytes >= 80
        finally:
            arena.unlink()


class TestPayloads:
    def test_resolve_payload_preserves_structure(self):
        arena = SharedArena()
        try:
            ref = arena.export(np.arange(5))
            payload = {"a": (ref, 3), "b": [ref, "x"], "c": None}
            out = resolve_payload(payload)
            assert isinstance(out["a"], tuple)
            assert np.array_equal(out["a"][0], np.arange(5))
            assert out["a"][1] == 3
            assert np.array_equal(out["b"][0], np.arange(5))
            assert out["b"][1] == "x"
            assert out["c"] is None
        finally:
            arena.unlink()

    def test_export_payload_is_inverse_of_resolve(self):
        arena = SharedArena()
        try:
            payload = ((np.arange(6), "tag"), {"k": np.ones(3)})
            exported = export_payload(payload, arena)
            assert isinstance(exported[0][0], ArenaRef)
            assert isinstance(exported[1]["k"], ArenaRef)
            resolved = resolve_payload(exported)
            assert np.array_equal(resolved[0][0], np.arange(6))
            assert resolved[0][1] == "tag"
            assert np.array_equal(resolved[1]["k"], np.ones(3))
        finally:
            arena.unlink()


class TestArenaScope:
    def test_scope_sets_and_restores_ambient_arena(self):
        assert get_active_arena() is None
        with arena_scope() as outer:
            assert get_active_arena() is outer
            with arena_scope() as inner:
                assert get_active_arena() is inner
            assert get_active_arena() is outer
        assert get_active_arena() is None

    def test_created_scope_unlinks_on_exit(self):
        with arena_scope() as arena:
            ref = arena.export(np.arange(4))
        with pytest.raises(FileNotFoundError):
            attach(ref)

    def test_caller_supplied_arena_stays_alive(self):
        arena = SharedArena()
        try:
            with arena_scope(arena):
                ref = arena.export(np.arange(4))
            assert np.array_equal(attach(ref), np.arange(4))
        finally:
            arena.unlink()


class TestCSRBuffers:
    def test_export_buffers_are_the_graph_arrays(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        csr = CSRGraph.from_graph(g)
        indptr, indices = csr.export_buffers()
        assert indptr is csr.indptr
        assert indices is csr.indices

    def test_from_buffers_is_zero_copy_and_equal(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")])
        csr = CSRGraph.from_graph(g)
        rebuilt = CSRGraph.from_buffers(*csr.export_buffers())
        assert np.shares_memory(rebuilt.indptr, csr.indptr)
        assert np.shares_memory(rebuilt.indices, csr.indices)
        assert np.array_equal(rebuilt.indptr, csr.indptr)
        assert np.array_equal(rebuilt.indices, csr.indices)
        assert rebuilt.labels == tuple(range(csr.n_vertices))
        assert not rebuilt.indptr.flags.writeable

    def test_from_buffers_explicit_labels(self):
        g = Graph(edges=[("x", "y")])
        csr = CSRGraph.from_graph(g)
        rebuilt = CSRGraph.from_buffers(*csr.export_buffers(), labels=csr.labels)
        assert rebuilt == csr

    def test_from_buffers_rejects_inconsistent_buffers(self):
        with pytest.raises(ValueError):
            CSRGraph.from_buffers(
                np.asarray([1, 2], dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        with pytest.raises(ValueError):
            CSRGraph.from_buffers(
                np.asarray([0, 3], dtype=np.int64), np.zeros(1, dtype=np.int64)
            )
        with pytest.raises(ValueError):
            CSRGraph.from_buffers(
                np.asarray([0, 1, 1], dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                labels=("only-one-label",),
            )

    def test_zero_edge_graph_round_trips_through_arena(self):
        csr = CSRGraph.from_graph(Graph(vertices=["a", "b", "c"]))
        arena = SharedArena()
        try:
            refs = arena.export_csr(csr)
            assert refs["indices"].name is None  # zero edges -> empty buffer
            rebuilt = CSRGraph.from_buffers(
                attach(refs["indptr"]), attach(refs["indices"])
            )
            assert rebuilt.n_vertices == 3
            assert rebuilt.n_edges == 0
        finally:
            arena.unlink()

    def test_empty_graph_round_trip(self):
        csr = CSRGraph.from_graph(Graph())
        rebuilt = CSRGraph.from_buffers(*csr.export_buffers())
        assert rebuilt.n_vertices == 0
        assert rebuilt.n_edges == 0
