"""Unit tests for the structural metric helpers."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphSummary,
    compare_summaries,
    complete_graph,
    component_size_distribution,
    degree_histogram,
    degree_statistics,
    edge_retention,
    path_graph,
    star_graph,
    summarize_graph,
    vertex_coverage,
)
from repro.graph.metrics import average_path_length_sampled


class TestDegreeMetrics:
    def test_degree_histogram_star(self):
        hist = degree_histogram(star_graph(5))
        assert hist == {5: 1, 1: 5}

    def test_degree_statistics(self):
        stats = degree_statistics(complete_graph(4))
        assert stats["mean"] == pytest.approx(3.0)
        assert stats["max"] == 3
        assert stats["variance"] == pytest.approx(0.0)

    def test_empty_graph_statistics(self):
        stats = degree_statistics(Graph())
        assert stats["mean"] == 0.0


class TestComponentsAndRetention:
    def test_component_size_distribution(self):
        g = Graph(edges=[("a", "b"), ("c", "d"), ("d", "e")])
        assert component_size_distribution(g) == [3, 2]

    def test_edge_retention(self):
        original = complete_graph(4)
        sampled = original.spanning_subgraph(list(original.iter_edges())[:3])
        assert edge_retention(original, sampled) == pytest.approx(0.5)

    def test_edge_retention_empty_original(self):
        assert edge_retention(Graph(), Graph()) == 1.0

    def test_vertex_coverage(self):
        original = path_graph(4)
        sampled = original.spanning_subgraph([("v0", "v1")])
        assert vertex_coverage(original, sampled) == pytest.approx(0.5)

    def test_average_path_length_path_graph(self):
        g = path_graph(5)
        apl = average_path_length_sampled(g, n_sources=5, seed=0)
        assert apl > 0
        assert apl < 4

    def test_average_path_length_tiny_graph(self):
        assert average_path_length_sampled(Graph()) == 0.0


class TestSummaries:
    def test_summary_fields(self):
        summary = summarize_graph(complete_graph(5))
        assert isinstance(summary, GraphSummary)
        assert summary.n_vertices == 5
        assert summary.n_edges == 10
        assert summary.n_triangles == 10
        assert summary.avg_clustering == pytest.approx(1.0)
        assert summary.n_components == 1

    def test_summary_as_dict_roundtrip(self):
        summary = summarize_graph(path_graph(4))
        d = summary.as_dict()
        assert d["n_edges"] == 3
        assert d["n_triangles"] == 0

    def test_compare_summaries_ratios(self):
        original = summarize_graph(complete_graph(4))
        sampled = summarize_graph(path_graph(4))
        ratios = compare_summaries(original, sampled)
        assert ratios["n_vertices"] == pytest.approx(1.0)
        assert ratios["n_edges"] == pytest.approx(0.5)

    def test_compare_summaries_handles_zero_original(self):
        a = summarize_graph(path_graph(3))  # no triangles
        b = summarize_graph(complete_graph(3))
        ratios = compare_summaries(a, b)
        assert ratios["n_triangles"] == float("inf")
        same = compare_summaries(a, a)
        assert same["n_triangles"] == 1.0
