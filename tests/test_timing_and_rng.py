"""Unit tests for the cost model and the per-rank RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (
    CostModel,
    RankWork,
    derive_seed,
    efficiency,
    rank_rng,
    rank_rngs,
    simulate_execution_time,
    speedup,
)


class TestCostModel:
    def test_zero_work_costs_startup_only(self):
        model = CostModel()
        assert model.execution_time([]) == pytest.approx(model.startup)

    def test_execution_time_is_max_over_ranks(self):
        model = CostModel()
        light = RankWork(edges_examined=10)
        heavy = RankWork(edges_examined=10_000)
        t_pair = model.execution_time([light, heavy])
        t_heavy = model.execution_time([heavy])
        assert t_pair == pytest.approx(t_heavy)

    def test_communication_adds_cost(self):
        model = CostModel()
        work = RankWork(edges_examined=100, border_edges=50, messages=3, items_sent=50, max_degree=5)
        assert model.rank_time(work, with_communication=True) > model.rank_time(work, with_communication=False)

    def test_border_quadratic_term(self):
        model = CostModel()
        small_b = RankWork(border_edges=10, max_degree=5)
        large_b = RankWork(border_edges=100, max_degree=5)
        ratio = model.rank_time(large_b, True) / max(model.rank_time(small_b, True), 1e-12)
        assert ratio > 50  # quadratic growth dominates the 10x border increase

    def test_duplicate_postprocess_charged(self):
        model = CostModel()
        base = model.execution_time([RankWork(edges_examined=10)], duplicate_border_edges=0)
        with_dups = model.execution_time([RankWork(edges_examined=10)], duplicate_border_edges=1000)
        assert with_dups > base

    def test_simulate_execution_time_wrapper(self):
        t = simulate_execution_time([RankWork(edges_examined=100)])
        assert t > 0


class TestSpeedup:
    def test_speedup_and_efficiency(self):
        times = {1: 8.0, 2: 4.0, 4: 2.0}
        s = speedup(times)
        assert s[4] == pytest.approx(4.0)
        e = efficiency(times)
        assert e[2] == pytest.approx(1.0)

    def test_speedup_requires_single_processor_baseline(self):
        with pytest.raises(ValueError):
            speedup({2: 1.0})

    def test_zero_time_gives_infinite_speedup(self):
        assert speedup({1: 1.0, 2: 0.0})[2] == float("inf")


class TestRankRng:
    def test_streams_are_reproducible(self):
        a = rank_rngs(42, 4)
        b = rank_rngs(42, 4)
        for ra, rb in zip(a, b):
            assert np.allclose(ra.random(5), rb.random(5))

    def test_streams_are_independent(self):
        rngs = rank_rngs(7, 3)
        draws = [r.random(8).tolist() for r in rngs]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_rank_rng_matches_rank_rngs(self):
        direct = rank_rng(9, 2, 4).random(4)
        from_list = rank_rngs(9, 4)[2].random(4)
        assert np.allclose(direct, from_list)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rank_rngs(0, 0)
        with pytest.raises(ValueError):
            rank_rng(0, 5, 2)

    def test_derive_seed_deterministic_and_label_sensitive(self):
        assert derive_seed(1, "CRE", "natural") == derive_seed(1, "CRE", "natural")
        assert derive_seed(1, "CRE", "natural") != derive_seed(1, "CRE", "rcm")
