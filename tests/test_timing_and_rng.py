"""Unit tests for the cost model and the per-rank RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (
    CostModel,
    RankWork,
    derive_seed,
    efficiency,
    rank_rng,
    rank_rngs,
    simulate_execution_time,
    speedup,
)


class TestCostModel:
    def test_zero_work_costs_startup_only(self):
        model = CostModel()
        assert model.execution_time([]) == pytest.approx(model.startup)

    def test_execution_time_is_max_over_ranks(self):
        model = CostModel()
        light = RankWork(edges_examined=10)
        heavy = RankWork(edges_examined=10_000)
        t_pair = model.execution_time([light, heavy])
        t_heavy = model.execution_time([heavy])
        assert t_pair == pytest.approx(t_heavy)

    def test_communication_adds_cost(self):
        model = CostModel()
        work = RankWork(edges_examined=100, border_edges=50, messages=3, items_sent=50, max_degree=5)
        assert model.rank_time(work, with_communication=True) > model.rank_time(work, with_communication=False)

    def test_border_quadratic_term(self):
        model = CostModel()
        small_b = RankWork(border_edges=10, max_degree=5)
        large_b = RankWork(border_edges=100, max_degree=5)
        ratio = model.rank_time(large_b, True) / max(model.rank_time(small_b, True), 1e-12)
        assert ratio > 50  # quadratic growth dominates the 10x border increase

    def test_duplicate_postprocess_charged(self):
        model = CostModel()
        base = model.execution_time([RankWork(edges_examined=10)], duplicate_border_edges=0)
        with_dups = model.execution_time([RankWork(edges_examined=10)], duplicate_border_edges=1000)
        assert with_dups > base

    def test_simulate_execution_time_wrapper(self):
        t = simulate_execution_time([RankWork(edges_examined=100)])
        assert t > 0


class TestSpeedup:
    def test_speedup_and_efficiency(self):
        times = {1: 8.0, 2: 4.0, 4: 2.0}
        s = speedup(times)
        assert s[4] == pytest.approx(4.0)
        e = efficiency(times)
        assert e[2] == pytest.approx(1.0)

    def test_speedup_requires_single_processor_baseline(self):
        with pytest.raises(ValueError):
            speedup({2: 1.0})

    def test_zero_time_gives_infinite_speedup(self):
        assert speedup({1: 1.0, 2: 0.0})[2] == float("inf")


class TestRankRng:
    def test_streams_are_reproducible(self):
        a = rank_rngs(42, 4)
        b = rank_rngs(42, 4)
        for ra, rb in zip(a, b):
            assert np.allclose(ra.random(5), rb.random(5))

    def test_streams_are_independent(self):
        rngs = rank_rngs(7, 3)
        draws = [r.random(8).tolist() for r in rngs]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_rank_rng_matches_rank_rngs(self):
        direct = rank_rng(9, 2, 4).random(4)
        from_list = rank_rngs(9, 4)[2].random(4)
        assert np.allclose(direct, from_list)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rank_rngs(0, 0)
        with pytest.raises(ValueError):
            rank_rng(0, 5, 2)

    def test_derive_seed_deterministic_and_label_sensitive(self):
        assert derive_seed(1, "CRE", "natural") == derive_seed(1, "CRE", "natural")
        assert derive_seed(1, "CRE", "natural") != derive_seed(1, "CRE", "rcm")


class TestPinnedStreams:
    """Exact expected values locking the per-rank RNG stream contract.

    The batch engine keys disk caches by seeds from :func:`derive_seed`, and
    the random-walk sampler's ``extra.rng_stream`` contract promises that a
    (seed, rank) pair names one specific stream on every platform and every
    execution backend.  ``SeedSequence`` and CRC32 are specified to be
    platform-independent, so these literals must never change; if one of
    these assertions fails, the stream derivation was altered and every
    cached batch result and pinned random-walk regression is invalid.
    """

    def test_derive_seed_pinned_values(self):
        assert derive_seed(1, "CRE", "natural") == 948365281
        assert derive_seed(1, "CRE", "rcm") == 2105863250
        assert derive_seed(0, "fig10", 0.1, "-") == 2710746459
        assert derive_seed(7, "YNG", 2, "x") == 769117927

    def test_rank_rngs_pinned_streams(self):
        expected = [
            [2136330838, 3937386175, 2497266888],
            [320815255, 2007857611, 783414414],
            [3020187126, 305970046, 3315550404],
            [3863084840, 3281066682, 3959326385],
        ]
        draws = [r.integers(0, 1 << 32, size=3).tolist() for r in rank_rngs(42, 4)]
        assert draws == expected

    def test_rank_rng_pinned_uniforms(self):
        # The exact doubles rank 1 of 2 draws for seed 0 (the random-walk
        # sampler's border stream shape).
        values = rank_rng(0, 1, 2).random(3)
        expected = [0.677196856975102, 0.242986748542821, 0.611763796321812]
        assert np.allclose(values, expected, rtol=0, atol=1e-15)
