#!/usr/bin/env python3
"""Quickstart: filter a gene correlation network with the parallel chordal sampler.

This walks the paper's pipeline end to end on a small synthetic dataset:

1. generate a microarray study (planted co-expression modules + realistic noise),
2. build the Pearson correlation network (p ≤ 0.0005, ρ ≥ 0.95),
3. extract the maximal chordal subgraph with the communication-free parallel
   algorithm (the paper's contribution) and, for contrast, the random-walk
   control filter,
4. cluster both with MCODE and score the clusters' biological relevance with
   the GO edge-enrichment measure (AEES).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import apply_filter, make_study, mcode_clusters
from repro.ontology import EnrichmentScorer, make_study_ontology
from repro.pipeline import format_table


def main() -> None:
    # 1. synthetic microarray study (scale 0.05 ≈ a couple of thousand genes)
    study = make_study("CRE", scale=0.05)
    print(f"study {study.name}: {study.matrix.n_genes} genes × {study.matrix.n_samples} arrays, "
          f"{len(study.modules)} planted co-expression modules")

    # 2. correlation network
    network = study.network()
    print(f"correlation network: {network.n_vertices} vertices, {network.n_edges} edges")

    # 3. sampling filters
    chordal = apply_filter(network, method="chordal", ordering="high_degree", n_partitions=8)
    walk = apply_filter(network, method="random_walk", n_partitions=8, seed=0)
    print()
    print(format_table([chordal.summary(), walk.summary()],
                       columns=["method", "n_partitions", "edges_original", "edges_kept",
                                "edge_reduction", "border_edges", "duplicate_border_edges"],
                       title="Filter results"))

    # 4. clusters + biological relevance
    dag, annotations = make_study_ontology(study)
    scorer = EnrichmentScorer(dag, annotations)

    rows = []
    for label, result in (("chordal", chordal), ("random_walk", walk)):
        clusters = mcode_clusters(result.graph, source=label)
        relevant = [c for c in clusters if scorer.cluster(c.subgraph).aees >= 3.0]
        rows.append(
            {
                "filter": label,
                "clusters": len(clusters),
                "relevant (AEES>=3)": len(relevant),
                "best_aees": max((scorer.cluster(c.subgraph).aees for c in clusters), default=0.0),
            }
        )
    print()
    print(format_table(rows, title="MCODE clusters after filtering"))
    print()
    print("The chordal filter keeps the dense, biologically coherent modules;")
    print("the random-walk control retains too few edges for MCODE to find them (paper H0a).")


if __name__ == "__main__":
    main()
