#!/usr/bin/env python3
"""Ageing-brain study (GSE5078-style): YNG vs MID with differential-expression screening.

The paper's first dataset pair comes from a hippocampus ageing study that was
pre-filtered to roughly a third of the genes — those differentially expressed
between the young (YNG) and middle-aged (MID) mice — before the correlation
networks were built.  The paper observes that this preprocessing *hurts* the
ability to find biologically significant clusters (Figure 4 shows only a few
clusters with meaningful AEES).

This example reproduces that workflow on synthetic data:

1. generate the YNG and MID studies,
2. apply the Welch-t differential-expression screen (top 33% of genes),
3. build the correlation networks before and after screening,
4. filter with the chordal sampler under all four vertex orderings,
5. report the per-network cluster counts and AEES distributions.

Run:  python examples/aging_brain_analysis.py
"""

from __future__ import annotations

from repro import apply_filter, make_study, mcode_clusters
from repro.expression import apply_differential_filter, build_correlation_network
from repro.graph import ordering_names
from repro.ontology import EnrichmentScorer, make_study_ontology
from repro.pipeline import ORDERING_LABELS, format_table

SCALE = 0.08


def main() -> None:
    yng = make_study("YNG", scale=SCALE)
    mid = make_study("MID", scale=SCALE)

    # --- differential-expression screening (the paper's "33% of genes") -------
    # The two synthetic studies have different gene universes, so the screen is
    # demonstrated per study against a permuted copy of itself standing in for
    # the other age group; what matters downstream is the reduced gene set.
    shared_fraction = 0.33
    print("Differential-expression screening (Welch t-test, top 33% by |t|):")
    rows = []
    for study in (yng, mid):
        full_network = study.network()
        cond_a = study.matrix
        cond_b = study.matrix.subset_samples(list(reversed(study.matrix.samples)))
        _, _, kept = apply_differential_filter(cond_a, cond_b, fraction=shared_fraction)
        screened_matrix = study.matrix.subset_genes(kept)
        screened_network = build_correlation_network(screened_matrix, include_all_genes=False)
        rows.append(
            {
                "dataset": study.name,
                "genes_total": study.matrix.n_genes,
                "genes_kept": len(kept),
                "edges_full": full_network.n_edges,
                "edges_screened": screened_network.n_edges,
            }
        )
    print(format_table(rows))
    print()

    # --- chordal filtering under the four orderings ---------------------------
    for study in (yng, mid):
        network = study.network()
        dag, annotations = make_study_ontology(study)
        scorer = EnrichmentScorer(dag, annotations)

        original_clusters = mcode_clusters(network, source=f"{study.name}/original")
        table_rows = [
            {
                "network": "ORIG",
                "clusters": len(original_clusters),
                "relevant": sum(
                    1 for c in original_clusters if scorer.cluster(c.subgraph).aees >= 3.0
                ),
                "edges": network.n_edges,
            }
        ]
        for ordering in ordering_names():
            result = apply_filter(network, method="chordal", ordering=ordering, n_partitions=4)
            clusters = mcode_clusters(result.graph, source=f"{study.name}/{ordering}")
            table_rows.append(
                {
                    "network": ORDERING_LABELS[ordering],
                    "clusters": len(clusters),
                    "relevant": sum(1 for c in clusters if scorer.cluster(c.subgraph).aees >= 3.0),
                    "edges": result.n_edges_kept,
                }
            )
        print(format_table(
            table_rows,
            title=f"{study.name}: clusters per network (original + four chordal orderings)",
        ))
        print()

    print("As in the paper, the pre-filtered ageing datasets yield few biologically")
    print("relevant clusters, and the four orderings agree on which ones they are (H0b).")


if __name__ == "__main__":
    main()
