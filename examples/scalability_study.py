#!/usr/bin/env python3
"""Scalability study (Figure 10 analogue): three samplers, 1–64 simulated processors.

Compares the execution behaviour of

* the chordal sampler **with** border-edge communication (the authors' earlier
  algorithm),
* the communication-free chordal sampler (the paper's contribution), and
* the random-walk control filter

on a small (YNG-like) and a large (CRE-like) network.  Per-rank work is
measured exactly by running the algorithms; wall-clock times are produced by
the distributed-memory cost model (see ``repro.parallel.timing``), which is
how the repository reproduces the *shape* of the paper's Figure 10 without an
MPI cluster.  Speedups and efficiencies are derived from the same series.

Run:  python examples/scalability_study.py
"""

from __future__ import annotations

from repro.parallel import efficiency, speedup
from repro.pipeline import fig10_scalability, format_series

PROCESSORS = (1, 2, 4, 8, 16, 32, 64)
SCALE = 0.08


def main() -> None:
    out = fig10_scalability(scale=SCALE, processor_counts=PROCESSORS)

    for label in ("small", "large"):
        meta = out["meta"][label]
        series = out["series"][label]
        print(format_series(
            series,
            x_label="processors",
            title=(f"{meta['dataset']} ({label} network, |V|={meta['n_vertices']}, "
                   f"|E|={meta['n_edges']}): simulated time [s]"),
        ))
        print()
        print(format_series(
            {name: speedup(values) for name, values in series.items()},
            x_label="processors",
            title=f"{meta['dataset']}: speedup over 1 processor",
        ))
        print()
        print(format_series(
            {name: efficiency(values) for name, values in series.items()},
            x_label="processors",
            title=f"{meta['dataset']}: parallel efficiency",
        ))
        print()

    print("Expected shape (paper, Figure 10): the random walk is fastest and perfectly")
    print("scalable; the communication-free chordal sampler scales almost as well; the")
    print("with-communication variant costs roughly twice as much on the large network at")
    print("low processor counts and loses scalability on the small network as P grows.")


if __name__ == "__main__":
    main()
