#!/usr/bin/env python3
"""Creatine study (GSE5140-style): UNT vs CRE, cluster refinement and new clusters.

The paper's second dataset pair covers the whole transcriptome of untreated
(UNT) and creatine-supplemented (CRE) middle-aged mice.  Its headline
qualitative results on these networks are:

* filtered clusters overlap the original clusters strongly, some with 100%
  node and edge overlap (Figure 5),
* filtering *uncovers* clusters that were hidden by noise in the original
  network ("found" clusters),
* filtering can sharpen a cluster's function: the paper's Figure 9 shows an
  original cluster whose AEES improves by ~2 points after High-Degree chordal
  filtering, revealing an apoptosis-regulation module.

This example reproduces those analyses on the synthetic UNT/CRE studies.

Run:  python examples/creatine_study.py
"""

from __future__ import annotations

from repro.pipeline import analyze_filter, format_table, prepare_dataset

SCALE = 0.06


def main() -> None:
    for name in ("UNT", "CRE"):
        bundle = prepare_dataset(name, scale=SCALE)
        print(f"=== {name}: {bundle.n_vertices} vertices, {bundle.n_edges} edges, "
              f"{len(bundle.original_clusters)} original MCODE clusters ===")

        analysis = analyze_filter(bundle, method="chordal", ordering="high_degree", n_partitions=8)

        # overlap of filtered clusters with the original clusters (Figure 5 style)
        overlap_rows = [
            {
                "filtered_cluster": m.filtered.cluster_id,
                "original_cluster": "-" if m.original is None else m.original.cluster_id,
                "node_overlap": m.node_overlap,
                "edge_overlap": m.edge_overlap,
                "aees": bundle.scorer.cluster(m.filtered.subgraph).aees,
            }
            for m in analysis.matches[:12]
        ]
        print(format_table(overlap_rows, title="Filtered clusters vs original clusters (excerpt)"))
        print(f"newly found clusters: {len(analysis.found)}   lost clusters: {len(analysis.lost)}")
        print()

        # Figure 9-style case study: the match whose enrichment improves the most
        best_gain, best_row = None, None
        for m in analysis.matches:
            if m.original is None:
                continue
            filtered_aees = bundle.scorer.cluster(m.filtered.subgraph).aees
            original_aees = bundle.scorer.cluster(m.original.subgraph).aees
            gain = filtered_aees - original_aees
            if best_gain is None or gain > best_gain:
                best_gain = gain
                best_row = {
                    "original_cluster": m.original.cluster_id,
                    "original_aees": original_aees,
                    "filtered_cluster": m.filtered.cluster_id,
                    "filtered_aees": filtered_aees,
                    "gain": gain,
                    "node_overlap": m.node_overlap,
                    "edge_overlap": m.edge_overlap,
                    "dominant_term": bundle.scorer.cluster(m.filtered.subgraph).dominant_term(),
                }
        if best_row:
            print(format_table([best_row], title="Largest enrichment improvement (Figure 9 analogue)"))
        print()


if __name__ == "__main__":
    main()
