#!/usr/bin/env python3
"""Ordering sensitivity (H0b): how the vertex ordering perturbs the chordal filter.

The maximal chordal subgraph is not unique — the subgraph found by the
Dearing–Shier–Warner construction depends on the order in which vertices are
visited.  The paper studies four orderings (Natural, High-Degree, Low-Degree,
Reverse Cuthill–McKee) and argues that while the filtered edge sets differ,
the biologically relevant clusters do not (hypothesis H0b).

This example quantifies that claim on one synthetic dataset:

* size of the filtered network under each ordering,
* pairwise Jaccard similarity of the kept edge sets,
* number of MCODE clusters and of biologically relevant (AEES ≥ 3) clusters,
* overlap of the relevant clusters across orderings.

Run:  python examples/ordering_sensitivity.py
"""

from __future__ import annotations

from itertools import combinations

from repro.graph import ordering_names
from repro.pipeline import ORDERING_LABELS, analyze_filter, format_table, prepare_dataset

SCALE = 0.06


def main() -> None:
    bundle = prepare_dataset("CRE", scale=SCALE)
    print(f"CRE network: {bundle.n_vertices} vertices, {bundle.n_edges} edges, "
          f"{len(bundle.original_clusters)} original clusters")
    print()

    analyses = {}
    rows = []
    for ordering in ordering_names():
        analysis = analyze_filter(bundle, method="chordal", ordering=ordering, n_partitions=1)
        analyses[ordering] = analysis
        relevant = analysis.high_scoring_clusters()
        rows.append(
            {
                "ordering": ORDERING_LABELS[ordering],
                "edges_kept": analysis.result.n_edges_kept,
                "edge_reduction": analysis.result.edge_reduction,
                "clusters": len(analysis.clusters),
                "relevant": len(relevant),
                "found": len(analysis.found),
                "lost": len(analysis.lost),
            }
        )
    print(format_table(rows, title="Chordal filter under the four vertex orderings"))
    print()

    # pairwise agreement of the kept edge sets
    pair_rows = []
    for a, b in combinations(ordering_names(), 2):
        ea = set(analyses[a].result.graph.iter_edges())
        eb = set(analyses[b].result.graph.iter_edges())
        jaccard = len(ea & eb) / len(ea | eb) if ea | eb else 1.0
        pair_rows.append(
            {"pair": f"{ORDERING_LABELS[a]} vs {ORDERING_LABELS[b]}", "edge_jaccard": jaccard}
        )
    print(format_table(pair_rows, title="Pairwise Jaccard similarity of the kept edge sets"))
    print()

    # do the orderings agree on the biologically relevant clusters?
    agree_rows = []
    for a, b in combinations(ordering_names(), 2):
        high_a = {frozenset(c.members) for c in analyses[a].high_scoring_clusters()}
        high_b = {frozenset(c.members) for c in analyses[b].high_scoring_clusters()}
        shared = sum(1 for x in high_a if any(x & y for y in high_b))
        agree_rows.append(
            {
                "pair": f"{ORDERING_LABELS[a]} vs {ORDERING_LABELS[b]}",
                "relevant_a": len(high_a),
                "relevant_b": len(high_b),
                "overlapping": shared,
            }
        )
    print(format_table(agree_rows, title="Agreement on biologically relevant clusters (AEES >= 3)"))
    print()
    print("The filtered edge sets differ between orderings, but the relevant clusters are")
    print("consistently re-identified — the paper's hypothesis H0b.")


if __name__ == "__main__":
    main()
