"""Analytical cost model for the scalability study (paper Figure 10).

The paper measured wall-clock times on the Firefly cluster.  Re-running on a
single offline machine cannot reproduce absolute times, and Python threads
share one interpreter, so the repository separates *what work each rank does*
(measured exactly: edges examined, chordality checks, border edges exchanged)
from *how long that work would take* on a distributed-memory machine (modelled
here).  The model captures the three regimes the paper reports:

* random walk — cheapest per-edge cost, no communication: fastest and
  perfectly scalable;
* chordal without communication — higher per-edge cost (chordality upkeep),
  no communication: scalable, always cheaper than the with-communication
  variant;
* chordal with communication — same per-edge cost **plus** a border-edge
  exchange whose per-processor cost grows as O(b²/d); for small graphs and
  many processors ``b`` grows and the curve turns upward (the paper's YNG
  curve rises sharply at 32 processors), while for large graphs it roughly
  doubles the 2-processor time.

The constants are configurable; the defaults were chosen so the model's output
is on the same order of magnitude as the published plots (seconds for graphs
with tens of thousands of edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

__all__ = ["CostModel", "RankWork", "simulate_execution_time", "speedup", "efficiency"]


@dataclass
class RankWork:
    """The measured work performed by one rank of a parallel sampler.

    Attributes
    ----------
    edges_examined:
        number of candidate edges the rank's local algorithm inspected.
    chordality_checks:
        number of clique-membership / chordality-maintenance operations.
    border_edges:
        number of border edges this rank had to consider.
    messages:
        number of point-to-point messages this rank sent.
    items_sent:
        total payload items (edges) this rank sent.
    max_degree:
        maximum degree in the rank's partition (enters the O(b²/d) term).
    """

    edges_examined: int = 0
    chordality_checks: int = 0
    border_edges: int = 0
    messages: int = 0
    items_sent: int = 0
    max_degree: int = 1


@dataclass
class CostModel:
    """Maps :class:`RankWork` to simulated seconds on a distributed-memory machine.

    ``time(rank) = edge_cost·edges + check_cost·checks
                   + comm_latency·messages + comm_item_cost·items
                   + border_quadratic·border²/max(degree, 1)``

    The overall execution time of a run is the *maximum* over ranks (SPMD
    bulk-synchronous execution) plus a fixed ``startup`` overhead per run and a
    ``sequential_postprocess`` charge proportional to the duplicate border
    edges that must be removed serially (Section III.A of the paper).
    """

    edge_cost: float = 2.0e-5
    check_cost: float = 6.0e-6
    comm_latency: float = 2.0e-3
    comm_item_cost: float = 4.0e-6
    border_quadratic: float = 6.0e-7
    startup: float = 5.0e-3
    sequential_postprocess: float = 1.0e-6

    def rank_time(self, work: RankWork, with_communication: bool) -> float:
        """Simulated seconds spent by one rank."""
        t = self.edge_cost * work.edges_examined + self.check_cost * work.chordality_checks
        if with_communication:
            t += self.comm_latency * work.messages + self.comm_item_cost * work.items_sent
            t += self.border_quadratic * (work.border_edges ** 2) / max(work.max_degree, 1)
        return t

    def execution_time(
        self,
        works: Sequence[RankWork],
        with_communication: bool = False,
        duplicate_border_edges: int = 0,
    ) -> float:
        """Simulated wall-clock seconds of a bulk-synchronous SPMD run."""
        if not works:
            return self.startup
        slowest = max(self.rank_time(w, with_communication) for w in works)
        return self.startup + slowest + self.sequential_postprocess * duplicate_border_edges


def simulate_execution_time(
    works: Sequence[RankWork],
    with_communication: bool = False,
    duplicate_border_edges: int = 0,
    model: Optional[CostModel] = None,
) -> float:
    """Convenience wrapper around :meth:`CostModel.execution_time`."""
    return (model or CostModel()).execution_time(
        works, with_communication=with_communication, duplicate_border_edges=duplicate_border_edges
    )


def speedup(times: Mapping[int, float]) -> dict[int, float]:
    """Return speedup(P) = T(1) / T(P) for a mapping {processors: time}.

    Raises ``ValueError`` when the single-processor time is missing.
    """
    if 1 not in times:
        raise ValueError("speedup requires the single-processor time (key 1)")
    base = times[1]
    return {p: (base / t if t > 0 else float("inf")) for p, t in sorted(times.items())}


def efficiency(times: Mapping[int, float]) -> dict[int, float]:
    """Return parallel efficiency(P) = speedup(P) / P."""
    return {p: s / p for p, s in speedup(times).items()}
