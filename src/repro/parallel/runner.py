"""SPMD execution of rank functions — threaded, serial, or on real processes.

``run_spmd`` plays the role of ``mpiexec``: it launches one logical rank per
partition, hands each a communicator endpoint and collects the per-rank
return values.  The backends (see :func:`available_backends`, the single
source of truth shared with :func:`parallel_map`):

``serial``
    ranks executed one after another in rank order — only valid for
    communication-free algorithms, but with zero threading overhead and fully
    deterministic scheduling; the communication-free chordal sampler and the
    random-walk sampler use it by default.
``thread``
    one Python thread per rank with a :class:`~repro.parallel.comm.SimComm`
    endpoint — supports messaging (blocking receives need the peer rank to
    be live concurrently) but compute stays GIL-bound;
``process``
    one OS process per rank with a :class:`~repro.parallel.comm.ProcComm`
    endpoint — messages travel over ``multiprocessing`` queues (pipes), so
    communicating rank functions finally execute on real cores.  Rank
    payloads and results are pickled;
``process-shm``
    the ``process`` transport with rank payloads routed through a
    :class:`~repro.parallel.shm.SharedArena`: every numpy array in
    ``rank_args`` is exported to shared memory once and replaced by an
    :class:`~repro.parallel.shm.ArenaRef`, which the rank process resolves
    back into a zero-copy read-only view.
``process-sock``
    one resident socket worker per rank with a
    :class:`~repro.parallel.sock.SockComm` endpoint — messages travel as
    length-prefixed pickle frames over TCP through a hub in this process,
    so ranks can live on *other hosts* (``repro spmd-worker`` + the
    ``REPRO_SOCK_*`` rendezvous knobs); by default workers are spawned
    locally and the backend behaves like ``process`` with a TCP wire.

``parallel_map`` offers the same backend names for embarrassingly parallel
work items (no communicator).  Its ``process``/``process-shm`` backends keep
one shared ``spawn`` pool alive across calls (spawning a pool per call used
to dominate small runs); the pool is created at the first caller's actual
need and grown **in place** when a larger request arrives — warm
interpreters are never discarded — torn down by
:func:`shutdown_worker_pool` (the batch engine calls it at the end of every
batch / worker group) and cleaned up at interpreter exit.

Failure supervision
-------------------
Both entry points run under a supervising retry policy (see
:class:`SupervisionPolicy` / :func:`configure_supervision`).  Two classes of
*infrastructure* failure are distinguished from ordinary errors in user code,
which always propagate untouched:

* **retryable** — a pool worker or SPMD rank died mid-flight
  (:class:`WorkerPoolError`, :class:`DeadRankError`).  The broken pool is
  torn down and the failed chunk (or the whole deterministic SPMD round) is
  retried on a *fresh* pool, same backend, up to ``max_retries`` times with
  seeded jittered exponential backoff.  These never degrade the backend: a
  payload that kills its worker would take the host process down with it on
  the thread/serial backends.
* **degradable** — the backend's substrate could not be brought up at all
  (pool spawn failure, shared-memory arena creation/export failure, socket
  bind/rendezvous failure).  After
  retries are exhausted the supervisor steps down the degradation ladder
  ``process-sock → process-shm → process → thread → serial`` (stopping at
  ``thread`` for
  SPMD, whose serial backend cannot service blocking receives) and retries
  there; the step-down is recorded in the supervision event log
  (:func:`pop_supervision_events`) and the global counters surfaced by
  ``repro serve`` stats.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import random
import signal
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..faults import current_plan, fault_point
from .comm import CommStats, ProcComm, SimCommWorld, watchdog_poll
from .shm import ArenaError, export_payload, owned_arena, resolve_payload

__all__ = [
    "RankResult",
    "SpmdReport",
    "WorkerPoolError",
    "DeadRankError",
    "SupervisionPolicy",
    "configure_supervision",
    "supervision_policy",
    "pop_supervision_events",
    "supervision_counters",
    "reset_supervision_counters",
    "comm_counters",
    "reset_comm_counters",
    "run_spmd",
    "parallel_map",
    "available_backends",
    "shutdown_worker_pool",
    "worker_pool_size",
]


class WorkerPoolError(RuntimeError):
    """The shared ``process`` pool lost a worker while a map was in flight.

    ``multiprocessing.Pool`` silently loses the tasks a killed worker was
    holding, so an unchecked ``pool.map`` would block forever — the same
    failure mode :func:`_spawn_and_collect` detects for SPMD ranks.  The
    checked map raises this instead and tears the broken pool down, so the
    caller fails cleanly (or, under the default supervision policy, the map
    is retried on a fresh pool) and the next call respawns a fresh pool.
    """


class DeadRankError(RuntimeError):
    """An SPMD rank process died without reporting a result.

    The process-backend equivalent of :class:`WorkerPoolError`: the rank was
    OOM-killed or segfaulted, so no error payload ever reached the parent.
    Distinct from an ordinary rank *error* (which re-raises the child
    traceback and is never retried): a dead rank is an infrastructure
    failure, and the whole deterministic SPMD round is eligible for retry.
    """


RankFn = Callable[..., Any]

#: How long the parent keeps draining the result queue after every rank
#: process has exited, before declaring the missing results lost.  There is
#: deliberately *no* cap on healthy compute time: a rank that is alive is
#: allowed to run as long as it needs (exactly like the thread backend),
#: and protocol deadlocks surface as errors from the communicator's own
#: ``RECV_TIMEOUT`` inside the rank.
SPMD_DRAIN_TIMEOUT = 10.0


# ----------------------------------------------------------------------
# supervision policy, events and counters
# ----------------------------------------------------------------------
@dataclass
class SupervisionPolicy:
    """Retry/degradation policy applied by :func:`parallel_map` / :func:`run_spmd`.

    ``max_retries`` bounds the *extra* attempts per ladder rung (0 restores
    the pre-supervision fail-fast behaviour).  ``degrade`` enables the
    backend step-down ladder for degradable infrastructure failures.  The
    backoff between attempts is exponential with seeded jitter:
    ``min(backoff_max, backoff_base * backoff_factor**(attempt-1))`` scaled
    by a uniform factor in ``[0.5, 1.0)`` drawn from ``Random(seed)`` — so a
    retry storm from many supervised callers decorrelates, yet any single
    run's schedule is reproducible.
    """

    max_retries: int = 2
    degrade: bool = True
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    seed: int = 0


_policy = SupervisionPolicy()
_policy_lock = threading.Lock()

_supervision_tls = threading.local()
_counters_lock = threading.Lock()
_counters = {"retries": 0, "degrades": 0}


def configure_supervision(
    max_retries: Optional[int] = None,
    degrade: Optional[bool] = None,
    backoff_base: Optional[float] = None,
    backoff_factor: Optional[float] = None,
    backoff_max: Optional[float] = None,
    seed: Optional[int] = None,
) -> SupervisionPolicy:
    """Update the process-wide :class:`SupervisionPolicy` (None = keep current)."""
    global _policy
    with _policy_lock:
        p = _policy
        _policy = SupervisionPolicy(
            max_retries=p.max_retries if max_retries is None else max(0, int(max_retries)),
            degrade=p.degrade if degrade is None else bool(degrade),
            backoff_base=p.backoff_base if backoff_base is None else float(backoff_base),
            backoff_factor=p.backoff_factor if backoff_factor is None else float(backoff_factor),
            backoff_max=p.backoff_max if backoff_max is None else float(backoff_max),
            seed=p.seed if seed is None else int(seed),
        )
        return _policy


def supervision_policy() -> SupervisionPolicy:
    """The current process-wide supervision policy."""
    with _policy_lock:
        return _policy


def pop_supervision_events() -> list[dict[str, Any]]:
    """Drain the calling thread's supervision event log (empty when clean).

    Each event is a dict: ``{"action": "retry"|"degrade", "entry":
    "parallel_map"|"run_spmd", "backend": ..., "error": ...}`` plus
    ``"attempt"`` for retries and ``"to"`` for degrades.  Events accumulate
    per thread so concurrent serve workers don't interleave; callers that
    surface them (the filter engines) drain right after their supervised
    calls return.
    """
    events = getattr(_supervision_tls, "events", None)
    _supervision_tls.events = []
    return events or []


def supervision_counters() -> dict[str, int]:
    """Process-wide totals of supervision actions (for serve ``stats``)."""
    with _counters_lock:
        return dict(_counters)


def reset_supervision_counters() -> None:
    with _counters_lock:
        for key in _counters:
            _counters[key] = 0


_comm_totals_lock = threading.Lock()
_comm_totals = CommStats()


def _accumulate_comm(stats: CommStats) -> None:
    global _comm_totals
    with _comm_totals_lock:
        _comm_totals = _comm_totals.merge(stats)


def comm_counters() -> dict[str, int]:
    """Process-wide communication totals across all SPMD rounds.

    Every :func:`run_spmd` return merges its report's
    :meth:`~SpmdReport.total_stats` here, so a resident server can surface
    cumulative message/byte counters in ``repro serve`` stats without
    threading per-request reports through the handler layer.
    """
    with _comm_totals_lock:
        return _comm_totals.as_dict()


def reset_comm_counters() -> None:
    global _comm_totals
    with _comm_totals_lock:
        _comm_totals = CommStats()


def _record_event(event: dict[str, Any]) -> None:
    events = getattr(_supervision_tls, "events", None)
    if events is None:
        events = _supervision_tls.events = []
    events.append(event)
    counter = "retries" if event["action"] == "retry" else "degrades"
    with _counters_lock:
        _counters[counter] += 1


class _DegradableFailure(Exception):
    """Internal wrapper marking an infrastructure failure as ladder-eligible.

    Raised only around substrate bring-up (pool spawn, arena create/export),
    never around user code — so a user function that happens to raise
    ``OSError`` propagates normally instead of being degraded to serial.
    """

    def __init__(self, original: BaseException) -> None:
        super().__init__(str(original))
        self.original = original


#: Exceptions that mark substrate bring-up as failed (ArenaError covers the
#: shared-memory layer; OSError covers spawn/shm-create syscall failures,
#: including FileNotFoundError from a vanished segment).
_DEGRADABLE_EXC = (ArenaError, OSError)


def _degradation_ladder(backend: str, floor: str = "serial") -> list[str]:
    """The backends to fall through, starting at the requested one."""
    order = available_backends()[::-1]  # process-sock, process-shm, process, thread, serial
    start = order.index(backend)
    stop = order.index(floor)
    return order[start : stop + 1] if stop >= start else [backend]


def _backoff_sleep(rng: random.Random, policy: SupervisionPolicy, attempt: int) -> None:
    delay = min(policy.backoff_max, policy.backoff_base * policy.backoff_factor ** (attempt - 1))
    time.sleep(delay * (0.5 + 0.5 * rng.random()))


def _supervise(
    entry: str,
    backend: str,
    ladder: list[str],
    attempt_fn: Callable[[str], Any],
    max_retries: Optional[int],
    degrade: Optional[bool],
) -> Any:
    """Run ``attempt_fn(backend)`` under the retry/degradation policy.

    Retryable failures (dead worker/rank) retry the same backend only;
    degradable failures (substrate bring-up) retry, then step down the
    ladder.  Everything else — user-code errors, rank errors carrying a
    child traceback — propagates on the first occurrence.
    """
    policy = supervision_policy()
    retries = policy.max_retries if max_retries is None else max(0, int(max_retries))
    degrade_ok = policy.degrade if degrade is None else bool(degrade)
    rng = random.Random(policy.seed)
    idx = 0
    attempts = 0
    while True:
        current = ladder[idx]
        try:
            return attempt_fn(current)
        except (WorkerPoolError, DeadRankError) as exc:
            if attempts >= retries:
                raise
            attempts += 1
            _record_event(
                {
                    "action": "retry",
                    "entry": entry,
                    "backend": current,
                    "attempt": attempts,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            _backoff_sleep(rng, policy, attempts)
        except _DegradableFailure as exc:
            error = f"{type(exc.original).__name__}: {exc.original}"
            if attempts < retries:
                attempts += 1
                _record_event(
                    {
                        "action": "retry",
                        "entry": entry,
                        "backend": current,
                        "attempt": attempts,
                        "error": error,
                    }
                )
                _backoff_sleep(rng, policy, attempts)
            elif degrade_ok and idx + 1 < len(ladder):
                _record_event(
                    {
                        "action": "degrade",
                        "entry": entry,
                        "backend": current,
                        "to": ladder[idx + 1],
                        "error": error,
                    }
                )
                idx += 1
                attempts = 0
            else:
                raise exc.original from exc.original.__cause__


@dataclass
class RankResult:
    """Return value and communication counters of one rank."""

    rank: int
    value: Any
    stats: CommStats


@dataclass
class SpmdReport:
    """Aggregate result of one SPMD execution."""

    results: list[RankResult]
    n_ranks: int
    backend: str

    @property
    def values(self) -> list[Any]:
        """Per-rank return values in rank order."""
        return [r.value for r in self.results]

    def total_stats(self) -> CommStats:
        total = CommStats()
        for r in self.results:
            total = total.merge(r.stats)
        return total


def available_backends() -> list[str]:
    """Names of the execution backends accepted by :func:`run_spmd` and
    :func:`parallel_map` — the single source of truth for both.

    Ordered cheapest-substrate first; the degradation ladder is this list
    reversed, so ``process-sock`` (TCP transport, cross-host capable) sits
    last and degrades through ``process-shm → process → thread → serial``.
    """
    return ["serial", "thread", "process", "process-shm", "process-sock"]


def _spmd_process_child(
    rank: int,
    n_ranks: int,
    queues: list[Any],
    barrier: Any,
    result_queue: Any,
    fn: RankFn,
    extra: tuple[Any, ...],
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    die: bool = False,
) -> None:
    """Body of one SPMD rank process: build the comm, run ``fn``, report back.

    ``die`` is the fault plane's ``kill_rank`` switch: the rank SIGKILLs
    itself before touching the communicator, exactly like an OOM-killed rank.
    """
    if die:
        os.kill(os.getpid(), signal.SIGKILL)
    comm = ProcComm(rank, n_ranks, queues, barrier)
    try:
        value = fn(comm, *resolve_payload(extra), *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        result_queue.put(("error", rank, f"{type(exc).__name__}: {exc}", traceback.format_exc()))
        return
    result_queue.put(("ok", rank, value, comm.stats))


def _run_spmd_processes(
    fn: RankFn,
    n_ranks: int,
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    rank_args: Optional[Sequence[Sequence[Any]]],
    use_shm: bool,
) -> tuple[list[Any], list[CommStats]]:
    """Execute the ranks on real processes; returns (values, stats) by rank."""
    payloads: list[tuple[Any, ...]] = [
        tuple(rank_args[r]) if rank_args is not None else () for r in range(n_ranks)
    ]
    if use_shm:
        try:
            arena_ctx = owned_arena()
            arena = arena_ctx.__enter__()
        except _DEGRADABLE_EXC as exc:
            raise _DegradableFailure(exc) from exc
        try:
            try:
                payloads = [export_payload(p, arena) for p in payloads]
            except _DEGRADABLE_EXC as exc:
                raise _DegradableFailure(exc) from exc
            return _spawn_and_collect(fn, n_ranks, args, kwargs, payloads)
        finally:
            arena_ctx.__exit__(None, None, None)
    return _spawn_and_collect(fn, n_ranks, args, kwargs, payloads)


def _spawn_and_collect(
    fn: RankFn,
    n_ranks: int,
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    payloads: list[tuple[Any, ...]],
) -> tuple[list[Any], list[CommStats]]:
    """Spawn one process per rank and collect (values, stats) in rank order.

    A rank may compute for as long as it stays alive — the failure modes
    detected here are a rank *error* (re-raised with the child traceback)
    and rank *death* without a result (:class:`DeadRankError`); protocol
    deadlocks are converted into errors inside the rank by the
    communicator's ``RECV_TIMEOUT``.
    """
    kill_ranks: set[int] = set()
    fault_point("spmd.ranks", kill_ranks=kill_ranks, n_ranks=n_ranks)
    ctx = multiprocessing.get_context("spawn")
    try:
        queues = [ctx.Queue() for _ in range(n_ranks)]
        result_queue = ctx.Queue()
        barrier = ctx.Barrier(n_ranks)
        procs = [
            ctx.Process(
                target=_spmd_process_child,
                args=(
                    r, n_ranks, queues, barrier, result_queue, fn,
                    payloads[r], args, kwargs, r in kill_ranks,
                ),
                name=f"spmd-rank-{r}",
                daemon=True,
            )
            for r in range(n_ranks)
        ]
    except _DEGRADABLE_EXC as exc:
        raise _DegradableFailure(exc) from exc
    started: list[Any] = []
    try:
        try:
            for p in procs:
                p.start()
                started.append(p)
        except _DEGRADABLE_EXC as exc:
            raise _DegradableFailure(exc) from exc
        values: list[Any] = [None] * n_ranks
        stats: list[CommStats] = [CommStats() for _ in range(n_ranks)]
        reported = [False] * n_ranks
        collected = 0
        while collected < n_ranks:
            try:
                item = result_queue.get(timeout=watchdog_poll())
            except queue.Empty:
                # A live rank may compute for as long as it needs.  The
                # failure signal is a rank that *exited without reporting*
                # (OOM-kill, segfault): its normally-exiting peers would
                # error out via the communicator timeouts, but a peer
                # blocked in a barrier would not — so detect it here, after
                # a drain grace for results still in the pipe.
                dead_unreported = [
                    r for r, p in enumerate(procs) if not p.is_alive() and not reported[r]
                ]
                if not dead_unreported:
                    continue
                try:
                    item = result_queue.get(timeout=SPMD_DRAIN_TIMEOUT)
                except queue.Empty:
                    raise DeadRankError(
                        f"SPMD process backend: rank(s) {dead_unreported} died "
                        f"without reporting a result"
                    ) from None
            if item[0] == "error":
                _, rank, message, tb = item
                raise RuntimeError(
                    f"SPMD rank {rank} failed: {message}\n--- rank traceback ---\n{tb}"
                )
            _, rank, value, rank_stats = item
            values[rank] = value
            stats[rank] = rank_stats
            reported[rank] = True
            collected += 1
    finally:
        for p in started:
            if p.is_alive():
                p.terminate()
        for p in started:
            p.join(timeout=10.0)
    return values, stats


def _run_spmd_sock(
    fn: RankFn,
    n_ranks: int,
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    rank_args: Optional[Sequence[Sequence[Any]]],
) -> tuple[list[Any], list[CommStats]]:
    """Execute the ranks on socket workers (local or remote) via the hub pool.

    Payloads cross the wire pickled — no arena export, since ``ArenaRef``
    handles are host-local and the transport's point is crossing hosts.
    Bring-up failures (bind, rendezvous timeout) degrade down the ladder;
    a worker dying mid-round raises :class:`DeadRankError` (retryable).
    """
    from .sock import get_sock_pool  # lazy: only sock users pay the import

    payloads: list[tuple[Any, ...]] = [
        tuple(rank_args[r]) if rank_args is not None else () for r in range(n_ranks)
    ]
    kill_ranks: set[int] = set()
    fault_point("spmd.ranks", kill_ranks=kill_ranks, n_ranks=n_ranks)
    try:
        pool = get_sock_pool()
    except _DEGRADABLE_EXC as exc:
        raise _DegradableFailure(exc) from exc
    try:
        return pool.run_round(fn, n_ranks, payloads, args, kwargs, kill_ranks)
    except (WorkerPoolError, DeadRankError, RuntimeError):
        raise
    except _DEGRADABLE_EXC as exc:
        raise _DegradableFailure(exc) from exc


def _run_spmd_backend(
    fn: RankFn,
    n_ranks: int,
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    rank_args: Optional[Sequence[Sequence[Any]]],
    backend: str,
) -> SpmdReport:
    """One un-supervised SPMD attempt on ``backend`` (see :func:`run_spmd`)."""
    if backend in ("process", "process-shm", "process-sock"):
        if backend == "process-sock":
            values, stats = _run_spmd_sock(fn, n_ranks, args, kwargs, rank_args)
        else:
            values, stats = _run_spmd_processes(
                fn, n_ranks, args, kwargs, rank_args, use_shm=(backend == "process-shm")
            )
        results = [RankResult(rank=r, value=values[r], stats=stats[r]) for r in range(n_ranks)]
        return SpmdReport(results=results, n_ranks=n_ranks, backend=backend)

    world = SimCommWorld(n_ranks)

    def call(rank: int) -> Any:
        comm = world.comm(rank)
        extra = resolve_payload(tuple(rank_args[rank])) if rank_args is not None else ()
        return fn(comm, *extra, *args, **kwargs)

    values: list[Any] = [None] * n_ranks
    errors: list[tuple[int, BaseException]] = []

    if backend == "serial":
        for rank in range(n_ranks):
            values[rank] = call(rank)
    elif backend == "thread":
        def worker(rank: int) -> None:
            try:
                values[rank] = call(rank)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append((rank, exc))

        threads = [threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}") for r in range(n_ranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"SPMD rank {rank} failed: {exc!r}") from exc
    else:
        raise ValueError(f"unknown backend {backend!r}; expected one of {available_backends()}")

    results = [RankResult(rank=r, value=values[r], stats=world.stats[r]) for r in range(n_ranks)]
    return SpmdReport(results=results, n_ranks=n_ranks, backend=backend)


def run_spmd(
    fn: RankFn,
    n_ranks: int,
    args: Optional[Sequence[Any]] = None,
    kwargs: Optional[dict[str, Any]] = None,
    rank_args: Optional[Sequence[Sequence[Any]]] = None,
    backend: str = "thread",
    max_retries: Optional[int] = None,
    degrade: Optional[bool] = None,
) -> SpmdReport:
    """Execute ``fn(comm, *args, **kwargs)`` on ``n_ranks`` simulated ranks.

    Parameters
    ----------
    fn:
        The rank function.  Its first positional argument is the rank's
        communicator endpoint (:class:`SimComm` on the ``serial``/``thread``
        backends, :class:`ProcComm` on the process backends); the remaining
        arguments are ``rank_args[rank]`` (if supplied) followed by the
        shared ``args`` / ``kwargs``.
    rank_args:
        Optional per-rank positional arguments (length must equal ``n_ranks``),
        typically the rank's partition data.  Any
        :class:`~repro.parallel.shm.ArenaRef` inside is resolved to its array
        view in the rank process; with ``backend="process-shm"`` plain numpy
        arrays are additionally exported through a shared arena first.
    backend:
        One of :func:`available_backends`.  ``"serial"`` runs ranks
        sequentially (any blocking receive on a message that was not already
        sent raises); ``"thread"`` (default) supports messaging in-process;
        ``"process"`` / ``"process-shm"`` run each rank on a real core (``fn``,
        payloads and results must be picklable).
    max_retries, degrade:
        Per-call overrides of the process-wide :class:`SupervisionPolicy`.
        A dead rank (:class:`DeadRankError`) retries the whole round — one
        SPMD round is a deterministic unit, so a clean rerun produces the
        identical result; substrate bring-up failures degrade the backend
        down to ``thread`` (never ``serial``: blocking receives need live
        peers).  The report's ``backend`` field records the backend that
        actually ran.

    Returns
    -------
    SpmdReport with per-rank values and communication statistics.

    Raises
    ------
    The first exception raised by any rank is re-raised in the caller after
    all ranks have terminated, so failures in rank code are never swallowed.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if rank_args is not None and len(rank_args) != n_ranks:
        raise ValueError("rank_args must supply one tuple per rank")
    if backend not in available_backends():
        raise ValueError(f"unknown backend {backend!r}; expected one of {available_backends()}")
    args = tuple(args or ())
    kwargs = dict(kwargs or {})

    ladder = _degradation_ladder(backend, floor="thread" if backend != "serial" else "serial")
    report = _supervise(
        "run_spmd",
        backend,
        ladder,
        lambda b: _run_spmd_backend(fn, n_ranks, args, kwargs, rank_args, b),
        max_retries,
        degrade,
    )
    _accumulate_comm(report.total_stats())
    return report


def _call_star(payload: tuple[Callable[..., Any], tuple[Any, ...]]) -> Any:
    fn, item_args = payload
    return fn(*resolve_payload(item_args))


# One shared worker pool for every ``parallel_map(backend="process")`` call.
# Spawning a fresh ``spawn`` pool per call costs hundreds of milliseconds of
# interpreter start-up per worker — more than most rank tasks themselves —
# so the pool is created lazily at the first caller's actual need and then
# **grown in place** when a larger request arrives: the extra workers are
# spawned next to the warm ones instead of paying the old
# terminate-and-respawn (which discarded every warm interpreter).  The pool
# never shrinks; :func:`shutdown_worker_pool` (or interpreter exit) tears it
# down, and the next request spawns a fresh pool.
_worker_pool: Optional[multiprocessing.pool.Pool] = None
_worker_pool_size = 0
_worker_pool_lock = threading.Lock()


def _kernel_warm_initializer() -> None:
    """Pool-worker initializer: best-effort jit kernel warm-up (never raises)."""
    from ..kernels import warm_worker

    warm_worker()


def _get_worker_pool(n_workers: int) -> multiprocessing.pool.Pool:
    global _worker_pool, _worker_pool_size
    n_workers = max(n_workers, 1)
    with _worker_pool_lock:
        if _worker_pool is None:
            fault_point("pool.spawn", n_workers=n_workers)
            # ``warm_worker`` pre-compiles the jit kernel tier in each spawned
            # worker (a no-op unless the inherited REPRO_KERNELS / default
            # resolves to jit), so maps never stall on a mid-task compile;
            # repopulated workers run the same initializer.
            _worker_pool = multiprocessing.get_context("spawn").Pool(
                n_workers, initializer=_kernel_warm_initializer
            )
            _worker_pool_size = n_workers
        elif n_workers > _worker_pool_size:
            try:
                # Grow in place: Pool's maintenance thread tops the worker
                # list up to ``_processes`` (the documented-by-implementation
                # repopulation mechanism of CPython 3.10–3.12).
                _worker_pool._processes = n_workers
                _worker_pool._repopulate_pool()
                _worker_pool_size = n_workers
            except AttributeError:  # pragma: no cover - future-python fallback
                # Unknown Pool internals: keep the warm pool and let the
                # extra tasks queue rather than discard live interpreters.
                pass
        return _worker_pool


def worker_pool_size() -> int:
    """Current size of the shared process pool (0 when none is alive)."""
    with _worker_pool_lock:
        return _worker_pool_size if _worker_pool is not None else 0


def shutdown_worker_pool() -> None:
    """Tear down the shared ``process``-backend pool (no-op when none exists).

    Callers that fan out many ``parallel_map`` runs (the batch engine) invoke
    this once at the end of the batch; it is also registered with
    :mod:`atexit` so an interactive session never leaks worker processes.
    Idempotent: repeated calls (and calls racing the atexit hook) are safe.
    """
    global _worker_pool, _worker_pool_size
    with _worker_pool_lock:
        if _worker_pool is not None:
            _worker_pool.terminate()
            _worker_pool.join()
            _worker_pool = None
            _worker_pool_size = 0


atexit.register(shutdown_worker_pool)


def parallel_map(
    fn: Callable[..., Any],
    items: Sequence[Sequence[Any]],
    backend: str = "serial",
    processes: Optional[int] = None,
    max_retries: Optional[int] = None,
    degrade: Optional[bool] = None,
) -> list[Any]:
    """Apply ``fn(*item)`` to every item, optionally in parallel.

    Backends (one of :func:`available_backends`):

    * ``'serial'`` — in-process loop (deterministic, zero overhead);
    * ``'thread'`` — a thread per in-flight item (GIL-bound; useful when the
      items block on I/O or release the GIL);
    * ``'process'`` — the shared :mod:`multiprocessing` pool; ``fn`` and the
      items must be picklable.  An explicit ``processes`` bounds how many
      items are in flight at once (items are submitted in waves of that
      size); the persistent pool itself starts at the first call's need and
      grows in place for larger requests, reused by every later call (see
      :func:`shutdown_worker_pool`);
    * ``'process-shm'`` — the shared pool with every numpy array in the items
      routed through a :class:`~repro.parallel.shm.SharedArena` (the ambient
      one from :func:`~repro.parallel.shm.arena_scope` when present, else a
      private arena unlinked after the call), so workers attach zero-copy
      views instead of unpickling array bytes.

    On every backend, :class:`~repro.parallel.shm.ArenaRef` values inside the
    items are resolved to their arrays before ``fn`` runs.  The result order
    always matches the input order.

    ``max_retries`` / ``degrade`` override the process-wide
    :class:`SupervisionPolicy` for this call: a :class:`WorkerPoolError`
    retries the map on a freshly spawned pool (same backend); pool-spawn or
    arena failures degrade ``process-shm → process → thread → serial``.
    """
    if backend not in available_backends():
        raise ValueError(f"unknown backend {backend!r}; expected one of {available_backends()}")
    payloads = [(fn, tuple(item)) for item in items]
    if backend == "serial":
        return [_call_star(p) for p in payloads]
    if not payloads:
        return []
    return _supervise(
        "parallel_map",
        backend,
        _degradation_ladder(backend),
        lambda b: _map_backend(payloads, b, processes),
        max_retries,
        degrade,
    )


def _map_backend(
    payloads: list[tuple[Callable[..., Any], tuple[Any, ...]]],
    backend: str,
    processes: Optional[int],
) -> list[Any]:
    """One un-supervised map attempt on ``backend``."""
    if backend == "serial":
        return [_call_star(p) for p in payloads]
    if backend == "thread":
        n_threads = processes or min(len(payloads), 32)
        with ThreadPoolExecutor(max_workers=max(1, n_threads)) as pool:
            return list(pool.map(_call_star, payloads))
    if backend == "process-sock":
        from .sock import get_sock_pool  # lazy: only sock users pay the import

        try:
            pool = get_sock_pool()
        except _DEGRADABLE_EXC as exc:
            raise _DegradableFailure(exc) from exc
        try:
            return pool.run_map(payloads, processes)
        except (WorkerPoolError, RuntimeError):
            raise
        except _DEGRADABLE_EXC as exc:
            raise _DegradableFailure(exc) from exc
    n_workers = processes or min(len(payloads), multiprocessing.cpu_count()) or 1
    if backend == "process":
        return _pool_map(payloads, processes, n_workers)
    try:
        arena_ctx = owned_arena()
        arena = arena_ctx.__enter__()
    except _DEGRADABLE_EXC as exc:
        raise _DegradableFailure(exc) from exc
    try:
        try:
            shm_payloads = [(fn, export_payload(item_args, arena)) for fn, item_args in payloads]
        except _DEGRADABLE_EXC as exc:
            raise _DegradableFailure(exc) from exc
        return _pool_map(shm_payloads, processes, n_workers)
    finally:
        arena_ctx.__exit__(None, None, None)


def _pool_map(
    payloads: list[tuple[Callable[..., Any], tuple[Any, ...]]],
    processes: Optional[int],
    n_workers: int,
) -> list[Any]:
    """Map over the shared pool, honouring an explicit concurrency bound.

    When the caller asked for ``processes`` workers, items are submitted in
    waves of that size so at most ``processes`` tasks execute at once —
    callers use the bound to cap resident memory (one sliced subgraph per
    in-flight rank), so it must hold even though the warm pool is larger.
    """
    try:
        pool = _get_worker_pool(n_workers)
    except _DEGRADABLE_EXC as exc:
        raise _DegradableFailure(exc) from exc
    if processes is None or processes >= len(payloads):
        return _map_checked(pool, payloads)
    results: list[Any] = []
    for start in range(0, len(payloads), processes):
        results.extend(_map_checked(pool, payloads[start : start + processes]))
    return results


#: Poll period of the worker-death watchdog while a checked map is in flight.
POOL_DEATH_POLL = 0.05
#: Drain grace after a worker death is noticed: results already in the pipe
#: are still collected before the pool is declared broken.
POOL_DRAIN_TIMEOUT = 5.0


def _map_checked(
    pool: multiprocessing.pool.Pool,
    payloads: list[tuple[Callable[..., Any], tuple[Any, ...]]],
) -> list[Any]:
    """``pool.map`` with dead-worker detection instead of an infinite hang.

    The worker set is snapshotted before submitting (``Pool`` replaces dead
    workers in place, so the snapshot — not the live list — is what witnesses
    a death).  While waiting, any snapshot worker exiting means tasks may have
    been lost: after a drain grace for a map that completes anyway, the pool
    is torn down (so the next call starts fresh) and :class:`WorkerPoolError`
    is raised.
    """
    if current_plan() is not None:
        # Copy before poisoning so a ``kill_task`` fault is scoped to this
        # dispatch: the supervisor's retry resubmits the clean payloads.
        payloads = list(payloads)
        fault_point("pool.dispatch", payloads=payloads)
    try:
        workers = list(pool._pool)
    except AttributeError:  # pragma: no cover - unknown Pool internals
        return pool.map(_call_star, payloads)
    result = pool.map_async(_call_star, payloads)
    while True:
        result.wait(POOL_DEATH_POLL)
        if result.ready():
            return result.get()
        if any(not w.is_alive() for w in workers):
            result.wait(POOL_DRAIN_TIMEOUT)
            if result.ready():
                return result.get()
            dead = [w.name for w in workers if not w.is_alive()]
            shutdown_worker_pool()
            raise WorkerPoolError(
                f"parallel_map process backend: worker(s) {dead} died mid-map; "
                f"the shared pool was shut down and will respawn on the next call"
            )
