"""SPMD execution of rank functions over the simulated communicator.

``run_spmd`` plays the role of ``mpiexec``: it launches one logical rank per
partition, hands each a :class:`~repro.parallel.comm.SimComm` endpoint and
collects the per-rank return values.  Two backends are available:

``thread``
    one Python thread per rank — required by algorithms that exchange
    messages (blocking receives need the peer rank to be live concurrently);
``serial``
    ranks executed one after another in rank order — only valid for
    communication-free algorithms, but with zero threading overhead and fully
    deterministic scheduling; the communication-free chordal sampler and the
    random-walk sampler use it by default.

``parallel_map`` additionally offers a ``process`` backend built on
``multiprocessing`` for embarrassingly parallel work items (no communicator),
which is how the communication-free algorithms can exploit real cores when
they are available.  The ``process`` backend keeps one shared ``spawn`` pool
alive across calls (spawning a pool per call used to dominate small runs);
the pool is resized lazily, torn down by :func:`shutdown_worker_pool` (the
batch engine calls it at the end of every batch / worker group) and cleaned
up at interpreter exit.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from .comm import CommStats, SimComm, SimCommWorld

__all__ = [
    "RankResult",
    "SpmdReport",
    "run_spmd",
    "parallel_map",
    "available_backends",
    "shutdown_worker_pool",
]

RankFn = Callable[..., Any]


@dataclass
class RankResult:
    """Return value and communication counters of one rank."""

    rank: int
    value: Any
    stats: CommStats


@dataclass
class SpmdReport:
    """Aggregate result of one SPMD execution."""

    results: list[RankResult]
    n_ranks: int
    backend: str

    @property
    def values(self) -> list[Any]:
        """Per-rank return values in rank order."""
        return [r.value for r in self.results]

    def total_stats(self) -> CommStats:
        total = CommStats()
        for r in self.results:
            total = total.merge(r.stats)
        return total


def available_backends() -> list[str]:
    """Names of the SPMD backends accepted by :func:`run_spmd`."""
    return ["thread", "serial"]


def run_spmd(
    fn: RankFn,
    n_ranks: int,
    args: Optional[Sequence[Any]] = None,
    kwargs: Optional[dict[str, Any]] = None,
    rank_args: Optional[Sequence[Sequence[Any]]] = None,
    backend: str = "thread",
) -> SpmdReport:
    """Execute ``fn(comm, *args, **kwargs)`` on ``n_ranks`` simulated ranks.

    Parameters
    ----------
    fn:
        The rank function.  Its first positional argument is the rank's
        :class:`SimComm`; the remaining arguments are ``rank_args[rank]``
        (if supplied) followed by the shared ``args`` / ``kwargs``.
    rank_args:
        Optional per-rank positional arguments (length must equal ``n_ranks``),
        typically the rank's partition data.
    backend:
        ``"thread"`` (default, supports messaging) or ``"serial"`` (ranks run
        sequentially; any blocking receive on a message that was not already
        sent raises).

    Returns
    -------
    SpmdReport with per-rank values and communication statistics.

    Raises
    ------
    The first exception raised by any rank is re-raised in the caller after
    all ranks have terminated, so failures in rank code are never swallowed.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if rank_args is not None and len(rank_args) != n_ranks:
        raise ValueError("rank_args must supply one tuple per rank")
    args = tuple(args or ())
    kwargs = dict(kwargs or {})
    world = SimCommWorld(n_ranks)

    def call(rank: int) -> Any:
        comm = world.comm(rank)
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        return fn(comm, *extra, *args, **kwargs)

    values: list[Any] = [None] * n_ranks
    errors: list[tuple[int, BaseException]] = []

    if backend == "serial":
        for rank in range(n_ranks):
            values[rank] = call(rank)
    elif backend == "thread":
        def worker(rank: int) -> None:
            try:
                values[rank] = call(rank)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append((rank, exc))

        threads = [threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}") for r in range(n_ranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"SPMD rank {rank} failed: {exc!r}") from exc
    else:
        raise ValueError(f"unknown backend {backend!r}; expected one of {available_backends()}")

    results = [RankResult(rank=r, value=values[r], stats=world.stats[r]) for r in range(n_ranks)]
    return SpmdReport(results=results, n_ranks=n_ranks, backend=backend)


def _call_star(payload: tuple[Callable[..., Any], tuple[Any, ...]]) -> Any:
    fn, item_args = payload
    return fn(*item_args)


# One shared worker pool for every ``parallel_map(backend="process")`` call.
# Spawning a fresh ``spawn`` pool per call costs hundreds of milliseconds of
# interpreter start-up per worker — more than most rank tasks themselves —
# so the pool is created lazily, grown when a caller asks for more workers,
# and reused until :func:`shutdown_worker_pool` (or interpreter exit).
_worker_pool: Optional[multiprocessing.pool.Pool] = None
_worker_pool_size = 0
_worker_pool_lock = threading.Lock()


def _get_worker_pool(n_workers: int) -> multiprocessing.pool.Pool:
    global _worker_pool, _worker_pool_size
    with _worker_pool_lock:
        if _worker_pool is not None and _worker_pool_size < n_workers:
            _worker_pool.terminate()
            _worker_pool.join()
            _worker_pool = None
        if _worker_pool is None:
            _worker_pool = multiprocessing.get_context("spawn").Pool(n_workers)
            _worker_pool_size = n_workers
        return _worker_pool


def shutdown_worker_pool() -> None:
    """Tear down the shared ``process``-backend pool (no-op when none exists).

    Callers that fan out many ``parallel_map`` runs (the batch engine) invoke
    this once at the end of the batch; it is also registered with
    :mod:`atexit` so an interactive session never leaks worker processes.
    """
    global _worker_pool, _worker_pool_size
    with _worker_pool_lock:
        if _worker_pool is not None:
            _worker_pool.terminate()
            _worker_pool.join()
            _worker_pool = None
            _worker_pool_size = 0


atexit.register(shutdown_worker_pool)


def parallel_map(
    fn: Callable[..., Any],
    items: Sequence[Sequence[Any]],
    backend: str = "serial",
    processes: Optional[int] = None,
) -> list[Any]:
    """Apply ``fn(*item)`` to every item, optionally with a multiprocessing pool.

    ``backend='serial'`` runs in-process (deterministic, zero overhead);
    ``backend='process'`` uses the shared :mod:`multiprocessing` pool with
    ``processes`` workers — ``fn`` and the items must then be picklable.  The
    pool persists across calls (see :func:`shutdown_worker_pool`).  The
    result order always matches the input order.
    """
    payloads = [(fn, tuple(item)) for item in items]
    if backend == "serial":
        return [_call_star(p) for p in payloads]
    if backend == "process":
        n_workers = processes or min(len(items), multiprocessing.cpu_count()) or 1
        return _get_worker_pool(n_workers).map(_call_star, payloads)
    raise ValueError(f"unknown backend {backend!r}; expected 'serial' or 'process'")
