"""TCP socket transport for SPMD ranks — the ``process-sock`` backend.

The paper's experiments ran on a distributed-memory cluster; the queue-backed
``process`` backends stop at one machine because ``multiprocessing`` pipes
cannot cross hosts.  This module supplies the missing transport: the same
:class:`~repro.parallel.comm._MessagingComm` matching/collective machinery
(:class:`SockComm` is a sibling of ``SimComm``/``ProcComm``) over
length-prefixed pickle frames on TCP sockets, in a hub-and-spokes topology:

* the parent process runs a :class:`SockWorkerPool` **hub**: it binds a
  listening socket, accepts worker connections, and *routes* every rank-to-
  rank message and barrier through itself — workers never talk to each
  other directly, so a worker needs exactly one connection no matter the
  world size, and the rendezvous is a single ``(host, port)`` pair;
* each **worker** (:func:`worker_main`) is a resident rank executor: it
  connects, announces itself, and then serves SPMD rounds and map tasks
  until told to shut down.  Workers are either spawned locally by the pool
  (the default — ``process-sock`` then behaves like ``process`` with a TCP
  wire) or launched out-of-process via ``repro spmd-worker --host H --port
  P`` on any machine that can reach the hub.

Rendezvous knobs (all read from the environment so spawned workers and CI
scripts share one configuration surface):

``REPRO_SOCK_HOST`` / ``REPRO_SOCK_PORT``
    where the hub binds (default ``127.0.0.1`` / an ephemeral port).  Fix
    the port to let externally launched workers find the hub.
``REPRO_SOCK_SPAWN``
    ``0`` disables local worker spawning: the pool waits for external
    workers to connect instead (the distributed deployment mode, and what
    the CI loopback smoke test exercises).
``REPRO_SOCK_ACCEPT_TIMEOUT`` / ``REPRO_SOCK_CONNECT_TIMEOUT``
    how long the hub waits for enough workers / a worker retries the
    connect (seconds, default 30).  Workers may start before the hub —
    the connect loop retries until the deadline.
``REPRO_SOCK_AUTHKEY``
    the shared secret for the connection handshake (see below).  Required
    on *both* hub and workers in the external-worker deployment; locally
    spawned workers inherit the parent's ``multiprocessing`` authkey and
    need no configuration.

Trust model: frames are pickled, and unpickling attacker bytes is arbitrary
code execution, so the hub never reads a frame from an unauthenticated
peer.  Every accepted connection starts with an HMAC-SHA256 challenge/
response (the :mod:`multiprocessing.connection` scheme): the hub sends a
random nonce, the worker answers with ``HMAC(key, nonce)``, and a wrong or
missing digest closes the connection before the first pickle ever crosses
it.  The key is ``REPRO_SOCK_AUTHKEY`` when set, else the process's
``multiprocessing`` authkey — which locally spawned workers inherit, so the
default single-host mode is authenticated out of the box, while two
unrelated processes (or hosts) only talk once both export the same
``REPRO_SOCK_AUTHKEY``.  The handshake authenticates; it does not encrypt —
run cross-host traffic over a trusted network or a tunnel.

Failure taxonomy matches the queue backends: a worker that dies mid-round
surfaces as :class:`~repro.parallel.runner.DeadRankError` (retryable — the
round is a deterministic unit), mid-map as
:class:`~repro.parallel.runner.WorkerPoolError`; connect/bring-up failures
raise ``OSError`` and are degradable down the backend ladder.  Fault sites:
``comm.connect`` (worker-side connect), ``sock.send`` / ``sock.recv``
(every frame crossing a socket).
"""

from __future__ import annotations

import atexit
import hmac
import multiprocessing
import os
import pickle
import queue
import signal
import socket
import struct
import threading
import time
import traceback
from typing import Any, Callable, Optional, Sequence

from ..faults import fault_point
from .comm import CommStats, _Message, _MessagingComm, watchdog_poll
from .shm import resolve_payload

__all__ = [
    "SockComm",
    "SockWorkerPool",
    "get_sock_pool",
    "shutdown_sock_pool",
    "sock_pool_size",
    "worker_main",
]

#: Frame header: 8-byte big-endian payload length.
_LEN = struct.Struct(">Q")

#: Drain grace after a worker death is noticed mid-round (mirrors the
#: process backend's ``SPMD_DRAIN_TIMEOUT``).
SOCK_DRAIN_TIMEOUT = 10.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return default


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def _send_frame(
    sock_obj: socket.socket,
    obj: Any,
    lock: Optional[threading.Lock] = None,
    raw: Optional[bytes] = None,
) -> int:
    """Pickle ``obj`` (or reuse ``raw``) and write one length-prefixed frame."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL) if raw is None else raw
    fault_point("sock.send", nbytes=len(blob))
    data = _LEN.pack(len(blob)) + blob
    if lock is None:
        sock_obj.sendall(data)
    else:
        with lock:
            sock_obj.sendall(data)
    return len(blob)


def _recv_exact(sock_obj: socket.socket, n: int) -> bytes:
    parts: list[bytes] = []
    while n:
        chunk = sock_obj.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        parts.append(chunk)
        n -= len(chunk)
    return b"".join(parts)


def _recv_frame(sock_obj: socket.socket) -> tuple[Any, bytes]:
    """Read one frame; returns ``(object, raw bytes)`` so routers can forward
    the exact wire bytes without a re-pickling pass."""
    (length,) = _LEN.unpack(_recv_exact(sock_obj, _LEN.size))
    blob = _recv_exact(sock_obj, length)
    fault_point("sock.recv", nbytes=length)
    return pickle.loads(blob), blob


# ----------------------------------------------------------------------
# authentication handshake
# ----------------------------------------------------------------------
# HMAC-SHA256 challenge/response before the first pickle frame, using the
# multiprocessing.connection scheme.  The handshake speaks raw length-
# prefixed *bytes* — never pickle — because its whole point is to refuse
# to unpickle anything from an unauthenticated peer.
_CHALLENGE = b"#REPRO_CHALLENGE#"
_WELCOME = b"#REPRO_WELCOME#"
_FAILURE = b"#REPRO_FAILURE#"
_NONCE_LEN = 32
_HANDSHAKE_MAX = 1 << 12  # handshake frames are tiny; cap before reading
_HANDSHAKE_TIMEOUT = 10.0


def _authkey() -> bytes:
    """The handshake secret: ``REPRO_SOCK_AUTHKEY``, else the process authkey.

    Locally spawned workers inherit the parent's ``multiprocessing`` authkey,
    so the default matches hub-side automatically; external workers must set
    ``REPRO_SOCK_AUTHKEY`` on both sides.
    """
    raw = os.environ.get("REPRO_SOCK_AUTHKEY")
    if raw:
        return raw.encode("utf-8")
    return bytes(multiprocessing.current_process().authkey)


def _send_raw(sock_obj: socket.socket, blob: bytes) -> None:
    sock_obj.sendall(_LEN.pack(len(blob)) + blob)


def _recv_raw(sock_obj: socket.socket) -> bytes:
    (length,) = _LEN.unpack(_recv_exact(sock_obj, _LEN.size))
    if length > _HANDSHAKE_MAX:
        raise ConnectionError("oversized handshake frame")
    return _recv_exact(sock_obj, length)


def _deliver_challenge(sock_obj: socket.socket) -> bool:
    """Hub side: challenge a fresh connection; ``True`` iff it proves the key."""
    try:
        sock_obj.settimeout(_HANDSHAKE_TIMEOUT)
        nonce = os.urandom(_NONCE_LEN)
        _send_raw(sock_obj, _CHALLENGE + nonce)
        digest = _recv_raw(sock_obj)
        expected = hmac.new(_authkey(), nonce, "sha256").digest()
        if not hmac.compare_digest(digest, expected):
            _send_raw(sock_obj, _FAILURE)
            return False
        _send_raw(sock_obj, _WELCOME)
        sock_obj.settimeout(None)
        return True
    except (OSError, ConnectionError, struct.error):
        return False


def _answer_challenge(sock_obj: socket.socket) -> None:
    """Worker side: answer the hub's challenge or raise ``ConnectionError``."""
    blob = _recv_raw(sock_obj)
    if not blob.startswith(_CHALLENGE):
        raise ConnectionError("hub did not open with an auth challenge")
    _send_raw(sock_obj, hmac.new(_authkey(), blob[len(_CHALLENGE):], "sha256").digest())
    if _recv_raw(sock_obj) != _WELCOME:
        raise ConnectionError(
            "hub rejected this worker's auth digest — hub and workers must share "
            "one key (export the same REPRO_SOCK_AUTHKEY on both sides for "
            "externally launched workers)"
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class SockComm(_MessagingComm):
    """A rank endpoint whose transport is the worker's hub connection.

    Lives inside a worker process for the duration of one SPMD round.  All
    five transport primitives route through the worker's single socket (via
    the hub), and — uniquely among the communicators — real wire bytes are
    counted into ``bytes_sent`` / ``bytes_received``, because the transport
    actually frames them.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        channel: "_RoundChannel",
        recv_timeout: Optional[float] = None,
    ) -> None:
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self._size = size
        self._chan = channel
        self._stats = CommStats()
        self._unmatched: list[_Message] = []
        self._recv_timeout = None if recv_timeout is None else float(recv_timeout)

    @property
    def size(self) -> int:
        return self._size

    @property
    def stats(self) -> CommStats:
        return self._stats

    def _put(self, dest: int, msg: _Message) -> None:
        self._stats.bytes_sent += self._chan.send_msg(dest, msg)

    def _get(self, timeout: float) -> _Message:
        msg, nbytes = self._chan.get_msg(timeout)
        self._stats.bytes_received += nbytes
        return msg

    def _get_nowait(self) -> _Message:
        msg, nbytes = self._chan.get_msg(0.0)
        self._stats.bytes_received += nbytes
        return msg

    def _pending(self) -> list[_Message]:
        return self._unmatched

    def _barrier_wait(self) -> None:
        self._chan.barrier_wait(self.recv_timeout)


class _RoundChannel:
    """One SPMD round's view of a worker's hub connection."""

    def __init__(self, worker: "_Worker", round_id: int, rank: int) -> None:
        self._worker = worker
        self._round_id = round_id
        self._rank = rank
        self._generation = 0
        self._msgs, self._releases = worker.round_queues(round_id)

    def send_msg(self, dest: int, msg: _Message) -> int:
        return self._worker.send(
            ("msg", self._round_id, dest, msg.source, msg.tag, msg.payload)
        )

    def get_msg(self, timeout: float) -> tuple[_Message, int]:
        # queue.Empty propagates: _MessagingComm converts it to its timeout
        # error (blocking path) or stops draining (probe path).
        if timeout <= 0:
            return self._msgs.get_nowait()
        return self._msgs.get(timeout=timeout)

    def barrier_wait(self, timeout: float) -> None:
        gen = self._generation
        self._generation += 1
        self._worker.send(("barrier", self._round_id, self._rank, gen))
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self._rank}: barrier not reached by every rank within "
                    f"{timeout}s — a peer likely died or deadlocked"
                )
            try:
                released = self._releases.get(timeout=remaining)
            except queue.Empty:
                continue
            if released >= gen:  # stale releases of earlier generations are skipped
                return


class _Worker:
    """A resident rank executor: one hub connection, one reader thread.

    The reader thread owns the socket's receive side and dispatches frames:
    control frames (``spmd`` / ``task`` / ``shutdown``) into the control
    queue consumed by :meth:`run`, routed ``msg`` / ``barrier_release``
    frames into per-round queues keyed by the hub-assigned round id — so a
    message forwarded for a round this worker has not *started* yet is
    buffered, not lost, and a straggler frame from a finished round cannot
    contaminate the current one.
    """

    def __init__(self, host: str, port: int, connect_timeout: Optional[float] = None) -> None:
        timeout = (
            _env_float("REPRO_SOCK_CONNECT_TIMEOUT", 30.0)
            if connect_timeout is None
            else connect_timeout
        )
        fault_point("comm.connect", host=host, port=port)
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError:
                # The hub may not be up yet (workers and hub race at launch);
                # retry until the rendezvous deadline.
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)
        # Prove knowledge of the shared key before the hub will read (or
        # send) any pickle frame; the connect timeout still governs this.
        _answer_challenge(self._sock)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._ctl: "queue.SimpleQueue[tuple]" = queue.SimpleQueue()
        self._rounds: dict[int, tuple[queue.Queue, queue.Queue]] = {}
        self._rounds_lock = threading.Lock()
        self._reader = threading.Thread(target=self._read_loop, name="sock-reader", daemon=True)
        self._reader.start()

    def send(self, obj: Any) -> int:
        return _send_frame(self._sock, obj, self._send_lock)

    def round_queues(self, round_id: int) -> tuple[queue.Queue, queue.Queue]:
        with self._rounds_lock:
            if round_id not in self._rounds:
                self._rounds[round_id] = (queue.Queue(), queue.Queue())
            return self._rounds[round_id]

    def _drop_rounds_upto(self, round_id: int) -> None:
        with self._rounds_lock:
            for rid in [r for r in self._rounds if r <= round_id]:
                del self._rounds[rid]

    def _read_loop(self) -> None:
        try:
            while True:
                frame, raw = _recv_frame(self._sock)
                kind = frame[0]
                if kind == "msg":
                    _, rid, _dest, src, tag, payload = frame
                    self.round_queues(rid)[0].put((_Message(src, tag, payload), len(raw)))
                elif kind == "barrier_release":
                    _, rid, gen = frame
                    self.round_queues(rid)[1].put(gen)
                else:
                    self._ctl.put(frame)
        except Exception:
            # Any transport/deserialization failure is fatal for this worker:
            # a length-prefixed stream cannot carry a per-frame error reply
            # (the frame's round id may itself be unreadable), so close and
            # let the hub observe the EOF as a dead rank.
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._ctl.put(("shutdown",))

    def run(self) -> None:
        self.send(("hello", os.getpid()))
        while True:
            frame = self._ctl.get()
            kind = frame[0]
            if kind == "shutdown":
                break
            if kind == "spmd":
                self._run_rank(frame)
            elif kind == "task":
                self._run_task(frame)
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def _run_rank(self, frame: tuple) -> None:
        _, rid, rank, n_ranks, die, fn, extra, args, kwargs = frame
        if die:
            # The fault plane's kill_rank switch: die exactly like an
            # OOM-killed rank, before touching the communicator.
            os.kill(os.getpid(), signal.SIGKILL)
        comm = SockComm(rank, n_ranks, _RoundChannel(self, rid, rank))
        try:
            value = fn(comm, *resolve_payload(extra), *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — shipped to the hub
            self.send(
                ("result", rid, rank, "error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        else:
            self.send(("result", rid, rank, "ok", value, comm.stats))
        finally:
            self._drop_rounds_upto(rid)

    def _run_task(self, frame: tuple) -> None:
        _, task_id, fn, item_args = frame
        try:
            value = fn(*resolve_payload(item_args))
        except BaseException as exc:  # noqa: BLE001 — shipped to the hub
            self.send(
                ("task_result", task_id, "error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        else:
            self.send(("task_result", task_id, "ok", value))


def worker_main(host: str, port: int, connect_timeout: Optional[float] = None) -> None:
    """Run a resident socket worker until the hub shuts it down.

    The body of ``repro spmd-worker`` and of the pool's locally spawned
    workers: connect to the hub at ``(host, port)`` (retrying until the
    rendezvous deadline), then serve SPMD rounds and map tasks.
    """
    _Worker(host, port, connect_timeout).run()


def _local_worker_entry(host: str, port: int) -> None:  # pragma: no cover - child process
    worker_main(host, port)


# ----------------------------------------------------------------------
# hub side
# ----------------------------------------------------------------------
class _WorkerConn:
    """Hub-side state of one connected worker."""

    __slots__ = ("sock", "lock", "pid", "alive", "proc", "name")

    def __init__(self, sock_obj: socket.socket, name: str) -> None:
        self.sock = sock_obj
        self.lock = threading.Lock()
        self.pid: Optional[int] = None
        self.alive = True
        self.proc: Optional[Any] = None  # local spawn Process, if any
        self.name = name


class SockWorkerPool:
    """The hub: listener, router, and lifecycle owner of socket workers.

    One pool per process (see :func:`get_sock_pool`), mirroring the shared
    ``process``-backend pool: workers are brought up lazily at the first
    caller's need, grown when a larger round arrives, never shrunk, and torn
    down by :func:`shutdown_sock_pool` / interpreter exit.  Rounds are
    serialized — one SPMD round owns the rank→worker mapping at a time —
    while the routing itself runs on the per-connection reader threads.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        spawn: Optional[bool] = None,
    ) -> None:
        self.host = host if host is not None else os.environ.get("REPRO_SOCK_HOST", "127.0.0.1")
        env_port = os.environ.get("REPRO_SOCK_PORT")
        self.spawn = (
            spawn
            if spawn is not None
            else os.environ.get("REPRO_SOCK_SPAWN", "1") not in ("0", "false", "no")
        )
        bind_port = port if port is not None else (int(env_port) if env_port else 0)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, bind_port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._mu = threading.Lock()
        self._cv = threading.Condition(self._mu)
        self._workers: list[_WorkerConn] = []
        self._pending_procs: list[Any] = []
        self._closed = False
        self._round_seq = 0
        self._task_seq = 0
        self._round_ranks: dict[int, list[_WorkerConn]] = {}
        self._round_results: dict[int, dict[int, tuple]] = {}
        self._barriers: dict[tuple[int, int], set[int]] = {}
        self._task_results: dict[int, tuple] = {}
        self._live_tasks: set[int] = set()  # tids whose results anyone still wants
        self._round_mutex = threading.Lock()  # one round / map at a time
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sock-accept", daemon=True
        )
        self._accept_thread.start()

    # -- connection management -----------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock_obj, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: pool is shutting down
            conn = _WorkerConn(sock_obj, f"sock-worker-{len(self._workers)}")
            threading.Thread(
                target=self._conn_loop, args=(conn,), name=f"{conn.name}-reader", daemon=True
            ).start()

    def _conn_loop(self, conn: _WorkerConn) -> None:
        if not _deliver_challenge(conn.sock):
            # Unauthenticated peer: drop it before reading a single pickle
            # frame.  It was never registered, so nothing to mark dead.
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            return
        try:
            while True:
                frame, raw = _recv_frame(conn.sock)
                self._dispatch(conn, frame, raw)
        except Exception:
            self._mark_conn_dead(conn)

    def _mark_conn_dead(self, conn: _WorkerConn) -> None:
        with self._cv:
            conn.alive = False
            self._cv.notify_all()

    def _dispatch(self, conn: _WorkerConn, frame: tuple, raw: bytes) -> None:
        kind = frame[0]
        if kind == "hello":
            with self._cv:
                conn.pid = frame[1]
                self._workers.append(conn)
                self._cv.notify_all()
        elif kind == "msg":
            _, rid, dest, _src, _tag, _payload = frame
            with self._mu:
                ranks = self._round_ranks.get(rid)
                target = ranks[dest] if ranks is not None and 0 <= dest < len(ranks) else None
            if target is not None:
                # Forward the exact wire bytes — no re-pickling pass.  A send
                # failure means the *destination* died: mark it dead rather
                # than letting the exception escape into this (healthy)
                # sender's _conn_loop and kill the wrong connection.
                try:
                    _send_frame(target.sock, None, target.lock, raw=raw)
                except OSError:
                    self._mark_conn_dead(target)
        elif kind == "barrier":
            _, rid, rank, gen = frame
            release = False
            with self._mu:
                ranks = self._round_ranks.get(rid)
                if ranks is not None:
                    arrived = self._barriers.setdefault((rid, gen), set())
                    arrived.add(rank)
                    if len(arrived) == len(ranks):
                        del self._barriers[(rid, gen)]
                        release = True
            if release:
                for peer in ranks:
                    try:
                        _send_frame(peer.sock, ("barrier_release", rid, gen), peer.lock)
                    except OSError:
                        self._mark_conn_dead(peer)
        elif kind == "result":
            _, rid, rank, status, a, b = frame
            with self._cv:
                results = self._round_results.get(rid)
                if results is not None:
                    results[rank] = (status, a, b)
                    self._cv.notify_all()
        elif kind == "task_result":
            with self._cv:
                # Results of maps that already returned (error fast-path) are
                # dropped, not stored: a long-lived hub must not accumulate
                # stale entries for task ids nobody will ever collect.
                if frame[1] in self._live_tasks:
                    self._task_results[frame[1]] = frame[2:]
                    self._cv.notify_all()

    def _alive_workers(self) -> list[_WorkerConn]:
        return [w for w in self._workers if w.alive]

    def n_workers(self) -> int:
        with self._mu:
            return len(self._alive_workers())

    def ensure_workers(self, n: int) -> list[_WorkerConn]:
        """Bring the pool up to ``n`` live workers (spawn or wait for external).

        Raises ``OSError`` — the degradable bring-up failure — when the
        rendezvous deadline passes with too few workers connected.
        """
        deadline = time.monotonic() + _env_float("REPRO_SOCK_ACCEPT_TIMEOUT", 30.0)
        with self._cv:
            if self.spawn:
                missing = n - len(self._alive_workers())
                if missing > 0:
                    ctx = multiprocessing.get_context("spawn")
                    for _ in range(missing):
                        proc = ctx.Process(
                            target=_local_worker_entry,
                            args=(self.host, self.port),
                            daemon=True,
                        )
                        proc.start()
                        # Adopted by the matching conn at hello time (below).
                        self._pending_procs.append(proc)
            while len(self._alive_workers()) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise OSError(
                        f"socket worker rendezvous timed out: {len(self._alive_workers())} "
                        f"of {n} workers connected to {self.host}:{self.port}"
                    )
                self._cv.wait(timeout=min(remaining, watchdog_poll()))
            workers = self._alive_workers()[:n]
            # Pair locally spawned processes with their connections by pid so
            # shutdown can reap them.
            by_pid = {w.pid: w for w in self._workers if w.proc is None}
            for proc in list(self._pending_procs):
                w = by_pid.get(proc.pid)
                if w is not None:
                    w.proc = proc
                    self._pending_procs.remove(proc)
            return workers

    # -- SPMD rounds -----------------------------------------------------
    def run_round(
        self,
        fn: Callable[..., Any],
        n_ranks: int,
        payloads: list[tuple[Any, ...]],
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        kill_ranks: Optional[set] = None,
    ) -> tuple[list[Any], list[CommStats]]:
        """Execute one SPMD round; returns ``(values, stats)`` in rank order."""
        from .runner import DeadRankError  # lazy: avoid import cycle

        kill_ranks = kill_ranks or set()
        with self._round_mutex:
            conns = self.ensure_workers(n_ranks)
            with self._mu:
                self._round_seq += 1
                rid = self._round_seq
                self._round_ranks[rid] = conns
                results: dict[int, tuple] = {}
                self._round_results[rid] = results
            try:
                for r, conn in enumerate(conns):
                    _send_frame(
                        conn.sock,
                        ("spmd", rid, r, n_ranks, r in kill_ranks, fn, payloads[r], args, kwargs),
                        conn.lock,
                    )
                self._wait_round(rid, conns, results, DeadRankError)
            finally:
                with self._mu:
                    self._round_ranks.pop(rid, None)
                    self._round_results.pop(rid, None)
                    for key in [k for k in self._barriers if k[0] == rid]:
                        del self._barriers[key]
            values = [None] * n_ranks
            stats = [CommStats() for _ in range(n_ranks)]
            for r in range(n_ranks):
                _status, value, rank_stats = results[r]
                values[r] = value
                stats[r] = rank_stats
            return values, stats

    def _wait_round(
        self,
        rid: int,
        conns: list[_WorkerConn],
        results: dict[int, tuple],
        dead_rank_error: type,
    ) -> None:
        with self._cv:
            while True:
                for rank, item in results.items():
                    if item[0] == "error":
                        _status, message, tb = item
                        raise RuntimeError(
                            f"SPMD rank {rank} failed: {message}\n--- rank traceback ---\n{tb}"
                        )
                if len(results) == len(conns):
                    return
                dead = [r for r, c in enumerate(conns) if not c.alive and r not in results]
                if dead:
                    # Drain grace: results already in flight may still land.
                    self._cv.wait(timeout=SOCK_DRAIN_TIMEOUT)
                    still = [r for r, c in enumerate(conns) if not c.alive and r not in results]
                    if still:
                        self._reap_dead()
                        raise dead_rank_error(
                            f"SPMD socket backend: rank(s) {still} died without "
                            f"reporting a result"
                        )
                    continue
                self._cv.wait(timeout=watchdog_poll())

    def _reap_dead(self) -> None:
        """Drop dead connections and join their local processes (under _cv)."""
        for w in self._workers:
            if not w.alive:
                try:
                    w.sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                if w.proc is not None:
                    w.proc.join(timeout=5.0)
        self._workers = [w for w in self._workers if w.alive]

    # -- map tasks -------------------------------------------------------
    def run_map(self, payloads: Sequence[tuple[Callable[..., Any], tuple[Any, ...]]],
                processes: Optional[int] = None) -> list[Any]:
        """Scatter independent ``fn(*args)`` tasks over the workers (in order)."""
        from .runner import WorkerPoolError  # lazy: avoid import cycle

        import multiprocessing

        n = processes or min(len(payloads), multiprocessing.cpu_count()) or 1
        with self._round_mutex:
            conns = self.ensure_workers(max(1, n))
            with self._mu:
                first = self._task_seq + 1
                self._task_seq += len(payloads)
                task_ids = list(range(first, first + len(payloads)))
                self._live_tasks.update(task_ids)
            error: Optional[tuple[str, str]] = None
            dead: Optional[list[str]] = None
            out: Optional[list[Any]] = None
            try:
                for i, ((fn, item_args), tid) in enumerate(zip(payloads, task_ids)):
                    conn = conns[i % len(conns)]
                    _send_frame(conn.sock, ("task", tid, fn, item_args), conn.lock)
                with self._cv:
                    while True:
                        done = [tid for tid in task_ids if tid in self._task_results]
                        for tid in done:
                            item = self._task_results[tid]
                            if item[0] == "error":
                                error = (item[1], item[2])
                                break
                        if error is not None:
                            break
                        if len(done) == len(task_ids):
                            out = [self._task_results.pop(tid)[1] for tid in task_ids]
                            break
                        if any(not c.alive for c in conns):
                            # Drain grace: results already in flight may still land.
                            self._cv.wait(timeout=SOCK_DRAIN_TIMEOUT)
                            if any(tid not in self._task_results for tid in task_ids) and any(
                                not c.alive for c in conns
                            ):
                                dead = [c.name for c in conns if not c.alive]
                                break
                            continue
                        self._cv.wait(timeout=watchdog_poll())
            finally:
                # Retire this map's task ids no matter how it exits: late
                # results of abandoned tasks (error fast-path, a died worker,
                # a failed scatter) are dropped at dispatch instead of
                # accumulating across a long-lived process's future maps.
                with self._cv:
                    self._live_tasks.difference_update(task_ids)
                    for t in task_ids:
                        self._task_results.pop(t, None)
            if dead is not None:
                # shutdown_sock_pool re-acquires this pool's locks — it must
                # run outside the condition block above.
                shutdown_sock_pool()
                raise WorkerPoolError(
                    f"socket map backend: worker(s) {dead} died mid-map; "
                    f"the pool was shut down and will respawn on the next call"
                )
            if error is not None:
                message, tb = error
                raise RuntimeError(
                    f"socket map task failed: {message}\n--- worker traceback ---\n{tb}"
                )
            return out

    # -- teardown --------------------------------------------------------
    def shutdown(self) -> None:
        """Tell every worker to exit, reap local processes, close the listener."""
        with self._mu:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._workers = []
        for w in workers:
            if w.alive:
                try:
                    _send_frame(w.sock, ("shutdown",), w.lock)
                except OSError:
                    pass
            try:
                w.sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for w in workers:
            if w.proc is not None:
                w.proc.join(timeout=5.0)
                if w.proc.is_alive():  # pragma: no cover - stuck worker
                    w.proc.terminate()
                    w.proc.join(timeout=5.0)
        for proc in list(self._pending_procs):
            proc.terminate()
            proc.join(timeout=5.0)
            self._pending_procs.remove(proc)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# process-global pool singleton
# ----------------------------------------------------------------------
_pool: Optional[SockWorkerPool] = None
_pool_lock = threading.Lock()


def get_sock_pool() -> SockWorkerPool:
    """The process-wide socket worker pool, created lazily on first use."""
    global _pool
    with _pool_lock:
        if _pool is None:
            fault_point("pool.spawn", n_workers=0)
            _pool = SockWorkerPool()
        return _pool


def shutdown_sock_pool() -> None:
    """Tear down the socket pool (idempotent; also runs at interpreter exit)."""
    global _pool
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown()
            _pool = None


def sock_pool_size() -> int:
    """Live workers connected to the current pool (0 when none exists)."""
    with _pool_lock:
        return _pool.n_workers() if _pool is not None else 0


atexit.register(shutdown_sock_pool)
