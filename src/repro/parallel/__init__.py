"""Parallel runtime substrate: simulated MPI communicator, SPMD runner, cost model.

The paper's algorithms were written for a distributed-memory MPI machine.
This package substitutes an in-process equivalent (see DESIGN.md §2): the
algorithms exchange the same messages over :class:`SimComm`, rank work is
measured exactly, and :class:`CostModel` converts that work into simulated
wall-clock times for the scalability study.
"""

from .comm import ANY_SOURCE, ANY_TAG, CommStats, SimComm, SimCommWorld
from .rng import derive_seed, rank_rng, rank_rngs
from .runner import (
    RankResult,
    SpmdReport,
    available_backends,
    parallel_map,
    run_spmd,
    shutdown_worker_pool,
)
from .timing import CostModel, RankWork, efficiency, simulate_execution_time, speedup

__all__ = [
    "SimComm",
    "SimCommWorld",
    "CommStats",
    "ANY_SOURCE",
    "ANY_TAG",
    "run_spmd",
    "parallel_map",
    "available_backends",
    "shutdown_worker_pool",
    "RankResult",
    "SpmdReport",
    "CostModel",
    "RankWork",
    "simulate_execution_time",
    "speedup",
    "efficiency",
    "rank_rngs",
    "rank_rng",
    "derive_seed",
]
