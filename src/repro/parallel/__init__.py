"""Parallel runtime substrate: communicators, SPMD runner, shared memory, cost model.

The paper's algorithms were written for a distributed-memory MPI machine.
This package substitutes an offline equivalent: the algorithms exchange the
same messages over :class:`SimComm` (threads) or :class:`ProcComm` (real
processes over pipes), graph buffers are shared zero-copy between rank
processes through a :class:`SharedArena`, rank work is measured exactly, and
:class:`CostModel` converts that work into simulated wall-clock times for
the scalability study.
"""

from .comm import ANY_SOURCE, ANY_TAG, CommStats, ProcComm, SimComm, SimCommWorld
from .rng import derive_seed, rank_rng, rank_rngs
from .runner import (
    DeadRankError,
    RankResult,
    SpmdReport,
    SupervisionPolicy,
    available_backends,
    configure_supervision,
    parallel_map,
    pop_supervision_events,
    reset_supervision_counters,
    run_spmd,
    shutdown_worker_pool,
    supervision_counters,
    supervision_policy,
    worker_pool_size,
)
from .shm import (
    ArenaError,
    ArenaRef,
    SharedArena,
    arena_scope,
    attach,
    export_payload,
    get_active_arena,
    resolve_payload,
)
from .timing import CostModel, RankWork, efficiency, simulate_execution_time, speedup

__all__ = [
    "SimComm",
    "SimCommWorld",
    "ProcComm",
    "CommStats",
    "ANY_SOURCE",
    "ANY_TAG",
    "run_spmd",
    "parallel_map",
    "available_backends",
    "shutdown_worker_pool",
    "worker_pool_size",
    "DeadRankError",
    "SupervisionPolicy",
    "configure_supervision",
    "supervision_policy",
    "supervision_counters",
    "reset_supervision_counters",
    "pop_supervision_events",
    "SharedArena",
    "ArenaRef",
    "ArenaError",
    "arena_scope",
    "get_active_arena",
    "attach",
    "resolve_payload",
    "export_payload",
    "RankResult",
    "SpmdReport",
    "CostModel",
    "RankWork",
    "simulate_execution_time",
    "speedup",
    "efficiency",
    "rank_rngs",
    "rank_rng",
    "derive_seed",
]
