"""MPI-like message-passing communicators (threaded and process-backed).

The paper's experiments ran on the Firefly cluster with a distributed-memory
MPI implementation.  That substrate is unavailable offline, so this module
provides faithful *functional* replacements with MPI-style ``(source, tag)``
matching and mpi4py lower-case semantics (pickle-able Python objects,
blocking ``send``/``recv``, ``bcast``, ``gather``, ``allgather``,
``barrier``, ``reduce``) — what the with-communication chordal sampler needs:

:class:`SimCommWorld` / :class:`SimComm`
    one Python thread per rank, messages through in-process per-rank
    mailboxes (``queue.Queue``) — zero start-up cost, GIL-bound compute;
:class:`ProcComm`
    the same endpoint API over real OS processes: per-rank
    ``multiprocessing`` queues (pipes under the hood) and a shared process
    barrier, so communicating rank functions execute on real cores.  Built
    by the ``process`` backend of :func:`repro.parallel.runner.run_spmd`.

Both share the matching/collective implementation (:class:`_MessagingComm`);
only the transport primitives differ.  Every communicator records how many
messages and how many payload items it sent; the scalability cost model
consumes those counters to reproduce the shape of the paper's Figure 10
without real network hardware.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..faults import fault_point

__all__ = [
    "CommStats",
    "SimCommWorld",
    "SimComm",
    "ProcComm",
    "ANY_SOURCE",
    "ANY_TAG",
    "watchdog_poll",
]

#: Wildcard source rank for :meth:`SimComm.recv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`SimComm.recv`.
ANY_TAG = -1


def watchdog_poll() -> float:
    """Poll period (seconds) of the dead-rank/worker watchdog loops.

    The SPMD runner and the socket hub wake at this cadence to check for
    ranks that died without reporting.  Configurable via the
    ``REPRO_WATCHDOG_POLL`` environment variable (default 1.0s, floor 10ms)
    — tests that provoke dead ranks lower it so failure detection does not
    dominate their runtime.
    """
    raw = os.environ.get("REPRO_WATCHDOG_POLL")
    if raw:
        try:
            return max(0.01, float(raw))
        except ValueError:
            pass
    return 1.0


def _payload_items(obj: Any) -> int:
    """Best-effort size of a message payload in 'items' (edges, vertices, ...)."""
    try:
        return max(1, len(obj))  # type: ignore[arg-type]
    except TypeError:
        return 1


@dataclass
class CommStats:
    """Per-rank communication counters.

    ``bytes_sent`` / ``bytes_received`` count real transport bytes where the
    transport actually frames them (the socket transport); queue-backed
    transports leave them at zero rather than paying a second pickling pass
    just to measure payload size.
    """

    messages_sent: int = 0
    messages_received: int = 0
    items_sent: int = 0
    items_received: int = 0
    barriers: int = 0
    collectives: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def merge(self, other: "CommStats") -> "CommStats":
        """Return element-wise sums of two counter sets."""
        return CommStats(
            messages_sent=self.messages_sent + other.messages_sent,
            messages_received=self.messages_received + other.messages_received,
            items_sent=self.items_sent + other.items_sent,
            items_received=self.items_received + other.items_received,
            barriers=self.barriers + other.barriers,
            collectives=self.collectives + other.collectives,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form (serve stats, result ``extra`` payloads)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "items_sent": self.items_sent,
            "items_received": self.items_received,
            "barriers": self.barriers,
            "collectives": self.collectives,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any


class SimCommWorld:
    """Shared state for a group of :class:`SimComm` endpoints.

    A world owns one mailbox per rank, a reusable barrier and the global
    communication statistics.  Create one world per SPMD execution; ranks must
    not be reused across concurrent executions.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self._mailboxes: list[queue.Queue[_Message]] = [queue.Queue() for _ in range(size)]
        self._unmatched: list[list[_Message]] = [[] for _ in range(size)]
        self._locks = [threading.Lock() for _ in range(size)]
        self._barrier = threading.Barrier(size)
        self.stats: list[CommStats] = [CommStats() for _ in range(size)]
        self._bcast_store: dict[tuple[int, int], Any] = {}
        self._collective_seq: list[int] = [0] * size

    def comm(self, rank: int) -> "SimComm":
        """Return the communicator endpoint for ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return SimComm(rank, self)

    def comms(self) -> list["SimComm"]:
        """Return one endpoint per rank, in rank order."""
        return [self.comm(r) for r in range(self.size)]

    def total_stats(self) -> CommStats:
        """Return the sum of all per-rank counters."""
        total = CommStats()
        for s in self.stats:
            total = total.merge(s)
        return total


class _MessagingComm:
    """Shared matching + collective machinery of the rank endpoints.

    Subclasses supply the transport: :meth:`_put` (deliver a message to a
    destination rank), :meth:`_get` (pull the next message addressed to this
    rank, blocking up to a timeout), :meth:`_get_nowait`, :meth:`_pending`
    (this rank's out-of-order buffer) and :meth:`_barrier_wait`.  Everything
    above those five primitives — ``(source, tag)`` matching, statistics,
    broadcast/gather/reduce/scatter — is identical across the threaded and
    the process-backed communicator.
    """

    #: Default timeout (seconds) for blocking receives; generous but finite so a
    #: protocol bug surfaces as an error instead of a hung test-suite.
    #: Overridable per endpoint (``recv_timeout`` constructor argument of the
    #: process/socket communicators) or process-wide via ``REPRO_COMM_TIMEOUT``.
    RECV_TIMEOUT = 60.0

    rank: int

    @property
    def recv_timeout(self) -> float:
        """Effective blocking-receive / barrier timeout of this endpoint.

        Resolution order: explicit ``recv_timeout`` constructor argument,
        then the ``REPRO_COMM_TIMEOUT`` environment variable (spawned rank
        processes inherit the environment, so one export covers the whole
        world), then the class default :attr:`RECV_TIMEOUT`.
        """
        explicit = getattr(self, "_recv_timeout", None)
        if explicit is not None:
            return explicit
        env = os.environ.get("REPRO_COMM_TIMEOUT")
        if env:
            try:
                return float(env)
            except ValueError:
                pass
        return self.RECV_TIMEOUT

    @property
    def size(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def stats(self) -> CommStats:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- transport primitives (subclass responsibility) -----------------
    def _put(self, dest: int, msg: _Message) -> None:
        raise NotImplementedError

    def _get(self, timeout: float) -> _Message:
        raise NotImplementedError

    def _get_nowait(self) -> _Message:
        raise NotImplementedError

    def _pending(self) -> list[_Message]:
        raise NotImplementedError

    def _barrier_wait(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest`` with ``tag`` (buffered, never blocks)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        fault_point("comm.send", rank=self.rank, dest=dest, tag=tag)
        self.stats.messages_sent += 1
        self.stats.items_sent += _payload_items(obj)
        self._put(dest, _Message(self.rank, tag, obj))

    # mpi4py-compatible alias: buffered sends make isend identical to send here.
    isend = send

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Receive one message matching ``(source, tag)``; blocks until available."""
        fault_point("comm.recv", rank=self.rank, source=source, tag=tag)
        matched = self._take_matching(source, tag)
        self.stats.messages_received += 1
        self.stats.items_received += _payload_items(matched.payload)
        return matched.payload

    def _take_matching(self, source: int, tag: int) -> _Message:
        def matches(msg: _Message) -> bool:
            return (source == ANY_SOURCE or msg.source == source) and (
                tag == ANY_TAG or msg.tag == tag
            )

        pending = self._pending()
        for i, msg in enumerate(pending):
            if matches(msg):
                return pending.pop(i)
        while True:
            try:
                msg = self._get(timeout=self.recv_timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"rank {self.rank}: no message matching source={source} tag={tag} "
                    f"arrived within {self.recv_timeout}s — likely a protocol deadlock"
                ) from None
            if matches(msg):
                return msg
            pending.append(msg)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Return ``True`` when a matching message is already buffered (non-blocking)."""
        def matches(msg: _Message) -> bool:
            return (source == ANY_SOURCE or msg.source == source) and (
                tag == ANY_TAG or msg.tag == tag
            )

        pending = self._pending()
        if any(matches(m) for m in pending):
            return True
        # Drain the queue into the unmatched buffer without blocking.
        while True:
            try:
                msg = self._get_nowait()
            except queue.Empty:
                break
            pending.append(msg)
        return any(matches(m) for m in pending)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        fault_point("comm.barrier", rank=self.rank)
        self.stats.barriers += 1
        self._barrier_wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank; returns the object everywhere."""
        self.stats.collectives += 1
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=_BCAST_TAG)
            return obj
        return self.recv(source=root, tag=_BCAST_TAG)

    def gather(self, obj: Any, root: int = 0) -> Optional[list[Any]]:
        """Gather one object per rank at ``root`` (rank order); other ranks get ``None``."""
        self.stats.collectives += 1
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                # Tag messages with GATHER and read sender from the message.
                msg = self._take_matching(ANY_SOURCE, _GATHER_TAG)
                self.stats.messages_received += 1
                self.stats.items_received += _payload_items(msg.payload)
                out[msg.source] = msg.payload
            return out
        self.send(obj, root, tag=_GATHER_TAG)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank and broadcast the list back to everyone."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Optional[Any]:
        """Reduce per-rank values at ``root`` with the binary operator ``op``."""
        gathered = self.gather(obj, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce across all ranks and broadcast the result back."""
        reduced = self.reduce(obj, op, root=0)
        return self.bcast(reduced, root=0)

    def scatter(self, objs: Optional[list[Any]], root: int = 0) -> Any:
        """Scatter one list element per rank from ``root``."""
        self.stats.collectives += 1
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("root must supply exactly one object per rank")
            for dest in range(self.size):
                if dest != root:
                    self.send(objs[dest], dest, tag=_SCATTER_TAG)
            return objs[root]
        return self.recv(source=root, tag=_SCATTER_TAG)


class SimComm(_MessagingComm):
    """The per-rank endpoint of a :class:`SimCommWorld` (threaded backend).

    The API mimics mpi4py's pickle-based methods; see the module docstring.
    State (mailboxes, unmatched buffers, statistics, barrier) lives in the
    world, so endpoints are cheap throwaway handles.
    """

    def __init__(self, rank: int, world: SimCommWorld) -> None:
        self.rank = rank
        self.world = world

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def stats(self) -> CommStats:
        return self.world.stats[self.rank]

    def _put(self, dest: int, msg: _Message) -> None:
        self.world._mailboxes[dest].put(msg)

    def _get(self, timeout: float) -> _Message:
        return self.world._mailboxes[self.rank].get(timeout=timeout)

    def _get_nowait(self) -> _Message:
        return self.world._mailboxes[self.rank].get_nowait()

    def _pending(self) -> list[_Message]:
        return self.world._unmatched[self.rank]

    def _barrier_wait(self) -> None:
        self.world._barrier.wait()


class ProcComm(_MessagingComm):
    """A rank endpoint whose transport is real ``multiprocessing`` queues.

    One instance lives in each rank *process* of the ``process`` SPMD
    backend: ``queues[r]`` is rank ``r``'s incoming mailbox (every rank holds
    endpoints for all mailboxes so it can send to any destination), and
    ``barrier`` is a shared :class:`multiprocessing.Barrier`.  Message
    payloads cross the pipe pickled, exactly like mpi4py's lower-case API;
    large arrays should travel as :class:`repro.parallel.shm.ArenaRef`
    handles instead of payload bytes.  Statistics are counted locally and
    shipped back with the rank's result.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        queues: Sequence[Any],
        barrier: Any,
        recv_timeout: Optional[float] = None,
    ) -> None:
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        if len(queues) != size:
            raise ValueError("one queue per rank is required")
        self.rank = rank
        self._size = size
        self._queues = list(queues)
        self._barrier = barrier
        self._stats = CommStats()
        self._unmatched: list[_Message] = []
        self._recv_timeout = None if recv_timeout is None else float(recv_timeout)

    @property
    def size(self) -> int:
        return self._size

    @property
    def stats(self) -> CommStats:
        return self._stats

    def _put(self, dest: int, msg: _Message) -> None:
        self._queues[dest].put(msg)

    def _get(self, timeout: float) -> _Message:
        return self._queues[self.rank].get(timeout=timeout)

    def _get_nowait(self) -> _Message:
        return self._queues[self.rank].get_nowait()

    def _pending(self) -> list[_Message]:
        return self._unmatched

    def _barrier_wait(self) -> None:
        # Bounded like recv: if a peer process dies before reaching the
        # barrier, every waiter gets a broken barrier instead of blocking
        # forever, and the error surfaces as this rank's failure.
        try:
            self._barrier.wait(timeout=self.recv_timeout)
        except threading.BrokenBarrierError:
            raise TimeoutError(
                f"rank {self.rank}: barrier not reached by every rank within "
                f"{self.recv_timeout}s — a peer likely died or deadlocked"
            ) from None


_BCAST_TAG = -101
_GATHER_TAG = -102
_SCATTER_TAG = -103
