"""Zero-copy shared-memory execution arena.

The ``process`` execution backend used to ship every rank's CSR sub-arrays by
pickling them through the ``spawn`` pool: the parent sliced one subgraph per
rank, serialized the arrays into a pipe, and the worker deserialized its own
private copy — so the index-native kernels spent their time waiting on
serialization instead of computing.  This module provides the zero-copy
alternative, following the partition-then-share-compact-buffers discipline of
data-partitioning architectures:

* :class:`SharedArena` exports numpy arrays into named
  :mod:`multiprocessing.shared_memory` segments **once per graph** (repeated
  exports of the same array object are deduplicated);
* an :class:`ArenaRef` is the picklable handle — ``(segment name, dtype,
  shape)`` — that replaces the array in a rank payload, so what crosses the
  process boundary is a few dozen bytes of metadata plus slice bounds;
* workers call :func:`attach` (usually via :func:`resolve_payload`) to map the
  segment and reconstruct a **read-only** numpy view; attachments are cached
  per process, so a pool worker that executes many ranks of the same graph
  maps each segment exactly once.

Lifecycle: the *creator* owns the segments — :meth:`SharedArena.unlink`
destroys them (idempotent; also registered as an interpreter-exit safety net).
Attach-side handles are cached in a bounded per-process table and closed on
eviction; on POSIX the memory itself survives until the last handle closes,
so unlinking while workers still hold views is safe.  The batch engine scopes
one arena per scale-group (:func:`arena_scope`): filters running inside the
group export into the shared arena, and the group tears it down at the end.
"""

from __future__ import annotations

import atexit
import hashlib
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Iterator, Mapping, Optional

import numpy as np

from ..faults import fault_point

__all__ = [
    "ArenaError",
    "ArenaRef",
    "SharedArena",
    "attach",
    "resolve_payload",
    "export_payload",
    "get_active_arena",
    "arena_scope",
    "owned_arena",
    "open_segment_count",
    "attached_handle_count",
]


class ArenaError(RuntimeError):
    """Misuse of a :class:`SharedArena` (export after close, attach after unlink, ...)."""


def _align(offset: int, boundary: int = 16) -> int:
    """Round ``offset`` up to the next multiple of ``boundary`` (dtype alignment)."""
    return (offset + boundary - 1) & ~(boundary - 1)


def _content_key(src: np.ndarray) -> tuple[bytes, str, tuple[int, ...]]:
    """Content-dedup key of a contiguous array: (blake2b digest, dtype, shape)."""
    return (
        hashlib.blake2b(src.data, digest_size=16).digest(),
        src.dtype.str,
        tuple(src.shape),
    )


@dataclass(frozen=True)
class ArenaRef:
    """Picklable handle to one exported array.

    ``name`` is the shared-memory segment name; it is ``None`` for empty
    arrays, which have no backing segment (POSIX shared memory cannot be
    zero-sized) and are reconstructed locally by :func:`attach`.  ``offset``
    locates the array inside its segment — several arrays exported together
    (:meth:`SharedArena.export_bundle`) share one segment, which costs one
    ``shm_open`` instead of one per array on both sides.
    """

    name: Optional[str]
    dtype: str
    shape: tuple[int, ...]
    offset: int = 0

    @property
    def nbytes(self) -> int:
        n = int(np.prod(self.shape)) if self.shape else 1
        return n * np.dtype(self.dtype).itemsize


class SharedArena:
    """Owner of a set of shared-memory segments holding exported arrays.

    Create one arena per graph (or per batch scale-group), export the compact
    buffers once, hand the resulting :class:`ArenaRef` payloads to every rank,
    and :meth:`unlink` when the group of runs is finished.  Exports are
    always deduplicated by *array identity* (re-exporting the same object is
    a dict hit); with ``content_dedup=True`` additionally by *content
    digest*, so a rebuilt-but-equal array — e.g. the CSR buffers of the same
    graph reconstructed by the next run of a batch scale-group — reuses the
    existing segment instead of pinning another copy of the graph in shared
    memory for the arena's lifetime.  Content dedup costs one hash pass per
    fresh export, which buys nothing for a private single-call arena, so it
    is off by default and enabled by :func:`arena_scope` for the long-lived
    ambient arenas that actually see repeated content.
    """

    def __init__(self, content_dedup: bool = False) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._by_id: dict[int, tuple[weakref.ref, ArenaRef]] = {}
        self._by_digest: Optional[dict[tuple[bytes, str, tuple[int, ...]], ArenaRef]] = (
            {} if content_dedup else None
        )
        self._lock = threading.Lock()
        self._closed = False
        self._unlinked = False
        _ALL_ARENAS.add(self)

    # ------------------------------------------------------------------
    # export side (creator process)
    # ------------------------------------------------------------------
    def export(self, array: np.ndarray) -> ArenaRef:
        """Copy ``array`` into a shared segment and return its :class:`ArenaRef`.

        The copy happens exactly once per array object: re-exporting the same
        object returns the cached ref.  Empty arrays get a segment-less ref.
        A single-entry :meth:`export_bundle` — one dedup pipeline serves both.
        """
        return self.export_bundle({"array": array})["array"]

    def export_many(
        self, arrays: Mapping[str, Optional[np.ndarray]]
    ) -> dict[str, Optional[ArenaRef]]:
        """Export a named set of arrays; ``None`` values pass through as ``None``."""
        return {k: (None if v is None else self.export(v)) for k, v in arrays.items()}

    def export_bundle(
        self, arrays: Mapping[str, Optional[np.ndarray]]
    ) -> dict[str, Optional[ArenaRef]]:
        """Export a named set of arrays into **one** shared segment.

        The refs share a segment name and differ by (16-byte aligned)
        offset, so the whole bundle costs one ``shm_open`` on each side —
        the fast path for a filter's per-graph payload.  Already-exported
        arrays reuse their cached refs; ``None`` values pass through.
        """
        fault_point("arena.export", n_arrays=len(arrays))
        with self._lock:
            if self._closed or self._unlinked:
                raise ArenaError("cannot export into a closed/unlinked arena")
            out: dict[str, Optional[ArenaRef]] = {}
            fresh: list[tuple[int, np.ndarray, np.ndarray, tuple, list[str]]] = []
            fresh_keys_by_id: dict[int, list[str]] = {}
            fresh_keys_by_digest: dict[tuple, list[str]] = {}
            total = 0
            for key, value in arrays.items():
                if value is None:
                    out[key] = None
                    continue
                if not isinstance(value, np.ndarray):
                    raise TypeError(
                        f"can only export numpy arrays, got {type(value).__name__} for {key!r}"
                    )
                cached = self._by_id.get(id(value))
                if cached is not None and cached[0]() is value:
                    out[key] = cached[1]
                    continue
                dup = fresh_keys_by_id.get(id(value))
                if dup is not None:
                    dup.append(key)
                    continue
                src = np.ascontiguousarray(value)
                if src.nbytes == 0:
                    ref = ArenaRef(name=None, dtype=src.dtype.str, shape=tuple(src.shape))
                    self._by_id[id(value)] = (weakref.ref(value), ref)
                    out[key] = ref
                    continue
                digest = None
                if self._by_digest is not None:
                    digest = _content_key(src)
                    hit = self._by_digest.get(digest)
                    if hit is not None:
                        self._by_id[id(value)] = (weakref.ref(value), hit)
                        out[key] = hit
                        continue
                    pending = fresh_keys_by_digest.get(digest)
                    if pending is not None:
                        pending.append(key)
                        continue
                keys = [key]
                fresh.append((id(value), value, src, digest, keys))
                fresh_keys_by_id[id(value)] = keys
                if digest is not None:
                    fresh_keys_by_digest[digest] = keys
                total = _align(total) + src.nbytes
            if not fresh:
                return out
            seg = shared_memory.SharedMemory(create=True, size=total)
            self._segments.append(seg)
            offset = 0
            for obj_id, original, src, digest, keys in fresh:
                offset = _align(offset)
                dst = np.ndarray(src.shape, dtype=src.dtype, buffer=seg.buf, offset=offset)
                dst[...] = src
                ref = ArenaRef(
                    name=seg.name, dtype=src.dtype.str, shape=tuple(src.shape), offset=offset
                )
                self._by_id[obj_id] = (weakref.ref(original), ref)
                if digest is not None:
                    self._by_digest[digest] = ref
                for key in keys:
                    out[key] = ref
                offset += src.nbytes
            return out

    def export_csr(self, csr: "Any") -> dict[str, ArenaRef]:
        """Export a :class:`~repro.graph.csr.CSRGraph`'s buffers (``indptr``/``indices``)."""
        indptr, indices = csr.export_buffers()
        return {"indptr": self.export(indptr), "indices": self.export(indices)}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(seg.size for seg in self._segments)

    def close(self) -> None:
        """Close this process's handles (idempotent; memory stays until unlink)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for seg in self._segments:
                try:
                    seg.close()
                except (BufferError, OSError):  # pragma: no cover - defensive
                    pass

    def unlink(self) -> None:
        """Destroy the segments (idempotent; implies :meth:`close`).

        Attached workers keep their existing views alive — POSIX frees the
        memory when the last handle closes — but new :func:`attach` calls on
        refs of this arena raise ``FileNotFoundError``.
        """
        self.close()
        with self._lock:
            if self._unlinked:
                return
            self._unlinked = True
            names = []
            for seg in self._segments:
                names.append(seg.name)
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._segments.clear()
            self._by_id.clear()
            if self._by_digest is not None:
                self._by_digest.clear()
        # Drop this process's cached attachments of the destroyed segments so
        # an attach-after-unlink fails here exactly like it does in a worker.
        _evict_attached(names)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "unlinked" if self._unlinked else ("closed" if self._closed else "open")
        return f"SharedArena(n_segments={self.n_segments}, bytes={self.total_bytes}, {state})"


#: Every arena ever created in this process; unlinked as an interpreter-exit
#: safety net so no /dev/shm segments outlive an interactive session.
_ALL_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()


def _cleanup_all_arenas() -> None:
    # The worker pool must be down before any arena is unlinked: pool workers
    # attach segments lazily, and a worker racing an unlink would die on
    # FileNotFoundError instead of exiting cleanly.  atexit's LIFO order makes
    # the pool hook run first only when :mod:`.runner` was imported after this
    # module, so the ordering is enforced here instead of relied upon.
    try:
        from .runner import shutdown_worker_pool

        shutdown_worker_pool()
    except Exception:  # pragma: no cover - defensive (partial interpreter)
        pass
    for arena in list(_ALL_ARENAS):
        try:
            arena.unlink()
        except Exception:  # pragma: no cover - defensive
            pass


atexit.register(_cleanup_all_arenas)


def open_segment_count() -> int:
    """Shared-memory segments created by this process and not yet unlinked.

    The open-handle accounting of the arena layer: a component that owns
    arena lifecycles (the batch engine's scale-groups, the resident service's
    start/stop cycles) can assert it returns to its baseline after teardown —
    a nonzero delta is a leaked ``/dev/shm`` segment that would otherwise
    survive until interpreter exit.
    """
    return sum(arena.n_segments for arena in list(_ALL_ARENAS) if not arena._unlinked)


def attached_handle_count() -> int:
    """Attach-side segment handles currently cached in this process."""
    with _attach_lock:
        return len(_attached)


# ----------------------------------------------------------------------
# attach side (worker processes; also works in-process)
# ----------------------------------------------------------------------
#: Per-process cache of attached segment *handles*, keyed by segment name.
#: Bounded tightly: an unlinked segment's memory survives for as long as any
#: process still maps it, so a long-lived pool worker that cached every
#: segment it ever attached would pin the tmpfs pages of long-dead graphs.
#: A handful of entries is enough — the cache exists so the many ranks of
#: *one* payload map each segment once.  Array views are rebuilt per
#: :func:`attach` call on top of the cached mapping — a plain ``np.ndarray``
#: construction, no syscall.
_ATTACH_CACHE_SIZE = 8
_attached: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_attach_lock = threading.Lock()


def _close_segment(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    except (BufferError, OSError):  # a view of it is still referenced somewhere
        pass


def _evict_attached(names: list[str]) -> None:
    """Close and forget the local attachments of the given segments."""
    with _attach_lock:
        for name in names:
            seg = _attached.pop(name, None)
            if seg is not None:
                _close_segment(seg)


def _segment(name: str) -> shared_memory.SharedMemory:
    """Open (or recall) the named segment; evicts the oldest over the cap."""
    with _attach_lock:
        seg = _attached.get(name)
        if seg is not None:
            _attached.move_to_end(name)
            return seg
        seg = shared_memory.SharedMemory(name=name)
        _attached[name] = seg
        while len(_attached) > _ATTACH_CACHE_SIZE:
            _, old = _attached.popitem(last=False)
            _close_segment(old)
        return seg


def attach(ref: ArenaRef) -> np.ndarray:
    """Return a read-only numpy view of the array behind ``ref``.

    Raises ``FileNotFoundError`` when the segment has been unlinked.
    Segment handles are cached per process, so repeated rank tasks over the
    same graph map each segment once.
    """
    if ref.name is None:
        empty = np.empty(ref.shape, dtype=np.dtype(ref.dtype))
        empty.setflags(write=False)
        return empty
    fault_point("arena.attach", name=ref.name)
    seg = _segment(ref.name)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf, offset=ref.offset)
    view.setflags(write=False)
    return view


def resolve_payload(obj: Any) -> Any:
    """Recursively replace every :class:`ArenaRef` in ``obj`` with its array view.

    Dicts, lists and tuples are rebuilt (preserving type); everything else
    passes through untouched.  This is what the process-backend workers run
    on their arguments before calling the rank function.
    """
    if isinstance(obj, ArenaRef):
        return attach(obj)
    if isinstance(obj, tuple):
        return tuple(resolve_payload(v) for v in obj)
    if isinstance(obj, list):
        return [resolve_payload(v) for v in obj]
    if isinstance(obj, dict):
        return {k: resolve_payload(v) for k, v in obj.items()}
    return obj


def export_payload(obj: Any, arena: SharedArena) -> Any:
    """Recursively replace every numpy array in ``obj`` with an :class:`ArenaRef`.

    The inverse of :func:`resolve_payload`: what the ``process-shm`` backends
    run on rank payloads before pickling them, so only refs cross the pipe.
    """
    if isinstance(obj, np.ndarray):
        return arena.export(obj)
    if isinstance(obj, tuple):
        return tuple(export_payload(v, arena) for v in obj)
    if isinstance(obj, list):
        return [export_payload(v, arena) for v in obj]
    if isinstance(obj, dict):
        return {k: export_payload(v, arena) for k, v in obj.items()}
    return obj


# ----------------------------------------------------------------------
# ambient arena (scoped reuse across runs)
# ----------------------------------------------------------------------
class _AmbientStack(threading.local):
    """Per-thread stack of active arenas.

    Thread-local so two threads running scoped work concurrently (a batch
    group in one, an ad-hoc filter in another) cannot adopt — and then
    unlink — each other's arenas.
    """

    def __init__(self) -> None:
        self.stack: list[SharedArena] = []


_active_arenas = _AmbientStack()


def get_active_arena() -> Optional[SharedArena]:
    """The innermost arena opened by :func:`arena_scope` in this thread."""
    stack = _active_arenas.stack
    return stack[-1] if stack else None


@contextmanager
def owned_arena() -> Iterator[SharedArena]:
    """The ambient arena when one is active, else a private one.

    The shared ownership rule of every ``process-shm`` code path in one
    place: inside an :func:`arena_scope` the scope's arena is reused (and
    left alive — the scope owns it); otherwise a fresh arena is created and
    unlinked when the ``with`` block exits.
    """
    active = get_active_arena()
    if active is not None:
        yield active
        return
    arena = SharedArena()
    try:
        yield arena
    finally:
        arena.unlink()


@contextmanager
def arena_scope(arena: Optional[SharedArena] = None) -> Iterator[SharedArena]:
    """Make an arena ambient for the duration of the ``with`` block.

    Filters running with a ``process-shm`` backend export into the ambient
    arena instead of creating (and tearing down) a private one per call, so a
    scale-group of batch runs shares segments.  When ``arena`` is ``None`` a
    fresh one is created and **unlinked on exit**; a caller-supplied arena is
    left alive (the caller owns its lifecycle).
    """
    created = arena is None
    # A scope's arena lives across many runs, so rebuilt-but-equal payloads
    # are expected — content dedup pays for itself there.
    scoped = SharedArena(content_dedup=True) if created else arena
    _active_arenas.stack.append(scoped)
    try:
        yield scoped
    finally:
        _active_arenas.stack.pop()
        if created:
            scoped.unlink()
