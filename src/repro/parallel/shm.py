"""Zero-copy shared-memory execution arena.

The ``process`` execution backend used to ship every rank's CSR sub-arrays by
pickling them through the ``spawn`` pool: the parent sliced one subgraph per
rank, serialized the arrays into a pipe, and the worker deserialized its own
private copy — so the index-native kernels spent their time waiting on
serialization instead of computing.  This module provides the zero-copy
alternative, following the partition-then-share-compact-buffers discipline of
data-partitioning architectures:

* :class:`SharedArena` exports numpy arrays into named
  :mod:`multiprocessing.shared_memory` segments **once per graph** (repeated
  exports of the same array object are deduplicated);
* an :class:`ArenaRef` is the picklable handle — ``(segment name, dtype,
  shape)`` — that replaces the array in a rank payload, so what crosses the
  process boundary is a few dozen bytes of metadata plus slice bounds;
* workers call :func:`attach` (usually via :func:`resolve_payload`) to map the
  segment and reconstruct a **read-only** numpy view; attachments are cached
  per process, so a pool worker that executes many ranks of the same graph
  maps each segment exactly once.

Lifecycle: the *creator* owns the segments — :meth:`SharedArena.unlink`
destroys them (idempotent; also registered as an interpreter-exit safety net).
Attach-side handles are cached in a bounded per-process table and closed on
eviction; on POSIX the memory itself survives until the last handle closes,
so unlinking while workers still hold views is safe.  The batch engine scopes
one arena per scale-group (:func:`arena_scope`): filters running inside the
group export into the shared arena, and the group tears it down at the end.

File-backed arenas (the scale-out tier)
---------------------------------------
``SharedArena(path=...)`` (alias :class:`FileArena`) keeps the exact same
``ArenaRef`` / ``export_bundle`` / content-dedup API but backs every segment
with a memory-mapped file under ``path`` instead of POSIX shm.  Two things
fall out of that swap:

* **persistence across process generations** — the arena maintains a JSON
  *manifest* (``manifest.json`` under ``path``) mapping content digests to
  segment files.  A new arena opened on the same path adopts the manifest,
  so re-exporting equal content (the CSR buffers of the same graph, rebuilt
  by a restarted ``repro serve``) is a digest hit against the *previous
  generation's* mapped file — no copy, no new segment.  ``close()`` keeps
  the files on disk (that is the point); ``unlink()`` purges them;
* **graphs larger than RAM** — mapped pages are evictable file cache, so
  CSR bundles can exceed physical memory and stream through
  ``induced_subgraph`` slices on demand.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import mmap
import os
import threading
import uuid
import weakref
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Iterator, Mapping, Optional, Union

try:  # POSIX only; file-backed manifests fall back to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

import numpy as np

from ..faults import fault_point

__all__ = [
    "ArenaError",
    "ArenaRef",
    "SharedArena",
    "FileArena",
    "attach",
    "resolve_payload",
    "export_payload",
    "get_active_arena",
    "arena_scope",
    "owned_arena",
    "open_segment_count",
    "attached_handle_count",
]


class ArenaError(RuntimeError):
    """Misuse of a :class:`SharedArena` (export after close, attach after unlink, ...)."""


def _align(offset: int, boundary: int = 16) -> int:
    """Round ``offset`` up to the next multiple of ``boundary`` (dtype alignment)."""
    return (offset + boundary - 1) & ~(boundary - 1)


def _content_key(src: np.ndarray) -> tuple[bytes, str, tuple[int, ...]]:
    """Content-dedup key of a contiguous array: (blake2b digest, dtype, shape)."""
    return (
        hashlib.blake2b(src.data, digest_size=16).digest(),
        src.dtype.str,
        tuple(src.shape),
    )


@dataclass(frozen=True)
class ArenaRef:
    """Picklable handle to one exported array.

    ``name`` is the shared-memory segment name (``kind="shm"``) or the
    segment file's absolute path (``kind="file"``); it is ``None`` for empty
    arrays, which have no backing segment (POSIX shared memory cannot be
    zero-sized) and are reconstructed locally by :func:`attach`.  ``offset``
    locates the array inside its segment — several arrays exported together
    (:meth:`SharedArena.export_bundle`) share one segment, which costs one
    ``shm_open`` / ``mmap`` instead of one per array on both sides.
    """

    name: Optional[str]
    dtype: str
    shape: tuple[int, ...]
    offset: int = 0
    kind: str = "shm"

    @property
    def nbytes(self) -> int:
        n = int(np.prod(self.shape)) if self.shape else 1
        return n * np.dtype(self.dtype).itemsize


class _FileSegment:
    """Memory-mapped file counterpart of ``SharedMemory`` (same tiny surface).

    ``create=True`` makes a fresh sparse file of ``size`` bytes and maps it
    writable (the export side fills it); otherwise the existing file is
    mapped read-only (the attach side), raising ``FileNotFoundError`` when
    the segment has been unlinked — the exact failure mode of a vanished
    shm segment.
    """

    __slots__ = ("name", "size", "buf", "_mmap", "_writable")

    def __init__(self, path: str, create: bool = False, size: int = 0) -> None:
        if create:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
            try:
                os.ftruncate(fd, size)
                self._mmap = mmap.mmap(fd, size, access=mmap.ACCESS_WRITE)
            finally:
                os.close(fd)
        else:
            fd = os.open(path, os.O_RDONLY)
            try:
                size = os.fstat(fd).st_size
                self._mmap = mmap.mmap(fd, size, access=mmap.ACCESS_READ)
            finally:
                os.close(fd)
        self.name = path
        self.size = size
        self.buf = memoryview(self._mmap)
        self._writable = create

    def close(self) -> None:
        if self._writable:
            self._mmap.flush()
        self.buf.release()
        self._mmap.close()  # raises BufferError while views are live (as shm does)

    def unlink(self) -> None:
        os.unlink(self.name)


class SharedArena:
    """Owner of a set of shared-memory segments holding exported arrays.

    Create one arena per graph (or per batch scale-group), export the compact
    buffers once, hand the resulting :class:`ArenaRef` payloads to every rank,
    and :meth:`unlink` when the group of runs is finished.  Exports are
    always deduplicated by *array identity* (re-exporting the same object is
    a dict hit); with ``content_dedup=True`` additionally by *content
    digest*, so a rebuilt-but-equal array — e.g. the CSR buffers of the same
    graph reconstructed by the next run of a batch scale-group — reuses the
    existing segment instead of pinning another copy of the graph in shared
    memory for the arena's lifetime.  Content dedup costs one hash pass per
    fresh export, which buys nothing for a private single-call arena, so it
    is off by default and enabled by :func:`arena_scope` for the long-lived
    ambient arenas that actually see repeated content.

    ``path`` selects the file-backed variant (see the module docstring):
    segments become memory-mapped files under ``path``, content dedup is
    forced on (persistence is built on the digest index), and that index is
    adopted from / persisted to ``path/manifest.json`` so equal content
    survives process generations.  :meth:`close` keeps the files on disk;
    :meth:`unlink` purges them and the manifest.
    """

    #: Manifest schema tag (bumped on incompatible layout changes).
    MANIFEST_SCHEMA = "arena-manifest/v1"

    def __init__(self, content_dedup: bool = False, path: Optional[str] = None) -> None:
        self._path = None if path is None else os.path.abspath(path)
        if self._path is not None:
            os.makedirs(self._path, exist_ok=True)
            content_dedup = True
        self._segments: list[Union[shared_memory.SharedMemory, _FileSegment]] = []
        self._by_id: dict[int, tuple[weakref.ref, ArenaRef]] = {}
        self._by_digest: Optional[dict[tuple[bytes, str, tuple[int, ...]], ArenaRef]] = (
            {} if content_dedup else None
        )
        self._lock = threading.Lock()
        self._closed = False
        self._unlinked = False
        if self._path is not None:
            self._adopt_manifest()
        _ALL_ARENAS.add(self)

    @property
    def kind(self) -> str:
        """``"shm"`` (POSIX shared memory) or ``"file"`` (memory-mapped files)."""
        return "shm" if self._path is None else "file"

    @property
    def path(self) -> Optional[str]:
        return self._path

    # ------------------------------------------------------------------
    # file-backed persistence (manifest)
    # ------------------------------------------------------------------
    @property
    def _manifest_file(self) -> str:
        assert self._path is not None
        return os.path.join(self._path, "manifest.json")

    @contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        """Cross-process exclusive lock over the arena directory's manifest.

        ``run_batch(jobs>1)`` hands the same ``arena_dir`` to concurrent
        worker processes, each with its own arena generation; every manifest
        read-modify-write (adopt, save, unlink) runs under an ``flock`` on a
        sidecar lockfile so concurrent writers serialize instead of
        last-writer-wins dropping each other's entries.  The lockfile itself
        is never deleted — unlinking it while a sibling holds the ``fd``
        would silently split the lock across two inodes.
        """
        assert self._path is not None
        fd = os.open(os.path.join(self._path, ".manifest.lock"), os.O_CREAT | os.O_RDWR, 0o600)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _adopt_manifest(self) -> None:
        """Adopt the previous generation's segments from ``path/manifest.json``.

        Each surviving segment file is mapped once and its digest entries
        repopulate the content index, so re-exports of equal content attach
        to the old file instead of copying — the warm-restart fast path.
        Missing segment files (a partially purged directory) are skipped;
        a malformed or foreign-schema manifest is ignored entirely, and the
        arena starts fresh and overwrites it on its next export.  The whole
        adopt holds the manifest lock so a concurrent generation's save (or
        unlink) cannot swap files out from under the mapping pass.
        """
        with self._manifest_lock():
            try:
                with open(self._manifest_file, encoding="utf-8") as fh:
                    manifest = json.load(fh)
            except (OSError, ValueError):
                return
            if manifest.get("schema") != self.MANIFEST_SCHEMA:
                return
            opened: dict[str, _FileSegment] = {}
            for entry in manifest.get("refs", ()):
                try:
                    file_path = os.path.join(self._path, entry["file"])
                    seg = opened.get(file_path)
                    if seg is None:
                        seg = _FileSegment(file_path)
                        opened[file_path] = seg
                        self._segments.append(seg)
                    ref = ArenaRef(
                        name=file_path,
                        dtype=entry["dtype"],
                        shape=tuple(entry["shape"]),
                        offset=int(entry["offset"]),
                        kind="file",
                    )
                    key = (bytes.fromhex(entry["digest"]), ref.dtype, ref.shape)
                    self._by_digest[key] = ref
                except (OSError, KeyError, TypeError, ValueError):
                    continue

    def _save_manifest(self) -> None:
        """Atomically publish the digest index (called under ``self._lock``).

        The write is a locked read-merge-replace, not a blind overwrite:
        entries already on disk whose segment files still exist are kept, so
        concurrent arena generations sharing one directory (batch ``jobs>1``)
        append to a common manifest instead of each clobbering the others'
        exports.  This process's own index wins on digest collisions.
        """
        merged: dict[tuple, dict] = {}
        with self._manifest_lock():
            try:
                with open(self._manifest_file, encoding="utf-8") as fh:
                    on_disk = json.load(fh)
            except (OSError, ValueError):
                on_disk = None
            if isinstance(on_disk, dict) and on_disk.get("schema") == self.MANIFEST_SCHEMA:
                for entry in on_disk.get("refs", ()):
                    try:
                        key = (entry["digest"], entry["dtype"], tuple(entry["shape"]))
                        if os.path.exists(os.path.join(self._path, entry["file"])):
                            merged[key] = entry
                    except (KeyError, TypeError):
                        continue
            for key, ref in self._by_digest.items():
                if ref.name is None or ref.kind != "file":
                    continue
                merged[(key[0].hex(), key[1], tuple(key[2]))] = {
                    "digest": key[0].hex(),
                    "dtype": ref.dtype,
                    "shape": list(ref.shape),
                    "file": os.path.basename(ref.name),
                    "offset": ref.offset,
                }
            blob = json.dumps(
                {"schema": self.MANIFEST_SCHEMA, "refs": list(merged.values())}, sort_keys=True
            )
            tmp = f"{self._manifest_file}.tmp-{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._manifest_file)

    def _new_segment(self, size: int) -> Union[shared_memory.SharedMemory, _FileSegment]:
        if self._path is None:
            return shared_memory.SharedMemory(create=True, size=size)
        name = os.path.join(self._path, f"seg-{uuid.uuid4().hex[:12]}.bin")
        return _FileSegment(name, create=True, size=size)

    # ------------------------------------------------------------------
    # export side (creator process)
    # ------------------------------------------------------------------
    def export(self, array: np.ndarray) -> ArenaRef:
        """Copy ``array`` into a shared segment and return its :class:`ArenaRef`.

        The copy happens exactly once per array object: re-exporting the same
        object returns the cached ref.  Empty arrays get a segment-less ref.
        A single-entry :meth:`export_bundle` — one dedup pipeline serves both.
        """
        return self.export_bundle({"array": array})["array"]

    def export_many(
        self, arrays: Mapping[str, Optional[np.ndarray]]
    ) -> dict[str, Optional[ArenaRef]]:
        """Export a named set of arrays; ``None`` values pass through as ``None``."""
        return {k: (None if v is None else self.export(v)) for k, v in arrays.items()}

    def export_bundle(
        self, arrays: Mapping[str, Optional[np.ndarray]]
    ) -> dict[str, Optional[ArenaRef]]:
        """Export a named set of arrays into **one** shared segment.

        The refs share a segment name and differ by (16-byte aligned)
        offset, so the whole bundle costs one ``shm_open`` on each side —
        the fast path for a filter's per-graph payload.  Already-exported
        arrays reuse their cached refs; ``None`` values pass through.
        """
        fault_point("arena.export", n_arrays=len(arrays))
        with self._lock:
            if self._closed or self._unlinked:
                raise ArenaError("cannot export into a closed/unlinked arena")
            out: dict[str, Optional[ArenaRef]] = {}
            fresh: list[tuple[int, np.ndarray, np.ndarray, tuple, list[str]]] = []
            fresh_keys_by_id: dict[int, list[str]] = {}
            fresh_keys_by_digest: dict[tuple, list[str]] = {}
            total = 0
            for key, value in arrays.items():
                if value is None:
                    out[key] = None
                    continue
                if not isinstance(value, np.ndarray):
                    raise TypeError(
                        f"can only export numpy arrays, got {type(value).__name__} for {key!r}"
                    )
                cached = self._by_id.get(id(value))
                if cached is not None and cached[0]() is value:
                    out[key] = cached[1]
                    continue
                dup = fresh_keys_by_id.get(id(value))
                if dup is not None:
                    dup.append(key)
                    continue
                src = np.ascontiguousarray(value)
                if src.nbytes == 0:
                    ref = ArenaRef(name=None, dtype=src.dtype.str, shape=tuple(src.shape))
                    self._by_id[id(value)] = (weakref.ref(value), ref)
                    out[key] = ref
                    continue
                digest = None
                if self._by_digest is not None:
                    digest = _content_key(src)
                    hit = self._by_digest.get(digest)
                    if hit is not None:
                        self._by_id[id(value)] = (weakref.ref(value), hit)
                        out[key] = hit
                        continue
                    pending = fresh_keys_by_digest.get(digest)
                    if pending is not None:
                        pending.append(key)
                        continue
                keys = [key]
                fresh.append((id(value), value, src, digest, keys))
                fresh_keys_by_id[id(value)] = keys
                if digest is not None:
                    fresh_keys_by_digest[digest] = keys
                total = _align(total) + src.nbytes
            if not fresh:
                return out
            seg = self._new_segment(total)
            self._segments.append(seg)
            offset = 0
            for obj_id, original, src, digest, keys in fresh:
                offset = _align(offset)
                dst = np.ndarray(src.shape, dtype=src.dtype, buffer=seg.buf, offset=offset)
                dst[...] = src
                ref = ArenaRef(
                    name=seg.name,
                    dtype=src.dtype.str,
                    shape=tuple(src.shape),
                    offset=offset,
                    kind=self.kind,
                )
                self._by_id[obj_id] = (weakref.ref(original), ref)
                if digest is not None:
                    self._by_digest[digest] = ref
                for key in keys:
                    out[key] = ref
                offset += src.nbytes
            if self._path is not None:
                self._save_manifest()
            return out

    def export_csr(self, csr: "Any") -> dict[str, ArenaRef]:
        """Export a :class:`~repro.graph.csr.CSRGraph`'s buffers (``indptr``/``indices``)."""
        indptr, indices = csr.export_buffers()
        return {"indptr": self.export(indptr), "indices": self.export(indices)}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(seg.size for seg in self._segments)

    def close(self) -> None:
        """Close this process's handles (idempotent; memory stays until unlink).

        For a file-backed arena this is the *persist* path: the segment
        files and the manifest stay on disk, and the next arena opened on
        the same ``path`` adopts them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for seg in self._segments:
                try:
                    seg.close()
                except (BufferError, OSError):  # pragma: no cover - defensive
                    pass

    def unlink(self) -> None:
        """Destroy the segments (idempotent; implies :meth:`close`).

        Attached workers keep their existing views alive — POSIX frees the
        memory when the last handle closes — but new :func:`attach` calls on
        refs of this arena raise ``FileNotFoundError``.  A file-backed
        arena's segment files and manifest are deleted from disk — a purge
        of the *directory*, so it is an owner-only operation: call it when
        no concurrent process is still exporting into / attaching from the
        same ``path`` (the manifest lock serializes it against in-flight
        adopts and saves, but cannot resurrect files for refs a sibling
        already handed out).
        """
        self.close()
        with self._lock:
            if self._unlinked:
                return
            self._unlinked = True
            names = []
            purge_guard = self._manifest_lock() if self._path is not None else nullcontext()
            with purge_guard:
                for seg in self._segments:
                    names.append(seg.name)
                    try:
                        seg.unlink()
                    except FileNotFoundError:  # pragma: no cover - already gone
                        pass
                self._segments.clear()
                self._by_id.clear()
                if self._by_digest is not None:
                    self._by_digest.clear()
                if self._path is not None:
                    try:
                        os.unlink(self._manifest_file)
                    except FileNotFoundError:
                        pass
        # Drop this process's cached attachments of the destroyed segments so
        # an attach-after-unlink fails here exactly like it does in a worker.
        _evict_attached(names)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "unlinked" if self._unlinked else ("closed" if self._closed else "open")
        return (
            f"{type(self).__name__}(kind={self.kind!r}, n_segments={self.n_segments}, "
            f"bytes={self.total_bytes}, {state})"
        )


class FileArena(SharedArena):
    """A :class:`SharedArena` backed by memory-mapped files under ``path``.

    Sugar for ``SharedArena(path=path)`` with ``path`` required — the
    spelling used by components that *only* make sense file-backed (the
    resident server's persistent bundle store).
    """

    def __init__(self, path: str, content_dedup: bool = True) -> None:
        super().__init__(content_dedup=content_dedup, path=path)


#: Every arena ever created in this process; unlinked as an interpreter-exit
#: safety net so no /dev/shm segments outlive an interactive session.
_ALL_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()


def _cleanup_all_arenas() -> None:
    # The worker pool must be down before any arena is unlinked: pool workers
    # attach segments lazily, and a worker racing an unlink would die on
    # FileNotFoundError instead of exiting cleanly.  atexit's LIFO order makes
    # the pool hook run first only when :mod:`.runner` was imported after this
    # module, so the ordering is enforced here instead of relied upon.
    try:
        from .runner import shutdown_worker_pool

        shutdown_worker_pool()
    except Exception:  # pragma: no cover - defensive (partial interpreter)
        pass
    for arena in list(_ALL_ARENAS):
        try:
            if arena._path is not None:
                # File-backed arenas persist by design: release the mappings
                # but leave the segment files + manifest for the next
                # generation.  Purging them here would defeat warm restarts.
                arena.close()
            else:
                arena.unlink()
        except Exception:  # pragma: no cover - defensive
            pass


atexit.register(_cleanup_all_arenas)


def open_segment_count() -> int:
    """Segments created/mapped by this process and not yet unlinked.

    The open-handle accounting of the arena layer, covering **both** arena
    kinds — POSIX shm segments and mapped segment files count alike.  A
    component that owns arena lifecycles (the batch engine's scale-groups,
    the resident service's start/stop cycles) can assert it returns to its
    baseline after teardown — a nonzero delta is a leaked ``/dev/shm``
    segment or stray arena-directory mapping that would otherwise survive
    until interpreter exit.

    A *closed* file-backed arena does not count: its mappings are released
    and the files persisting on disk is the feature, not a leak.  A closed
    shm arena still counts — the ``/dev/shm`` segment exists until unlink.
    """
    return sum(
        arena.n_segments
        for arena in list(_ALL_ARENAS)
        if not arena._unlinked and (arena._path is None or not arena._closed)
    )


def attached_handle_count() -> int:
    """Attach-side segment handles currently cached in this process."""
    with _attach_lock:
        return len(_attached)


# ----------------------------------------------------------------------
# attach side (worker processes; also works in-process)
# ----------------------------------------------------------------------
#: Per-process cache of attached segment *handles*, keyed by segment name.
#: Bounded tightly: an unlinked segment's memory survives for as long as any
#: process still maps it, so a long-lived pool worker that cached every
#: segment it ever attached would pin the tmpfs pages of long-dead graphs.
#: A handful of entries is enough — the cache exists so the many ranks of
#: *one* payload map each segment once.  Array views are rebuilt per
#: :func:`attach` call on top of the cached mapping — a plain ``np.ndarray``
#: construction, no syscall.
_ATTACH_CACHE_SIZE = 8
_attached: "OrderedDict[str, Union[shared_memory.SharedMemory, _FileSegment]]" = OrderedDict()
_attach_lock = threading.Lock()


def _close_segment(seg: Union[shared_memory.SharedMemory, _FileSegment]) -> None:
    try:
        seg.close()
    except (BufferError, OSError):  # a view of it is still referenced somewhere
        pass


def _evict_attached(names: list[str]) -> None:
    """Close and forget the local attachments of the given segments."""
    with _attach_lock:
        for name in names:
            seg = _attached.pop(name, None)
            if seg is not None:
                _close_segment(seg)


def _segment(name: str, kind: str = "shm") -> Union[shared_memory.SharedMemory, _FileSegment]:
    """Open (or recall) the named segment; evicts the oldest over the cap.

    ``kind`` selects the mapping primitive: ``shm_open`` for ``"shm"`` refs,
    a read-only file ``mmap`` for ``"file"`` refs.  The cache key is the
    segment name — shm names and file paths live in disjoint namespaces
    (paths are absolute, shm names are not), so one table serves both.
    """
    with _attach_lock:
        seg = _attached.get(name)
        if seg is not None:
            _attached.move_to_end(name)
            return seg
        if kind == "file":
            seg = _FileSegment(name)
        else:
            seg = shared_memory.SharedMemory(name=name)
        _attached[name] = seg
        while len(_attached) > _ATTACH_CACHE_SIZE:
            _, old = _attached.popitem(last=False)
            _close_segment(old)
        return seg


def attach(ref: ArenaRef) -> np.ndarray:
    """Return a read-only numpy view of the array behind ``ref``.

    Raises ``FileNotFoundError`` when the segment has been unlinked.
    Segment handles are cached per process, so repeated rank tasks over the
    same graph map each segment once.
    """
    if ref.name is None:
        empty = np.empty(ref.shape, dtype=np.dtype(ref.dtype))
        empty.setflags(write=False)
        return empty
    fault_point("arena.attach", name=ref.name)
    seg = _segment(ref.name, ref.kind)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf, offset=ref.offset)
    view.setflags(write=False)
    return view


def resolve_payload(obj: Any) -> Any:
    """Recursively replace every :class:`ArenaRef` in ``obj`` with its array view.

    Dicts, lists and tuples are rebuilt (preserving type); everything else
    passes through untouched.  This is what the process-backend workers run
    on their arguments before calling the rank function.
    """
    if isinstance(obj, ArenaRef):
        return attach(obj)
    if isinstance(obj, tuple):
        return tuple(resolve_payload(v) for v in obj)
    if isinstance(obj, list):
        return [resolve_payload(v) for v in obj]
    if isinstance(obj, dict):
        return {k: resolve_payload(v) for k, v in obj.items()}
    return obj


def export_payload(obj: Any, arena: SharedArena) -> Any:
    """Recursively replace every numpy array in ``obj`` with an :class:`ArenaRef`.

    The inverse of :func:`resolve_payload`: what the ``process-shm`` backends
    run on rank payloads before pickling them, so only refs cross the pipe.
    """
    if isinstance(obj, np.ndarray):
        return arena.export(obj)
    if isinstance(obj, tuple):
        return tuple(export_payload(v, arena) for v in obj)
    if isinstance(obj, list):
        return [export_payload(v, arena) for v in obj]
    if isinstance(obj, dict):
        return {k: export_payload(v, arena) for k, v in obj.items()}
    return obj


# ----------------------------------------------------------------------
# ambient arena (scoped reuse across runs)
# ----------------------------------------------------------------------
class _AmbientStack(threading.local):
    """Per-thread stack of active arenas.

    Thread-local so two threads running scoped work concurrently (a batch
    group in one, an ad-hoc filter in another) cannot adopt — and then
    unlink — each other's arenas.
    """

    def __init__(self) -> None:
        self.stack: list[SharedArena] = []


_active_arenas = _AmbientStack()


def get_active_arena() -> Optional[SharedArena]:
    """The innermost arena opened by :func:`arena_scope` in this thread."""
    stack = _active_arenas.stack
    return stack[-1] if stack else None


@contextmanager
def owned_arena() -> Iterator[SharedArena]:
    """The ambient arena when one is active, else a private one.

    The shared ownership rule of every ``process-shm`` code path in one
    place: inside an :func:`arena_scope` the scope's arena is reused (and
    left alive — the scope owns it); otherwise a fresh arena is created and
    unlinked when the ``with`` block exits.
    """
    active = get_active_arena()
    if active is not None:
        yield active
        return
    arena = SharedArena()
    try:
        yield arena
    finally:
        arena.unlink()


@contextmanager
def arena_scope(
    arena: Optional[SharedArena] = None, *, path: Optional[str] = None
) -> Iterator[SharedArena]:
    """Make an arena ambient for the duration of the ``with`` block.

    Filters running with a ``process-shm`` backend export into the ambient
    arena instead of creating (and tearing down) a private one per call, so a
    scale-group of batch runs shares segments.  When ``arena`` is ``None`` a
    fresh one is created and **unlinked on exit**; a caller-supplied arena is
    left alive (the caller owns its lifecycle).

    ``path`` (only meaningful when ``arena`` is ``None``) creates the scope's
    arena **file-backed** under that directory instead: on exit it is closed,
    not unlinked, so its segments and manifest persist — the next scope over
    the same directory re-adopts equal payloads by content digest instead of
    re-exporting them.
    """
    created = arena is None
    # A scope's arena lives across many runs, so rebuilt-but-equal payloads
    # are expected — content dedup pays for itself there.
    scoped = SharedArena(content_dedup=True, path=path) if created else arena
    _active_arenas.stack.append(scoped)
    try:
        yield scoped
    finally:
        _active_arenas.stack.pop()
        if created:
            if scoped.kind == "file":
                scoped.close()
            else:
                scoped.unlink()
