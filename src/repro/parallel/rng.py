"""Deterministic per-rank random number streams.

The random-walk sampler and the synthetic data generators need randomness
that is (a) reproducible for a given seed and (b) *independent* across ranks,
so that adding processors changes the partitioning but not the statistical
behaviour of each rank's walk.  NumPy's ``SeedSequence.spawn`` mechanism
provides exactly this: one root seed deterministically derives a separate,
well-mixed child stream per rank.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["rank_rngs", "rank_rng", "derive_seed"]


def rank_rngs(seed: int, n_ranks: int) -> list[np.random.Generator]:
    """Return ``n_ranks`` independent generators derived from ``seed``."""
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    children = np.random.SeedSequence(seed).spawn(n_ranks)
    return [np.random.default_rng(c) for c in children]


def rank_rng(seed: int, rank: int, n_ranks: int) -> np.random.Generator:
    """Return the generator for one specific rank (same stream as ``rank_rngs``)."""
    if not 0 <= rank < n_ranks:
        raise ValueError(f"rank {rank} out of range for {n_ranks} ranks")
    return rank_rngs(seed, n_ranks)[rank]


def derive_seed(seed: int, *labels: Sequence) -> int:
    """Derive a new 32-bit seed from a root seed and a sequence of labels.

    Used to give each (dataset, ordering, filter) combination its own
    deterministic randomness without the combinations being correlated.  Label
    hashing uses CRC32 so the result is stable across processes and runs
    (Python's built-in string hash is salted per process).
    """
    import zlib

    entropy = [seed & 0xFFFFFFFF] + [zlib.crc32(str(l).encode("utf-8")) for l in labels]
    mix = np.random.SeedSequence(entropy)
    return int(mix.generate_state(1)[0])
