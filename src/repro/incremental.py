"""Incremental recompute: delta-updates for warm dataset bundles.

ROADMAP item 4's second half: the paper's online setting — classification
evidence arriving over time — needs a resident service that absorbs dataset
mutations without the cold-rebuild cliff.  This module is the engine: it
synthesises deterministic dataset mutations (:func:`synthesize_update`),
applies them to a warm :class:`~repro.pipeline.workflow.DatasetBundle`
through the structural-sharing delta paths of the four stateful layers
(:func:`apply_update`), and keeps the cold full-rebuild equivalent around as
the equivalence oracle (:func:`reference_apply_update`,
:func:`replay_reference`).

Delta-vs-rebuild decision table
-------------------------------

==============  =====================================================================
update kind     what the delta path does
==============  =====================================================================
add samples     ``with_samples`` append; the standardised memo **cannot** carry
                (a new column moves every gene's mean/std), so the correlation
                pass recomputes in full — but the study, ontology, annotation
                and scorer state are reused untouched.
add genes       ``with_genes`` append delta-extends the standardised memo
                (per-row standardisation), and
                :func:`~repro.expression.correlation.correlated_pair_arrays_delta`
                recomputes only the tiles touching new rows.
add terms       :meth:`~repro.ontology.go_dag.GODag.append_leaf_terms` extends
                the interned term index by one monotone remap; the enrichment
                pair table remaps its packed keys (or resets when the batch
                may have shortened existing term distances).
add annotations :meth:`~repro.ontology.annotation.AnnotationIndex.updated`
                rebuilds only the touched gene rows; the scorer drops only the
                per-edge memos touching those genes.
==============  =====================================================================

Downstream, the network views and MCODE cluster state are reused whenever
the thresholded ``(ii, jj)`` edge structure is unchanged (MCODE is
structure-only); the label/CSR views rebuild from the pair arrays whenever
any correlation moved (edges carry ``rho`` attributes).

Every delta output is pinned byte-identical to the cold reference: the
rebuild of a mutated dataset's state from nothing is ``prepare_dataset``
plus a deterministic replay of the whole update history — which is exactly
what the serve layer's ``reload`` alternative costs, and what
``benchmarks/bench_incremental.py`` measures the delta paths against.

A failed delta (chaos site ``incremental.delta``, or any unexpected error
mid-application) degrades to that reference replay instead of serving
corrupt warm state; the warm bundle must be considered consumed either way.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from .expression.correlation import (
    CorrelationThreshold,
    correlated_pair_arrays,
    correlated_pair_arrays_delta,
    csr_from_pair_arrays,
    network_from_pair_arrays,
)
from .expression.datasets import SyntheticStudy
from .expression.microarray import ExpressionMatrix
from .faults import fault_point
from .ontology.annotation import AnnotationIndex
from .pipeline.workflow import DatasetBundle, cluster_network, prepare_dataset

__all__ = [
    "UpdateSpec",
    "UpdateData",
    "UpdateReport",
    "synthesize_update",
    "apply_update",
    "reference_apply_update",
    "replay_reference",
]


@dataclass(frozen=True)
class UpdateSpec:
    """One dataset mutation: how many of each thing to append.

    Specs are pure *sizes* plus a seed — the actual values are synthesised
    deterministically from the pre-update state by :func:`synthesize_update`,
    so a spec log fully determines the mutated dataset (which is what makes
    the reference replay an oracle).
    """

    add_samples: int = 0
    add_genes: int = 0
    add_annotations: int = 0
    add_terms: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("add_samples", "add_genes", "add_annotations", "add_terms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not (self.add_samples or self.add_genes or self.add_annotations or self.add_terms):
            raise ValueError("an update must add at least one thing")

    def counts(self) -> dict[str, int]:
        return {
            "samples": self.add_samples,
            "genes": self.add_genes,
            "annotations": self.add_annotations,
            "terms": self.add_terms,
        }


@dataclass(frozen=True)
class UpdateData:
    """The synthesised payload of one :class:`UpdateSpec` against one state."""

    spec: UpdateSpec
    sample_values: Optional[np.ndarray]  #: (n_genes, add_samples) or None
    sample_names: tuple[str, ...]
    gene_values: Optional[np.ndarray]  #: (add_genes, n_samples + add_samples) or None
    gene_names: tuple[str, ...]
    term_specs: tuple[tuple[str, tuple[str, ...]], ...]  #: (term_id, parents)
    annotation_specs: tuple[tuple[str, tuple[str, ...]], ...]  #: (gene, terms)


@dataclass(frozen=True)
class UpdateReport:
    """What one :func:`apply_update` actually did."""

    mode: str  #: "delta" or "rebuild"
    dirty: frozenset  #: components touched: expression/network/ontology/annotations
    reused: tuple[str, ...]  #: heavyweight state carried over unrebuilt
    counts: dict[str, int]
    distances_safe: Optional[bool] = None  #: term-append safety verdict (terms only)


def synthesize_update(bundle: DatasetBundle, spec: UpdateSpec) -> UpdateData:
    """Deterministically synthesise ``spec``'s payload from the current state.

    The generator is seeded from the study seed, the spec seed and the
    current state's dimensions, so replaying the same spec log against a
    cold rebuild regenerates bit-identical payloads at every step — no data
    needs to be persisted alongside the log.
    """
    study = bundle.study
    matrix = study.matrix
    dag = bundle.scorer.dag
    table = bundle.scorer.annotations
    rng = np.random.default_rng(
        [
            study.seed,
            spec.seed,
            matrix.n_genes,
            matrix.n_samples,
            len(dag),
            table.n_annotations(),
        ]
    )
    n, m = matrix.n_genes, matrix.n_samples
    sample_values = None
    sample_names: tuple[str, ...] = ()
    if spec.add_samples:
        # New arrays resemble an existing one plus per-gene noise — realistic
        # (conditions repeat) and guaranteed to perturb correlations only
        # moderately.
        cols = []
        scale = float(matrix.values.std()) or 1.0
        for i in range(spec.add_samples):
            base = matrix.values[:, int(rng.integers(0, m))]
            cols.append(base + 0.35 * scale * rng.standard_normal(n))
        sample_values = np.stack(cols, axis=1)
        sample_names = tuple(
            f"{study.config.name}_sample_u{m + i:03d}" for i in range(spec.add_samples)
        )
    gene_values = None
    gene_names: tuple[str, ...] = ()
    if spec.add_genes:
        m_total = m + spec.add_samples
        rows = []
        for i in range(spec.add_genes):
            if rng.random() < 0.5:
                # Anchored just above the correlation threshold to an
                # existing gene — the appended row joins the network.
                anchor = matrix.values[int(rng.integers(0, n))]
                if sample_values is not None:
                    anchor = np.concatenate(
                        [anchor, sample_values[int(rng.integers(0, n))]]
                    )[:m_total]
                prev_std = (anchor - anchor.mean()) / (anchor.std() + 1e-12)
                fresh = rng.standard_normal(m_total)
                fresh -= fresh.mean()
                fresh -= (fresh @ prev_std / m_total) * prev_std
                fresh /= fresh.std() + 1e-12
                rho = 0.955 + 0.02 * rng.random()
                rows.append(rho * prev_std + np.sqrt(max(0.0, 1.0 - rho * rho)) * fresh)
            else:
                rows.append(rng.standard_normal(m_total))
        gene_values = np.stack(rows, axis=0)
        gene_names = tuple(
            f"{study.config.name}_UPD{n + i:06d}" for i in range(spec.add_genes)
        )
    term_specs: tuple[tuple[str, tuple[str, ...]], ...] = ()
    if spec.add_terms:
        existing = dag.terms()
        specs = []
        for i in range(spec.add_terms):
            tid = f"GO:U{len(existing) + len(specs):07d}"
            if rng.random() < 0.75 or len(existing) < 2:
                parents = (existing[int(rng.integers(0, len(existing)))],)
            else:
                pi = rng.choice(len(existing), size=2, replace=False)
                parents = (existing[int(pi[0])], existing[int(pi[1])])
            specs.append((tid, parents))
        term_specs = tuple(specs)
    annotation_specs: tuple[tuple[str, tuple[str, ...]], ...] = ()
    if spec.add_annotations:
        gene_pool = list(matrix.genes) + list(gene_names)
        term_pool = dag.terms()[1:] + [t for t, _p in term_specs]
        specs = []
        for i in range(spec.add_annotations):
            gene = gene_pool[int(rng.integers(0, len(gene_pool)))]
            k = int(rng.integers(1, 4))
            ti = rng.choice(len(term_pool), size=min(k, len(term_pool)), replace=False)
            specs.append((gene, tuple(term_pool[int(t)] for t in ti)))
        annotation_specs = tuple(specs)
    return UpdateData(
        spec=spec,
        sample_values=sample_values,
        sample_names=sample_names,
        gene_values=gene_values,
        gene_names=gene_names,
        term_specs=term_specs,
        annotation_specs=annotation_specs,
    )


def apply_update(
    bundle: DatasetBundle,
    spec: UpdateSpec,
    history: Sequence[UpdateSpec] = (),
    fallback: bool = True,
) -> tuple[DatasetBundle, UpdateReport]:
    """Absorb one update into a warm bundle via the delta paths.

    ``history`` is the spec log already absorbed by ``bundle`` (oldest
    first); it is only consulted when the delta path fails and ``fallback``
    is set, in which case the whole state is rebuilt by the reference replay
    (``prepare_dataset`` + every logged spec + this one) — the degraded but
    always-correct path, reached deterministically under the
    ``incremental.delta`` chaos site.  With ``fallback=False`` the delta
    failure propagates (the serve layer does its own replay so it can keep
    its lock/batcher discipline).

    The input bundle is *consumed*: the delta path mutates its ontology and
    annotation state in place and returns a new bundle sharing them.
    """
    data = synthesize_update(bundle, spec)
    try:
        fault_point("incremental.delta")
        return _delta_apply(bundle, data)
    except Exception:
        if not fallback:
            raise
        rebuilt = replay_reference(
            bundle.name, bundle.scale, bundle.study.seed, tuple(history) + (spec,)
        )
        report = UpdateReport(
            mode="rebuild",
            dirty=frozenset({"expression", "network", "ontology", "annotations"}),
            reused=(),
            counts=spec.counts(),
        )
        return rebuilt, report


def _delta_apply(bundle: DatasetBundle, data: UpdateData) -> tuple[DatasetBundle, UpdateReport]:
    """The delta body: structural-sharing application of one update."""
    spec = data.spec
    study = bundle.study
    scorer = bundle.scorer
    dag, table = scorer.dag, scorer.annotations
    dirty: set[str] = set()
    reused: list[str] = []
    threshold_key = CorrelationThreshold()

    # --- expression ----------------------------------------------------------
    matrix = study.matrix
    old_ii, old_jj, old_rho = study._pair_arrays(None)
    pairs = (old_ii, old_jj, old_rho)
    if spec.add_samples or spec.add_genes:
        dirty.add("expression")
        memo_warm = matrix._standardized is not None
        if spec.add_samples:
            matrix = matrix.with_samples(data.sample_values, list(data.sample_names))
        old_n = matrix.n_genes
        if spec.add_genes:
            matrix = matrix.with_genes(data.gene_values, list(data.gene_names))
        if spec.add_genes and not spec.add_samples and memo_warm:
            # Pure gene append on a warm matrix: per-row standardisation
            # delta-extended the memo, so only the tiles touching new rows
            # recompute (bit-identical to the cold full pass).
            pairs = correlated_pair_arrays_delta(matrix, old_n, pairs)
        else:
            # A new sample moves every gene's mean/std — the memo cannot
            # carry, so the correlation pass recomputes in full (still
            # skipping study/ontology regeneration).
            pairs = correlated_pair_arrays(matrix)

    # --- network / clusters --------------------------------------------------
    ii, jj, rho = pairs
    structure_same = (
        ii.shape == old_ii.shape
        and np.array_equal(ii, old_ii)
        and np.array_equal(jj, old_jj)
    )
    values_same = structure_same and np.array_equal(rho, old_rho)
    if "expression" not in dirty or values_same:
        network, network_csr = bundle.network, bundle.network_csr
        clusters = bundle.original_clusters
        reused += ["network", "clusters"]
    else:
        dirty.add("network")
        network = network_from_pair_arrays(matrix, ii, jj, rho, include_all_genes=False)
        network_csr = csr_from_pair_arrays(matrix, ii, jj, include_all_genes=False)
        if structure_same:
            # MCODE is structure-only: identical (ii, jj) over the same
            # vertex order means identical clusters — only the rho edge
            # attributes moved, so the label/CSR views rebuilt above.
            clusters = bundle.original_clusters
            reused.append("clusters")
        else:
            clusters = cluster_network(
                network,
                bundle.mcode_params,
                source=f"{study.name}/original",
                csr=network_csr,
            )

    # --- ontology ------------------------------------------------------------
    delta = None
    if spec.add_terms or spec.add_annotations:
        old_ann_index = table.indexed()
    if spec.add_terms:
        delta = dag.append_leaf_terms(list(data.term_specs))
        scorer.adopt_term_index(delta)
        dirty.add("ontology")
    else:
        reused.append("term_index")
    if spec.add_annotations:
        touched = [g for g, _terms in data.annotation_specs]
        for gene, terms in data.annotation_specs:
            table.annotate(gene, list(terms))
        scorer.invalidate_genes(touched)
        dirty.add("annotations")
    if spec.add_terms or spec.add_annotations:
        table._index = AnnotationIndex.updated(
            old_ann_index,
            table,
            dag.term_index(),
            old_to_new=None if delta is None else delta.old_to_new,
            touched=[g for g, _terms in data.annotation_specs],
        )
        reused.append("annotation_rows")
    else:
        reused.append("annotation_index")

    # --- assemble ------------------------------------------------------------
    if "expression" in dirty:
        new_study = dataclasses.replace(
            study,
            matrix=matrix,
            _network=network,
            _network_csr=network_csr,
            _pairs={threshold_key: pairs},
        )
    else:
        new_study = study
    new_bundle = dataclasses.replace(
        bundle,
        study=new_study,
        network=network,
        network_csr=network_csr,
        original_clusters=clusters,
        generation=bundle.generation + 1,
        dirty=frozenset(dirty),
    )
    report = UpdateReport(
        mode="delta",
        dirty=frozenset(dirty),
        reused=tuple(reused),
        counts=spec.counts(),
        distances_safe=None if delta is None else delta.distances_safe,
    )
    return new_bundle, report


def reference_apply_update(bundle: DatasetBundle, data: UpdateData) -> DatasetBundle:
    """Cold-apply one update: every derived structure rebuilt from scratch.

    The equivalence oracle for :func:`_delta_apply` — no memo survives.  The
    ontology/annotation objects are mutated through their cold paths
    (:meth:`~repro.ontology.go_dag.GODag.add_term`, which drops the whole
    distance engine), the expression matrix is reconstructed without memos,
    and the correlation pass, network views, MCODE clusters, term index,
    annotation index and enrichment scorer all build cold.
    """
    from .ontology.enrichment import EnrichmentScorer

    spec = data.spec
    study = bundle.study
    dag, table = bundle.scorer.dag, bundle.scorer.annotations
    values = study.matrix.values
    genes = list(study.matrix.genes)
    samples = list(study.matrix.samples)
    conditions = list(study.matrix.conditions) if study.matrix.conditions else None
    if spec.add_samples:
        values = np.concatenate([values, data.sample_values], axis=1)
        if conditions is not None:
            conditions = conditions + [conditions[-1]] * spec.add_samples
        samples = samples + list(data.sample_names)
    if spec.add_genes:
        values = np.concatenate([values, data.gene_values], axis=0)
        genes = genes + list(data.gene_names)
    matrix = ExpressionMatrix(
        values=values.copy(),
        genes=genes,
        samples=samples,
        conditions=conditions,
        metadata=dict(study.matrix.metadata),
    )
    for term_id, parents in data.term_specs:
        dag.add_term(term_id, list(parents))
    for gene, terms in data.annotation_specs:
        table.annotate(gene, list(terms))
    new_study = dataclasses.replace(
        study, matrix=matrix, _network=None, _network_csr=None, _pairs={}
    )
    network = new_study.network()
    network_csr = new_study.network_csr()
    scorer = EnrichmentScorer(
        dag,
        table,
        backend=bundle.scorer.backend,
        kernels=bundle.scorer.kernels,
    )
    clusters = cluster_network(
        network,
        bundle.mcode_params,
        source=f"{new_study.name}/original",
        csr=network_csr,
    )
    return dataclasses.replace(
        bundle,
        study=new_study,
        network=network,
        network_csr=network_csr,
        scorer=scorer,
        original_clusters=clusters,
        generation=bundle.generation + 1,
        dirty=frozenset({"expression", "network", "ontology", "annotations"}),
    )


def replay_reference(
    name: str,
    scale: float,
    seed: Optional[int],
    specs: Sequence[UpdateSpec],
    **prepare_kwargs: Any,
) -> DatasetBundle:
    """Rebuild the state after ``specs`` from nothing: the full-rebuild oracle.

    ``prepare_dataset`` plus one :func:`reference_apply_update` per logged
    spec, synthesising each payload against the replayed state — which
    matches the warm path's payloads bit for bit because synthesis depends
    only on (pre-update state, spec).  This is also exactly what a serve
    ``reload`` must do to reach the same state, i.e. the honest cost of
    *not* having the delta paths.
    """
    bundle = prepare_dataset(name, scale=scale, seed=seed, **prepare_kwargs)
    for spec in specs:
        data = synthesize_update(bundle, spec)
        bundle = reference_apply_update(bundle, data)
    return bundle
