"""Experiment pipeline: dataset preparation, filter analysis, per-figure drivers."""

from .ablation import (
    hub_retention_study,
    mcode_threshold_sweep,
    partitioner_ablation,
    quasi_chordality_study,
)
from .batch import (
    DRIVERS,
    BatchRunResult,
    RunSpec,
    driver_names,
    run_batch,
)
from .experiments import (
    ORDERING_LABELS,
    border_edge_study,
    clear_bundle_cache,
    default_scale,
    fig04_aees_by_ordering,
    fig05_overlap_scatter,
    fig06_node_overlap_vs_aees,
    fig07_edge_overlap_vs_aees,
    fig08_sensitivity_specificity,
    fig09_cluster_refinement,
    fig10_scalability,
    fig11_parallel_consistency,
    get_bundle,
    random_walk_control,
)
from .report import format_kv, format_scatter, format_series, format_table
from .workflow import (
    DatasetBundle,
    FilterAnalysis,
    analyze_filter,
    cluster_network,
    prepare_dataset,
)

__all__ = [
    "DatasetBundle",
    "FilterAnalysis",
    "prepare_dataset",
    "analyze_filter",
    "cluster_network",
    "get_bundle",
    "clear_bundle_cache",
    "default_scale",
    "ORDERING_LABELS",
    "fig04_aees_by_ordering",
    "fig05_overlap_scatter",
    "fig06_node_overlap_vs_aees",
    "fig07_edge_overlap_vs_aees",
    "fig08_sensitivity_specificity",
    "fig09_cluster_refinement",
    "fig10_scalability",
    "fig11_parallel_consistency",
    "random_walk_control",
    "border_edge_study",
    "DRIVERS",
    "RunSpec",
    "BatchRunResult",
    "run_batch",
    "driver_names",
    "format_table",
    "format_series",
    "format_scatter",
    "format_kv",
    "mcode_threshold_sweep",
    "partitioner_ablation",
    "hub_retention_study",
    "quasi_chordality_study",
]
