"""End-to-end experiment pipeline.

The paper's experimental design (Section IV.A) is a fixed sequence:

    microarray data → correlation network → sampling filter(s) → MCODE
    clusters → edge-enrichment scores → overlap / quadrant analysis.

This module packages that sequence so examples and benchmarks can express an
experiment in a few lines:

* :func:`prepare_dataset` builds a :class:`DatasetBundle` — the synthetic
  study, its thresholded correlation network, the GO DAG + annotations, an
  enrichment scorer and the clusters of the *original* (unfiltered) network.
* :func:`analyze_filter` applies one sampling filter and produces a
  :class:`FilterAnalysis` — the filtered network's clusters, their AEES
  scores, their overlap matches against the original clusters, the lost/found
  sets and the TP/FP/FN/TN quadrant counts for both overlap criteria.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..clustering.cluster import Cluster
from ..clustering.evaluation import (
    EvaluationThresholds,
    QuadrantCounts,
    ScoredMatch,
    classify_matches,
    quadrant_counts,
)
from ..clustering.mcode import MCODEParams, mcode_clusters
from ..clustering.overlap import ClusterMatch, found_clusters, match_and_lost_clusters
from ..core.results import FilterResult
from ..core.sampling import apply_filter
from ..expression.correlation import CorrelationThreshold
from ..expression.datasets import SyntheticStudy, make_study
from ..graph.csr import CSRGraph
from ..graph.graph import Graph
from ..kernels import kernel_backend
from ..ontology.enrichment import EnrichmentScorer
from ..ontology.generator import make_study_ontology

__all__ = [
    "DatasetBundle",
    "FilterAnalysis",
    "prepare_dataset",
    "analyze_filter",
    "cluster_network",
    "payload_digest",
    "filter_payload",
    "analysis_payload",
    "enrichment_payload",
]


@dataclass
class DatasetBundle:
    """Everything derived from one dataset that filters are evaluated against."""

    name: str
    study: SyntheticStudy
    network: Graph
    scorer: EnrichmentScorer
    original_clusters: list[Cluster]
    mcode_params: MCODEParams
    thresholds: EvaluationThresholds
    scale: float = 1.0
    #: CSR view of ``network``, built directly from the expression matrix
    #: (one correlation pass serves both views); ``None`` only for bundles
    #: constructed by hand without it.
    network_csr: Optional[CSRGraph] = None
    #: Number of incremental updates absorbed since the cold build (see
    #: :mod:`repro.incremental`); 0 for a fresh :func:`prepare_dataset`.
    generation: int = 0
    #: Component dirty-set of the *last* absorbed update — which of
    #: ``{"expression", "network", "ontology", "annotations"}`` it touched.
    #: Untouched components were reused structurally (same objects), which is
    #: what lets the serve layer scope its cache invalidation.
    dirty: frozenset = frozenset()

    @property
    def n_vertices(self) -> int:
        return self.network.n_vertices

    @property
    def n_edges(self) -> int:
        return self.network.n_edges

    def summary(self) -> dict[str, Any]:
        return {
            "dataset": self.name,
            "scale": self.scale,
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "original_clusters": len(self.original_clusters),
            "generation": self.generation,
        }


@dataclass
class FilterAnalysis:
    """The full downstream analysis of one filter run on one dataset."""

    bundle: DatasetBundle
    result: FilterResult
    clusters: list[Cluster]
    matches: list[ClusterMatch]
    scored_by_node: list[ScoredMatch]
    scored_by_edge: list[ScoredMatch]
    found: list[Cluster]
    lost: list[Cluster]
    node_counts: QuadrantCounts
    edge_counts: QuadrantCounts
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        ordering = self.result.ordering or "-"
        return f"{self.bundle.name}/{self.result.method}/{ordering}/{self.result.n_partitions}P"

    def cluster_aees(self) -> list[float]:
        """AEES of every filtered cluster, in cluster order (one batched pass)."""
        return self.bundle.scorer.cluster_aees([c.subgraph for c in self.clusters])

    def high_scoring_clusters(self, threshold: Optional[float] = None) -> list[Cluster]:
        """Clusters whose AEES clears the (default 3.0) relevance threshold."""
        bar = self.bundle.thresholds.aees_threshold if threshold is None else threshold
        return [
            c
            for c, aees in zip(self.clusters, self.cluster_aees())
            if aees >= bar
        ]

    def summary(self) -> dict[str, Any]:
        rows = self.result.summary()
        rows.update(
            {
                "dataset": self.bundle.name,
                "clusters": len(self.clusters),
                "clusters_found": len(self.found),
                "clusters_lost": len(self.lost),
                "node_sensitivity": round(self.node_counts.sensitivity, 3),
                "node_specificity": round(self.node_counts.specificity, 3),
                "edge_sensitivity": round(self.edge_counts.sensitivity, 3),
                "edge_specificity": round(self.edge_counts.specificity, 3),
            }
        )
        return rows


def cluster_network(
    graph: Graph,
    params: Optional[MCODEParams] = None,
    source: str = "",
    csr: Optional[CSRGraph] = None,
) -> list[Cluster]:
    """Cluster a network with MCODE under the paper's default parameters.

    ``csr`` optionally reuses a prebuilt CSR view of ``graph`` (the bundle's
    ``network_csr``) so the index-native MCODE skips its one conversion.
    """
    return mcode_clusters(graph, params=params or MCODEParams(), source=source, csr=csr)


def prepare_dataset(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    mcode_params: Optional[MCODEParams] = None,
    thresholds: Optional[EvaluationThresholds] = None,
    correlation_threshold: Optional[CorrelationThreshold] = None,
    ontology_depth: int = 8,
    ontology_branching: int = 3,
    enrichment_backend: str = "serial",
    kernels: Optional[str] = None,
) -> DatasetBundle:
    """Generate a dataset and everything needed to evaluate filters on it.

    Parameters mirror the experimental design: the dataset name selects one of
    the four canned studies (``YNG``, ``MID``, ``UNT``, ``CRE``); ``scale``
    shrinks the study for fast runs; the remaining parameters expose the
    pipeline's thresholds (paper defaults when omitted).
    ``enrichment_backend`` selects the execution backend of the bundle's
    enrichment scorer (see :class:`~repro.ontology.EnrichmentScorer`):
    ``"serial"`` scores distinct term pairs in-process, the parallel
    backends fan pair batches over worker threads / processes.
    ``kernels`` selects the kernel tier (see :mod:`repro.kernels`) used for
    the bundle's baseline clustering and pinned into its enrichment scorer;
    every tier builds the identical bundle.
    """
    params = mcode_params or MCODEParams()
    thresholds = thresholds or EvaluationThresholds()
    study = make_study(name, scale=scale, seed=seed)
    # Both network views come from one cached correlation pass: the label
    # graph for the filters (edge attributes, spanning subgraphs) and the CSR
    # view — built straight from the expression tiles — for the index-native
    # analysis kernels.
    network = study.network(threshold=correlation_threshold)
    network_csr = study.network_csr(threshold=correlation_threshold)
    dag, annotations = make_study_ontology(
        study, depth=ontology_depth, branching=ontology_branching
    )
    scorer = EnrichmentScorer(dag, annotations, backend=enrichment_backend, kernels=kernels)
    with kernel_backend(kernels):
        original_clusters = cluster_network(
            network, params, source=f"{study.name}/original", csr=network_csr
        )
    return DatasetBundle(
        name=study.name,
        study=study,
        network=network,
        scorer=scorer,
        original_clusters=original_clusters,
        mcode_params=params,
        thresholds=thresholds,
        scale=scale,
        network_csr=network_csr,
    )


def analyze_filter(
    bundle: DatasetBundle,
    method: str = "chordal",
    ordering: Optional[str] = "natural",
    n_partitions: int = 1,
    kernels: Optional[str] = None,
    **filter_kwargs: Any,
) -> FilterAnalysis:
    """Apply one sampling filter to the bundle's network and analyse the outcome.

    The analysis reproduces the paper's measurements for that run: the
    filtered network's MCODE clusters, their best overlap match against the
    original clusters (by node overlap), both overlap values, lost/found
    clusters and quadrant counts for node- and edge-overlap matching.

    ``kernels`` scopes a kernel tier (see :mod:`repro.kernels`) over the
    whole analysis — filter, clustering and enrichment; the outcome is
    identical on every tier.
    """
    with kernel_backend(kernels):
        result = apply_filter(
            bundle.network,
            method=method,
            ordering=ordering,
            n_partitions=n_partitions,
            **filter_kwargs,
        )
        label = f"{bundle.name}/{method}/{ordering or '-'}/{n_partitions}P"
        clusters = cluster_network(result.graph, bundle.mcode_params, source=label)
        matches, lost = match_and_lost_clusters(bundle.original_clusters, clusters)
        scored_node = classify_matches(matches, bundle.scorer, bundle.thresholds, "node_overlap")
        # The edge-overlap pass classifies the same filtered clusters, so it
        # reuses the node pass's enrichment scores instead of re-walking edges.
        scored_edge = classify_matches(
            matches,
            bundle.scorer,
            bundle.thresholds,
            "edge_overlap",
            aees=[s.aees for s in scored_node],
        )
    return FilterAnalysis(
        bundle=bundle,
        result=result,
        clusters=clusters,
        matches=matches,
        scored_by_node=scored_node,
        scored_by_edge=scored_edge,
        found=found_clusters(matches),
        lost=lost,
        node_counts=quadrant_counts(scored_node),
        edge_counts=quadrant_counts(scored_edge),
    )


# ----------------------------------------------------------------------
# canonical result payloads
# ----------------------------------------------------------------------
# The resident service (``repro serve``) promises responses byte-identical to
# a cold CLI run of the same request.  That promise is only testable if both
# sides serialise through ONE canonical form, so the payload builders live
# here, next to the pipeline that produces the objects: ``repro filter
# --json`` / ``repro analyze --json`` print these dicts, the serve handlers
# return them over the socket, and the equivalence tests compare the bytes of
# ``json.dumps(payload, sort_keys=True, separators=(",", ":"))`` on both
# sides.  Scores travel as ``float.hex()`` strings — exact, no decimal
# round-trip ambiguity.


def payload_digest(obj: Any) -> str:
    """Stable 16-hex-digit digest of a JSON-canonicalisable payload fragment."""
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _canonical_edges(graph: Graph) -> list[list[str]]:
    """The graph's edge set as a sorted list of sorted string pairs."""
    return sorted(sorted((str(u), str(v))) for u, v in graph.iter_edges())


def filter_payload(result: FilterResult, include_edges: bool = False) -> dict[str, Any]:
    """Canonical payload of one sampling-filter run (the ``filter`` request).

    The edge set is pinned by ``edges_sha256``; ``include_edges`` additionally
    inlines the sorted edge list for callers that want the network itself.
    """
    edges = _canonical_edges(result.graph)
    payload: dict[str, Any] = {
        "method": result.method,
        "ordering": result.ordering,
        "n_partitions": result.n_partitions,
        "partition_method": result.partition_method,
        "n_vertices": result.graph.n_vertices,
        "edges_original": result.original.n_edges,
        "edges_kept": result.n_edges_kept,
        "edge_reduction_hex": float(result.edge_reduction).hex(),
        "border_edges": result.n_border_edges,
        "accepted_border_edges": len(result.accepted_border_edges),
        "duplicate_border_edges": result.duplicate_border_edges,
        "edges_sha256": payload_digest(edges),
    }
    if include_edges:
        payload["edges"] = edges
    return payload


def _cluster_rows(clusters: Sequence[Cluster]) -> list[dict[str, Any]]:
    return [
        {
            "cluster": c.cluster_id,
            "size": c.n_vertices,
            "edges": c.n_edges,
            "score_hex": float(c.score).hex(),
            "members_sha256": payload_digest(sorted(map(str, c.members))),
        }
        for c in clusters
    ]


def analysis_payload(analysis: FilterAnalysis) -> dict[str, Any]:
    """Canonical payload of one full analysis run (the ``classify`` request).

    Everything the acceptance pins: the filtered edge set (via the embedded
    :func:`filter_payload`), the cluster member/score digests, the exact AEES
    scores and the quadrant counts of both overlap criteria.
    """
    clusters = _cluster_rows(analysis.clusters)
    aees_hex = [float(a).hex() for a in analysis.cluster_aees()]
    matches = [
        {
            "filtered": m.filtered.cluster_id,
            "original": None if m.original is None else m.original.cluster_id,
            "node_overlap_hex": float(m.node_overlap).hex(),
            "edge_overlap_hex": float(m.edge_overlap).hex(),
        }
        for m in analysis.matches
    ]
    return {
        "dataset": analysis.bundle.name,
        "scale": analysis.bundle.scale,
        "label": analysis.label,
        "filter": filter_payload(analysis.result),
        "original_clusters": len(analysis.bundle.original_clusters),
        "clusters": clusters,
        "clusters_sha256": payload_digest(clusters),
        "aees_hex": aees_hex,
        "aees_sha256": payload_digest(aees_hex),
        "matches": matches,
        "clusters_found": len(analysis.found),
        "clusters_lost": len(analysis.lost),
        "node_counts": analysis.node_counts.as_dict(),
        "edge_counts": analysis.edge_counts.as_dict(),
    }


def enrichment_payload(
    clusters: Sequence[Cluster], aees: Sequence[float], source: str
) -> dict[str, Any]:
    """Canonical payload of one cluster-enrichment pass (the ``enrich`` request)."""
    if len(clusters) != len(aees):
        raise ValueError("aees must align one-to-one with clusters")
    rows = [
        {
            "cluster": c.cluster_id,
            "size": c.n_vertices,
            "edges": c.n_edges,
            "aees_hex": float(a).hex(),
        }
        for c, a in zip(clusters, aees)
    ]
    return {
        "source": source,
        "n_clusters": len(rows),
        "clusters": rows,
        "aees_sha256": payload_digest([r["aees_hex"] for r in rows]),
    }
