"""Ablation studies for the design choices called out in DESIGN.md §6.

The paper fixes several knobs without exploring them (MCODE's 3.0 score
threshold, block data distribution, the triangle-based border-admission rule).
These drivers sweep those knobs so their influence on the headline results can
be quantified:

* :func:`mcode_threshold_sweep` — cluster counts and relevant-cluster counts
  as the MCODE score cut-off varies (the paper's 3.0 excludes bare triangles);
* :func:`partitioner_ablation` — edge retention, duplicates and cluster
  quality per partitioner (block / bfs / hash / greedy);
* :func:`hub_retention_study` — how well each filter preserves the identity of
  the most central genes (degree / closeness / betweenness), the property the
  structural-sampling literature optimises for and the adaptive filter does
  not;
* :func:`quasi_chordality_study` — how far the parallel outputs are from true
  chordal subgraphs as the processor count grows, with and without the
  cycle-repair pass.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..clustering.mcode import MCODEParams, mcode_clusters
from ..core.quasi import quasi_chordal_report
from ..core.sampling import apply_filter
from ..graph.centrality import centrality_spearman, hub_retention
from ..graph.partition import partition_graph
from .experiments import get_bundle
from .workflow import DatasetBundle

__all__ = [
    "mcode_threshold_sweep",
    "partitioner_ablation",
    "hub_retention_study",
    "quasi_chordality_study",
]


def mcode_threshold_sweep(
    scale: Optional[float] = None,
    dataset: str = "CRE",
    thresholds: Sequence[float] = (2.0, 2.5, 3.0, 3.5, 4.0, 5.0),
    ordering: str = "natural",
) -> dict[str, Any]:
    """Sweep the MCODE score threshold on the original and chordal-filtered network.

    The paper keeps clusters scoring ≥ 3.0 ("scores of 2.9 or lower tend to
    indicate small cliques"); the sweep shows how the cluster population and
    the number of biologically relevant clusters respond to that choice.
    """
    bundle = get_bundle(dataset, scale)
    filtered = apply_filter(bundle.network, method="chordal", ordering=ordering, n_partitions=1)
    rows: list[dict[str, Any]] = []
    for threshold in thresholds:
        params = MCODEParams(min_score=threshold)
        original_clusters = mcode_clusters(bundle.network, params)
        filtered_clusters = mcode_clusters(filtered.graph, params)
        rows.append(
            {
                "min_score": threshold,
                "original_clusters": len(original_clusters),
                "filtered_clusters": len(filtered_clusters),
                "original_relevant": sum(
                    1
                    for aees in bundle.scorer.cluster_aees([c.subgraph for c in original_clusters])
                    if aees >= 3.0
                ),
                "filtered_relevant": sum(
                    1
                    for aees in bundle.scorer.cluster_aees([c.subgraph for c in filtered_clusters])
                    if aees >= 3.0
                ),
            }
        )
    return {"dataset": dataset, "rows": rows}


def partitioner_ablation(
    scale: Optional[float] = None,
    dataset: str = "CRE",
    n_partitions: int = 16,
    methods: Sequence[str] = ("block", "bfs", "hash", "greedy"),
    ordering: str = "natural",
) -> dict[str, Any]:
    """Compare partitioners for the communication-free chordal sampler.

    Reports border edges, duplicates, edges kept, and how many of the
    biologically relevant clusters of the sequential run survive under each
    data distribution (the paper only uses the block distribution).
    """
    bundle = get_bundle(dataset, scale)
    sequential = apply_filter(bundle.network, method="chordal", ordering=ordering, n_partitions=1)
    sequential_relevant = _relevant_cluster_count(bundle, sequential.graph)
    rows: list[dict[str, Any]] = []
    for method in methods:
        result = apply_filter(
            bundle.network,
            method="chordal",
            ordering=ordering,
            n_partitions=n_partitions,
            partition_method=method,
        )
        rows.append(
            {
                "partitioner": method,
                "border_edges": result.n_border_edges,
                "duplicates": result.duplicate_border_edges,
                "edges_kept": result.n_edges_kept,
                "relevant_clusters": _relevant_cluster_count(bundle, result.graph),
                "sequential_relevant": sequential_relevant,
                "simulated_time": result.simulated_time,
            }
        )
    return {"dataset": dataset, "n_partitions": n_partitions, "rows": rows}


def _relevant_cluster_count(bundle: DatasetBundle, graph) -> int:
    clusters = mcode_clusters(graph, bundle.mcode_params)
    scores = bundle.scorer.cluster_aees([c.subgraph for c in clusters])
    return sum(1 for aees in scores if aees >= bundle.thresholds.aees_threshold)


def hub_retention_study(
    scale: Optional[float] = None,
    dataset: str = "CRE",
    k: int = 20,
    n_partitions: int = 8,
    measures: Sequence[str] = ("degree", "closeness", "betweenness"),
    seed: int = 0,
) -> dict[str, Any]:
    """How well do the filters preserve the identity and ranking of hub genes?

    The chordal filter optimises for dense clusters, not for structural-hub
    preservation, yet the paper's background section ties hubs to essential
    genes; this study reports top-k hub retention and the Spearman correlation
    of the centrality rankings for both filters.
    """
    bundle = get_bundle(dataset, scale)
    chordal = apply_filter(bundle.network, method="chordal", ordering="natural", n_partitions=n_partitions)
    walk = apply_filter(bundle.network, method="random_walk", n_partitions=n_partitions, seed=seed)
    rows: list[dict[str, Any]] = []
    for measure in measures:
        for label, result in (("chordal", chordal), ("random_walk", walk)):
            rows.append(
                {
                    "measure": measure,
                    "filter": label,
                    "hub_retention": hub_retention(bundle.network, result.graph, k=k, measure=measure),
                    "rank_correlation": centrality_spearman(bundle.network, result.graph, measure=measure),
                }
            )
    return {"dataset": dataset, "k": k, "rows": rows}


def quasi_chordality_study(
    scale: Optional[float] = None,
    dataset: str = "CRE",
    processor_counts: Sequence[int] = (2, 8, 32),
    ordering: str = "natural",
) -> dict[str, Any]:
    """Measure how far the parallel outputs are from true chordal subgraphs.

    For every processor count the communication-free sampler is run with and
    without the cycle-repair pass and both outputs are summarised with
    :func:`repro.core.quasi.quasi_chordal_report`; the with-communication
    baseline is included for comparison.  The sequential output is chordal by
    construction and serves as the reference row.
    """
    bundle = get_bundle(dataset, scale)
    rows: list[dict[str, Any]] = []

    sequential = apply_filter(bundle.network, method="chordal", ordering=ordering, n_partitions=1)
    rows.append({"variant": "sequential", "processors": 1, **quasi_chordal_report(sequential).as_dict()})

    for p in processor_counts:
        partition = partition_graph(bundle.network, p, method="block")
        raw = apply_filter(
            bundle.network, method="chordal", ordering=ordering, n_partitions=p, repair_cycles=False
        )
        repaired = apply_filter(
            bundle.network, method="chordal", ordering=ordering, n_partitions=p, repair_cycles=True
        )
        comm = apply_filter(bundle.network, method="chordal_comm", ordering=ordering, n_partitions=p)
        rows.append({"variant": "nocomm", "processors": p, **quasi_chordal_report(raw, partition).as_dict()})
        rows.append(
            {"variant": "nocomm+repair", "processors": p, **quasi_chordal_report(repaired, partition).as_dict()}
        )
        rows.append({"variant": "comm", "processors": p, **quasi_chordal_report(comm, partition).as_dict()})
    return {"dataset": dataset, "rows": rows}
