"""Plain-text reporting helpers.

Benchmarks and examples print the same rows and series the paper plots; these
helpers render them as aligned text tables (and simple scatter/series listings)
without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Optional

__all__ = ["format_table", "format_series", "format_scatter", "format_kv"]


def _fmt(value: Any, float_digits: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render a list of dict rows as an aligned text table.

    ``columns`` fixes the column order (defaults to the keys of the first row).
    Missing cells render as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_fmt(row.get(c), float_digits) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[Any, Any]],
    x_label: str = "x",
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Render named series ``{name: {x: y}}`` as a table with one column per series."""
    xs: list[Any] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    try:
        xs.sort()
    except TypeError:
        pass
    rows = []
    for x in xs:
        row: dict[str, Any] = {x_label: x}
        for name, values in series.items():
            row[name] = values.get(x)
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title, float_digits=float_digits)


def format_scatter(
    points: Iterable[tuple[float, float, str]],
    x_label: str = "x",
    y_label: str = "y",
    label_name: str = "label",
    title: Optional[str] = None,
) -> str:
    """Render labelled scatter points as a three-column table."""
    rows = [{x_label: x, y_label: y, label_name: lab} for x, y, lab in points]
    return format_table(rows, columns=[x_label, y_label, label_name], title=title)


def format_kv(mapping: Mapping[str, Any], title: Optional[str] = None, float_digits: int = 3) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines = [title] if title else []
    width = max((len(k) for k in mapping), default=0)
    for k, v in mapping.items():
        lines.append(f"{k.ljust(width)} : {_fmt(v, float_digits)}")
    return "\n".join(lines)
