"""Per-figure experiment drivers.

Every data figure and in-text quantitative claim of the paper's evaluation has
a driver here that regenerates the corresponding rows / series; the benchmark
files under ``benchmarks/`` are thin wrappers around these functions, and
EXPERIMENTS.md records the measured outputs next to the paper's values.

All drivers take a ``scale`` parameter (see
:meth:`repro.expression.StudyConfig.scaled`); the default is read from the
``REPRO_SCALE`` environment variable and falls back to a size that runs the
full pipeline in seconds on a laptop while preserving the qualitative shape of
the published results.  Dataset bundles are memoised per (name, scale) because
several figures share them.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence

from ..clustering.evaluation import EvaluationThresholds, quadrant_counts
from ..core.sampling import apply_filter
from ..graph.ordering import ordering_names
from .workflow import DatasetBundle, FilterAnalysis, analyze_filter, prepare_dataset

__all__ = [
    "default_scale",
    "get_bundle",
    "clear_bundle_cache",
    "ORDERING_LABELS",
    "fig04_aees_by_ordering",
    "fig05_overlap_scatter",
    "fig06_node_overlap_vs_aees",
    "fig07_edge_overlap_vs_aees",
    "fig08_sensitivity_specificity",
    "fig09_cluster_refinement",
    "fig10_scalability",
    "fig11_parallel_consistency",
    "random_walk_control",
    "border_edge_study",
]

#: Paper figure labels for the four orderings.
ORDERING_LABELS = {"natural": "NO", "high_degree": "HD", "low_degree": "LD", "rcm": "RCM"}

_DEFAULT_SCALE = 0.10
_BUNDLE_CACHE: dict[tuple[str, float, int], DatasetBundle] = {}
_ANALYSIS_CACHE: dict[tuple, FilterAnalysis] = {}


def default_scale() -> float:
    """The dataset scale used by benchmarks (override with ``REPRO_SCALE=1.0``)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return _DEFAULT_SCALE
    value = float(raw)
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def get_bundle(name: str, scale: Optional[float] = None, seed: Optional[int] = None) -> DatasetBundle:
    """Return (and memoise) the prepared dataset bundle for ``name`` at ``scale``."""
    scale = default_scale() if scale is None else scale
    key = (name.upper(), round(scale, 6), -1 if seed is None else seed)
    bundle = _BUNDLE_CACHE.get(key)
    if bundle is None:
        bundle = prepare_dataset(name, scale=scale, seed=seed)
        _BUNDLE_CACHE[key] = bundle
    return bundle


def clear_bundle_cache() -> None:
    """Drop all memoised bundles and analyses (used by tests)."""
    _BUNDLE_CACHE.clear()
    _ANALYSIS_CACHE.clear()


def _get_analysis(
    bundle: DatasetBundle,
    method: str,
    ordering: Optional[str],
    n_partitions: int,
    **kwargs: Any,
) -> FilterAnalysis:
    """Memoised :func:`analyze_filter` (figures reuse the same runs heavily)."""
    key = (
        bundle.name,
        round(bundle.scale, 6),
        method,
        ordering,
        n_partitions,
        tuple(sorted(kwargs.items())),
    )
    hit = _ANALYSIS_CACHE.get(key)
    if hit is None or hit.bundle is not bundle:
        hit = analyze_filter(bundle, method=method, ordering=ordering, n_partitions=n_partitions, **kwargs)
        _ANALYSIS_CACHE[key] = hit
    return hit


# ----------------------------------------------------------------------
# Figure 4 — AEES of every cluster across orderings (YNG, MID)
# ----------------------------------------------------------------------
def fig04_aees_by_ordering(
    scale: Optional[float] = None,
    datasets: Sequence[str] = ("YNG", "MID"),
    orderings: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """Reproduce Figure 4: per-cluster AEES in the original network and the four
    chordal-filtered networks, for the (weak-signal) YNG and MID datasets.

    Returns ``{"rows": [...], "per_network_mean": {...}}`` where each row is
    ``{dataset, network, cluster, aees}`` and *network* is ``ORIG`` or an
    ordering label (NO/HD/LD/RCM).
    """
    orderings = list(orderings) if orderings else ordering_names()
    rows: list[dict[str, Any]] = []
    means: dict[str, float] = {}
    for name in datasets:
        bundle = get_bundle(name, scale)
        orig_scores = bundle.scorer.cluster_aees([c.subgraph for c in bundle.original_clusters])
        for cid, aees in enumerate(orig_scores):
            rows.append({"dataset": name, "network": "ORIG", "cluster": f"C{cid}", "aees": aees})
        if orig_scores:
            means[f"{name}/ORIG"] = sum(orig_scores) / len(orig_scores)
        for ordering in orderings:
            analysis = _get_analysis(bundle, "chordal", ordering, 1)
            scores = analysis.cluster_aees()
            label = ORDERING_LABELS.get(ordering, ordering)
            for cid, aees in enumerate(scores):
                rows.append({"dataset": name, "network": label, "cluster": f"C{cid}", "aees": aees})
            if scores:
                means[f"{name}/{label}"] = sum(scores) / len(scores)
    return {"rows": rows, "per_network_mean": means}


# ----------------------------------------------------------------------
# Figure 5 — node/edge overlap scatter for UNT and CRE
# ----------------------------------------------------------------------
def fig05_overlap_scatter(
    scale: Optional[float] = None,
    datasets: Sequence[str] = ("UNT", "CRE"),
    orderings: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """Reproduce Figure 5: overlap of filtered clusters with original clusters.

    Returns two point lists per dataset: ``overlap_points`` (filtered clusters
    that match an original cluster; coordinates are node overlap × edge
    overlap) and ``new_cluster_points`` (filtered clusters with no
    counterpart — the newly discovered structure, plotted near the origin in
    the paper).
    """
    orderings = list(orderings) if orderings else ordering_names()
    out: dict[str, Any] = {"datasets": {}}
    for name in datasets:
        bundle = get_bundle(name, scale)
        overlap_points: list[dict[str, Any]] = []
        new_points: list[dict[str, Any]] = []
        for ordering in orderings:
            analysis = _get_analysis(bundle, "chordal", ordering, 1)
            label = ORDERING_LABELS.get(ordering, ordering)
            for match in analysis.matches:
                point = {
                    "filter": label,
                    "node_overlap": match.node_overlap,
                    "edge_overlap": match.edge_overlap,
                    "cluster_size": match.filtered.n_vertices,
                }
                if match.is_found:
                    new_points.append(point)
                else:
                    overlap_points.append(point)
        full_overlap = sum(
            1 for p in overlap_points if p["node_overlap"] >= 1.0 and p["edge_overlap"] >= 1.0
        )
        out["datasets"][name] = {
            "overlap_points": overlap_points,
            "new_cluster_points": new_points,
            "n_full_overlap": full_overlap,
        }
    return out


# ----------------------------------------------------------------------
# Figures 6 & 7 — overlap vs AEES for all networks
# ----------------------------------------------------------------------
def _overlap_vs_aees(
    overlap_attr: str,
    scale: Optional[float],
    datasets: Sequence[str],
    orderings: Optional[Sequence[str]],
) -> dict[str, Any]:
    orderings = list(orderings) if orderings else ordering_names()
    points: list[dict[str, Any]] = []
    for name in datasets:
        bundle = get_bundle(name, scale)
        for ordering in orderings:
            analysis = _get_analysis(bundle, "chordal", ordering, 1)
            label = ORDERING_LABELS.get(ordering, ordering)
            scored = analysis.scored_by_node if overlap_attr == "node_overlap" else analysis.scored_by_edge
            for s in scored:
                if s.match.is_found:
                    continue  # the paper excludes lost & found clusters here
                points.append(
                    {
                        "dataset": name,
                        "filter": label,
                        "aees": s.aees,
                        "overlap": s.overlap,
                    }
                )
    return {"points": points, "overlap_attr": overlap_attr}


def fig06_node_overlap_vs_aees(
    scale: Optional[float] = None,
    datasets: Sequence[str] = ("YNG", "MID", "UNT", "CRE"),
    orderings: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """Reproduce Figure 6: node overlap (y) vs filtered-cluster AEES (x), all networks."""
    return _overlap_vs_aees("node_overlap", scale, datasets, orderings)


def fig07_edge_overlap_vs_aees(
    scale: Optional[float] = None,
    datasets: Sequence[str] = ("YNG", "MID", "UNT", "CRE"),
    orderings: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """Reproduce Figure 7: edge overlap (y) vs filtered-cluster AEES (x), all networks."""
    return _overlap_vs_aees("edge_overlap", scale, datasets, orderings)


# ----------------------------------------------------------------------
# Figure 8 — sensitivity / specificity of node vs edge overlap
# ----------------------------------------------------------------------
def fig08_sensitivity_specificity(
    scale: Optional[float] = None,
    datasets: Sequence[str] = ("YNG", "MID", "UNT", "CRE"),
    orderings: Optional[Sequence[str]] = None,
    thresholds: EvaluationThresholds = EvaluationThresholds(),
) -> dict[str, Any]:
    """Reproduce Figure 8: TP/FP/FN/TN-derived sensitivity and specificity of the
    node-overlap and edge-overlap matching criteria, aggregated over all
    networks and orderings.
    """
    orderings = list(orderings) if orderings else ordering_names()
    node_scored = []
    edge_scored = []
    for name in datasets:
        bundle = get_bundle(name, scale)
        for ordering in orderings:
            analysis = _get_analysis(bundle, "chordal", ordering, 1)
            node_scored.extend(s for s in analysis.scored_by_node if not s.match.is_found)
            edge_scored.extend(s for s in analysis.scored_by_edge if not s.match.is_found)
    node_counts = quadrant_counts(node_scored)
    edge_counts = quadrant_counts(edge_scored)
    return {
        "node_overlap": node_counts.as_dict(),
        "edge_overlap": edge_counts.as_dict(),
        "thresholds": {
            "aees": thresholds.aees_threshold,
            "overlap": thresholds.overlap_threshold,
        },
    }


# ----------------------------------------------------------------------
# Figure 9 — filtering sharpens a noisy cluster's function
# ----------------------------------------------------------------------
def fig09_cluster_refinement(
    scale: Optional[float] = None,
    dataset: str = "UNT",
    ordering: str = "high_degree",
) -> dict[str, Any]:
    """Reproduce Figure 9's case study: find the filtered cluster whose AEES
    improves the most over its original counterpart.

    The paper's example is UNT cluster 18 (AEES 2.33) whose High-Degree
    filtered counterpart scores 4.17 and is annotated with apoptosis
    regulation; here the analogue is the matched pair with the largest AEES
    gain, reported with both scores, the overlaps and the dominant DCP term.
    """
    bundle = get_bundle(dataset, scale)
    analysis = _get_analysis(bundle, "chordal", ordering, 1)
    best: Optional[dict[str, Any]] = None
    for match in analysis.matches:
        if match.original is None:
            continue
        filtered_enrichment = bundle.scorer.cluster(match.filtered.subgraph)
        original_enrichment = bundle.scorer.cluster(match.original.subgraph)
        gain = filtered_enrichment.aees - original_enrichment.aees
        row = {
            "dataset": dataset,
            "ordering": ORDERING_LABELS.get(ordering, ordering),
            "original_cluster": match.original.cluster_id,
            "filtered_cluster": match.filtered.cluster_id,
            "original_aees": original_enrichment.aees,
            "filtered_aees": filtered_enrichment.aees,
            "aees_gain": gain,
            "node_overlap": match.node_overlap,
            "edge_overlap": match.edge_overlap,
            "original_size": match.original.n_vertices,
            "filtered_size": match.filtered.n_vertices,
            "dominant_term": filtered_enrichment.dominant_term(),
        }
        if best is None or row["aees_gain"] > best["aees_gain"]:
            best = row
    return {"best_improvement": best, "n_matches": len(analysis.matches)}


# ----------------------------------------------------------------------
# Figure 10 — scalability of the three samplers
# ----------------------------------------------------------------------
def fig10_scalability(
    scale: Optional[float] = None,
    small_dataset: str = "YNG",
    large_dataset: str = "CRE",
    processor_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    ordering: str = "natural",
) -> dict[str, Any]:
    """Reproduce Figure 10: simulated execution time vs processor count for the
    chordal filter with communication, the communication-free chordal filter
    and the random walk, on the small (YNG) and large (CRE) networks.

    Times are produced by the cost model from measured per-rank work (see
    ``repro.parallel.timing``); the paper's absolute seconds are not
    reproducible offline but the curve shapes are.
    """
    series: dict[str, dict[str, dict[int, float]]] = {}
    meta: dict[str, Any] = {}
    for label, name in (("small", small_dataset), ("large", large_dataset)):
        bundle = get_bundle(name, scale)
        meta[label] = {"dataset": name, "n_vertices": bundle.n_vertices, "n_edges": bundle.n_edges}
        series[label] = {"chordal_comm": {}, "chordal_nocomm": {}, "random_walk": {}}
        for p in processor_counts:
            comm = apply_filter(bundle.network, method="chordal_comm", ordering=ordering, n_partitions=p)
            nocomm = apply_filter(bundle.network, method="chordal", ordering=ordering, n_partitions=p)
            walk = apply_filter(bundle.network, method="random_walk", ordering=None, n_partitions=p)
            series[label]["chordal_comm"][p] = float(comm.simulated_time or 0.0)
            series[label]["chordal_nocomm"][p] = float(nocomm.simulated_time or 0.0)
            series[label]["random_walk"][p] = float(walk.simulated_time or 0.0)
    return {"series": series, "meta": meta, "processor_counts": list(processor_counts)}


# ----------------------------------------------------------------------
# Figure 11 — parallelism does not hurt the clusters (1P vs 64P)
# ----------------------------------------------------------------------
def fig11_parallel_consistency(
    scale: Optional[float] = None,
    dataset: str = "CRE",
    ordering: str = "natural",
    processor_counts: Sequence[int] = (1, 64),
    aees_threshold: float = 3.0,
) -> dict[str, Any]:
    """Reproduce Figure 11: cluster overlap against the original network at 1P and
    64P (left panel) and the table of high-AEES clusters (right panel).
    """
    bundle = get_bundle(dataset, scale)
    out: dict[str, Any] = {"dataset": dataset, "ordering": ORDERING_LABELS.get(ordering, ordering)}
    overlap_points: dict[int, list[dict[str, Any]]] = {}
    top_clusters: dict[str, list[dict[str, Any]]] = {}

    orig_rows = []
    for c in bundle.original_clusters:
        enrich = bundle.scorer.cluster(c.subgraph)
        if enrich.aees >= aees_threshold:
            orig_rows.append(
                {
                    "network": "ORIG",
                    "cluster": c.cluster_id,
                    "size": c.n_vertices,
                    "aees": enrich.aees,
                    "max_score": enrich.max_score,
                }
            )
    top_clusters["ORIG"] = orig_rows

    for p in processor_counts:
        analysis = _get_analysis(bundle, "chordal", ordering, p)
        points = [
            {
                "node_overlap": m.node_overlap,
                "edge_overlap": m.edge_overlap,
                "is_new": m.is_found,
            }
            for m in analysis.matches
        ]
        overlap_points[p] = points
        rows = []
        for c, aees in zip(analysis.clusters, analysis.cluster_aees()):
            if aees >= aees_threshold:
                enrich = bundle.scorer.cluster(c.subgraph)
                rows.append(
                    {
                        "network": f"{p}P",
                        "cluster": c.cluster_id,
                        "size": c.n_vertices,
                        "aees": aees,
                        "max_score": enrich.max_score,
                    }
                )
        top_clusters[f"{p}P"] = rows
        out[f"edges_kept_{p}P"] = analysis.result.n_edges_kept
        out[f"new_clusters_{p}P"] = len(analysis.found)
    out["overlap_points"] = overlap_points
    out["top_clusters"] = top_clusters
    return out


# ----------------------------------------------------------------------
# Text claims — random-walk control and border-edge behaviour
# ----------------------------------------------------------------------
def random_walk_control(
    scale: Optional[float] = None,
    datasets: Sequence[str] = ("YNG", "MID", "UNT", "CRE"),
    n_partitions: int = 4,
    seed: int = 0,
) -> dict[str, Any]:
    """Reproduce the H0a claim: the random-walk filter retains too few edges for
    MCODE to find any cluster, while the chordal filter keeps finding them.
    """
    rows = []
    for name in datasets:
        bundle = get_bundle(name, scale)
        walk = _get_analysis(bundle, "random_walk", None, n_partitions, seed=seed)
        chordal = _get_analysis(bundle, "chordal", "natural", n_partitions)
        rows.append(
            {
                "dataset": name,
                "original_clusters": len(bundle.original_clusters),
                "random_walk_clusters": len(walk.clusters),
                "chordal_clusters": len(chordal.clusters),
                "random_walk_edges": walk.result.n_edges_kept,
                "chordal_edges": chordal.result.n_edges_kept,
                "original_edges": bundle.n_edges,
            }
        )
    return {"rows": rows}


def border_edge_study(
    scale: Optional[float] = None,
    dataset: str = "CRE",
    processor_counts: Sequence[int] = (2, 4, 8, 16, 32, 64),
    ordering: str = "natural",
    partition_methods: Sequence[str] = ("block", "bfs", "hash"),
) -> dict[str, Any]:
    """Ablation of the border-edge machinery: border edge counts, duplicates
    (no-comm) and communication volume (with-comm) as the processor count and
    the partitioner vary.
    """
    bundle = get_bundle(dataset, scale)
    rows = []
    for method in partition_methods:
        for p in processor_counts:
            nocomm = apply_filter(
                bundle.network, method="chordal", ordering=ordering, n_partitions=p, partition_method=method
            )
            comm = apply_filter(
                bundle.network, method="chordal_comm", ordering=ordering, n_partitions=p, partition_method=method
            )
            comm_stats = comm.extra.get("comm_stats")
            rows.append(
                {
                    "partitioner": method,
                    "processors": p,
                    "border_edges": nocomm.n_border_edges,
                    "nocomm_duplicates": nocomm.duplicate_border_edges,
                    "nocomm_edges_kept": nocomm.n_edges_kept,
                    "comm_edges_kept": comm.n_edges_kept,
                    "comm_messages": getattr(comm_stats, "messages_sent", 0),
                    "comm_items": getattr(comm_stats, "items_sent", 0),
                }
            )
    return {"dataset": dataset, "rows": rows}
