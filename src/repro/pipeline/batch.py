"""Batched experiment engine.

The per-figure drivers in :mod:`repro.pipeline.experiments` each regenerate
one figure at one scale.  Reproduction sweeps ("all figures at three scales
and two orderings") therefore used to be shell loops that re-derived shared
dataset bundles and re-ran anything that crashed halfway.  This module turns
such a sweep into a single batched run:

* a :class:`RunSpec` names one run — ``(figure, scale, ordering, seed)`` plus
  optional extra driver parameters — and has a stable content hash;
* duplicate specs are collapsed, and runs are grouped by scale so every
  worker process reuses its memoised dataset bundles
  (:func:`repro.pipeline.experiments.get_bundle`) across the runs it owns;
* runs fan out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs > 1``) or execute in-process (``jobs == 1``);
* every run draws its randomness from a per-run stream derived with
  :func:`repro.parallel.rng.derive_seed`, so adding or reordering specs never
  changes another run's result;
* results are JSON files in a cache directory keyed by the spec hash — a
  re-run of the same batch is a cache read, and a crashed sweep resumes where
  it stopped.

The CLI front-end is ``repro batch`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import math
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence

from ..faults import fault_point
from ..parallel.rng import derive_seed
from ..parallel.runner import shutdown_worker_pool
from ..parallel.shm import arena_scope
from . import experiments as exp

__all__ = [
    "DRIVERS",
    "SCALE_ALIASES",
    "RunSpec",
    "BatchRunResult",
    "canonical_hash",
    "driver_names",
    "get_driver",
    "driver_accepts",
    "parse_scale",
    "run_batch",
]


def canonical_hash(data: Any) -> str:
    """Stable 16-hex-digit content hash of a JSON-canonicalisable structure.

    The single hashing convention of the repo's request/run caches: the batch
    engine keys its disk cache with it (via :meth:`RunSpec.spec_hash`) and the
    resident service (:mod:`repro.serve`) keys its in-memory LRU result cache
    with it, so one spec hashed on either side names the same work.
    """
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

#: Registry of batchable experiment drivers: every figure plus the two
#: in-text claims.  ``repro figure`` and ``repro batch`` share this table.
DRIVERS: dict[str, Callable[..., dict]] = {
    "fig04": exp.fig04_aees_by_ordering,
    "fig05": exp.fig05_overlap_scatter,
    "fig06": exp.fig06_node_overlap_vs_aees,
    "fig07": exp.fig07_edge_overlap_vs_aees,
    "fig08": exp.fig08_sensitivity_specificity,
    "fig09": exp.fig09_cluster_refinement,
    "fig10": exp.fig10_scalability,
    "fig11": exp.fig11_parallel_consistency,
    "random-walk-control": exp.random_walk_control,
    "border-edges": exp.border_edge_study,
}

#: Named dataset scales accepted wherever a float scale is (CLI ergonomics).
SCALE_ALIASES: dict[str, float] = {
    "tiny": 0.02,
    "small": 0.05,
    "default": 0.10,
    "full": 1.0,
}


def driver_names() -> list[str]:
    """All batchable driver names in presentation order."""
    return list(DRIVERS)


def get_driver(name: str) -> Callable[..., dict]:
    """Look up a driver by name (case-insensitive); raises ``KeyError``."""
    key = name.strip().lower()
    try:
        return DRIVERS[key]
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; valid: {driver_names()}") from None


def driver_accepts(name: str, parameter: str) -> bool:
    """Return ``True`` when driver ``name`` has a parameter called ``parameter``."""
    return parameter in inspect.signature(get_driver(name)).parameters


def parse_scale(text: str) -> float:
    """Parse a scale argument: a float literal or one of :data:`SCALE_ALIASES`."""
    key = text.strip().lower()
    if key in SCALE_ALIASES:
        return SCALE_ALIASES[key]
    value = float(text)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"scale must be positive and finite, got {text!r}")
    return value


@dataclass(frozen=True)
class RunSpec:
    """One experiment run: a driver plus the swept parameters.

    ``params`` holds extra driver keyword arguments as a sorted tuple of
    ``(name, value)`` pairs so that specs stay hashable and the content hash
    is insensitive to keyword order; build specs with :meth:`create` to get
    that normalisation for free.
    """

    figure: str
    scale: float
    ordering: Optional[str] = None
    seed: Optional[int] = None
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        figure: str,
        scale: float | str,
        ordering: Optional[str] = None,
        seed: Optional[int] = None,
        **params: Any,
    ) -> "RunSpec":
        """Build a normalised spec (validates the driver name and the scale)."""
        get_driver(figure)  # raises on unknown names
        if isinstance(scale, str):
            scale = parse_scale(scale)
        return cls(
            figure=figure.strip().lower(),
            scale=round(float(scale), 6),
            ordering=ordering,
            seed=seed,
            params=tuple(sorted(params.items())),
        )

    def canonical(self) -> dict[str, Any]:
        """JSON-stable representation used for hashing and cache metadata."""
        return {
            "figure": self.figure,
            "scale": self.scale,
            "ordering": self.ordering,
            "seed": self.seed,
            "params": [[k, _jsonify(v)] for k, v in self.params],
        }

    def spec_hash(self) -> str:
        """Stable 16-hex-digit content hash of the spec."""
        return canonical_hash(self.canonical())

    @classmethod
    def from_canonical(cls, data: dict[str, Any]) -> "RunSpec":
        """Rebuild a spec from its :meth:`canonical` form (cache inspection).

        The round trip is lossy for non-JSON ``params`` values (tuples become
        lists, arbitrary objects their ``repr``) — do NOT route specs that
        will actually execute through it; workers receive pickled
        :class:`RunSpec` objects directly (see :func:`_run_group`).
        """
        return cls(
            figure=data["figure"],
            scale=data["scale"],
            ordering=data.get("ordering"),
            seed=data.get("seed"),
            params=tuple((k, v) for k, v in data.get("params", [])),
        )


@dataclass
class BatchRunResult:
    """Outcome of one spec inside a batch."""

    spec: RunSpec
    spec_hash: str
    status: str  # "ran" | "cached" | "failed"
    wall_time: float = 0.0
    output: Any = None
    cache_path: Optional[str] = None
    error: Optional[str] = None

    def row(self) -> dict[str, Any]:
        """Flat summary row for report tables."""
        return {
            "figure": self.spec.figure,
            "scale": self.spec.scale,
            "ordering": self.spec.ordering or "-",
            "seed": "-" if self.spec.seed is None else self.spec.seed,
            "status": self.status,
            "seconds": round(self.wall_time, 3),
            "hash": self.spec_hash,
        }


# ----------------------------------------------------------------------
# serialisation helpers
# ----------------------------------------------------------------------
def _jsonify(obj: Any) -> Any:
    """Recursively coerce a driver output into JSON-representable values.

    Dict keys become strings and unknown objects fall back to ``repr`` — the
    same canonical form is returned for fresh and cache-loaded results, so
    callers never see two shapes for one spec.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [_jsonify(v) for v in obj]
    # numpy scalars expose item(); dataclass-ish results expose as_dict()
    if hasattr(obj, "item") and callable(obj.item):
        try:
            return _jsonify(obj.item())
        except (TypeError, ValueError):
            pass
    if hasattr(obj, "as_dict") and callable(obj.as_dict):
        return _jsonify(obj.as_dict())
    return repr(obj)


def _resolve_seed(spec: RunSpec, root_seed: int) -> RunSpec:
    """Fill in the spec's effective seed for drivers that take one.

    An explicit seed wins; otherwise the run gets its own deterministic
    stream derived from the batch root seed and the spec coordinates, so
    every (figure, scale, ordering) cell is independent but reproducible.
    """
    if not driver_accepts(spec.figure, "seed"):
        if spec.seed is not None:
            raise ValueError(f"driver {spec.figure!r} does not take a seed")
        return spec
    if spec.seed is not None:
        return spec
    seed = derive_seed(root_seed, spec.figure, spec.scale, spec.ordering or "-")
    return replace(spec, seed=seed)


def _driver_kwargs(spec: RunSpec) -> dict[str, Any]:
    """Translate a spec into keyword arguments for its driver."""
    driver = get_driver(spec.figure)
    parameters = inspect.signature(driver).parameters
    kwargs: dict[str, Any] = {"scale": spec.scale}
    if spec.ordering is not None:
        if "ordering" in parameters:
            kwargs["ordering"] = spec.ordering
        elif "orderings" in parameters:
            kwargs["orderings"] = [spec.ordering]
        else:
            raise ValueError(f"driver {spec.figure!r} does not take an ordering")
    if spec.seed is not None:
        kwargs["seed"] = spec.seed
    for name, value in spec.params:
        if name not in parameters:
            raise ValueError(f"driver {spec.figure!r} has no parameter {name!r}")
        kwargs[name] = value
    return kwargs


def run_spec(spec: RunSpec) -> tuple[Any, float]:
    """Execute one (seed-resolved) spec; returns ``(jsonified output, seconds)``."""
    kwargs = _driver_kwargs(spec)
    driver = get_driver(spec.figure)
    t0 = time.perf_counter()
    output = driver(**kwargs)
    return _jsonify(output), time.perf_counter() - t0


def _run_group(specs: list["RunSpec"], arena_dir: Optional[str] = None) -> list[dict[str, Any]]:
    """Process-pool task: run one scale-group of specs in a single worker.

    Grouping by scale is the bundle dedup: within the worker the figure
    drivers share :func:`repro.pipeline.experiments.get_bundle`'s memoised
    bundles, so a (dataset, scale) pair is generated once per group instead
    of once per run.  Specs travel as :class:`RunSpec` objects (pickled for
    process workers), so drivers receive ``params`` values exactly as the
    caller supplied them — the JSON coercion applies only to results and to
    the content hash.
    """
    try:
        return _run_group_keep_pool(specs, arena_dir)
    finally:
        # Drivers that ran filters with backend="process" share one worker
        # pool across the whole group (see repro.parallel.runner); release it
        # when the group is done so batch workers never leak grandchildren.
        shutdown_worker_pool()


def _run_group_keep_pool(
    specs: list["RunSpec"], arena_dir: Optional[str] = None
) -> list[dict[str, Any]]:
    """Run one group of specs, leaving the shared filter worker pool alive.

    The group shares one shared-memory arena (:func:`arena_scope`): every
    filter inside it that runs with a ``process-shm`` backend exports into
    the group arena instead of creating and unlinking a private one per
    call, and the segments are destroyed once when the scale-group ends.
    With ``arena_dir`` the group arena is file-backed under that directory
    and persists instead: a later batch over the same directory re-adopts
    equal graph bundles by content digest rather than re-exporting them.
    """
    out: list[dict[str, Any]] = []
    with arena_scope(path=arena_dir):
        for spec in specs:
            try:
                output, seconds = run_spec(spec)
                out.append({"hash": spec.spec_hash(), "output": output, "seconds": seconds})
            except Exception as err:  # noqa: BLE001 — reported per-run, batch continues
                out.append({"hash": spec.spec_hash(), "error": f"{type(err).__name__}: {err}"})
    return out


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def _cache_file(cache_dir: str, spec: RunSpec, spec_hash: str) -> str:
    return os.path.join(cache_dir, f"{spec.figure}__{spec_hash}.json")


def _quarantine_cache(path: str, reason: str) -> None:
    """Move an unreadable cache entry aside (``.corrupt``) and log it.

    A half-written or truncated entry must not poison every future resume of
    the sweep, and silently deleting it would hide the evidence — the rename
    keeps the bytes for inspection while freeing the slot for a clean rerun.
    """
    quarantined = path + ".corrupt"
    try:
        os.replace(path, quarantined)
    except OSError:
        quarantined = "<rename failed>"
    print(
        f"repro batch: quarantined corrupt cache entry {path} -> {quarantined} ({reason})",
        file=sys.stderr,
    )


def _load_cache(path: str) -> Optional[dict[str, Any]]:
    """Read one cache entry; a missing file is a miss, a corrupt one is quarantined."""
    try:
        fault_point("batch.cache_read", path=path)
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        _quarantine_cache(path, f"{type(exc).__name__}: {exc}")
        return None
    if isinstance(data, dict) and "output" in data:
        return data
    _quarantine_cache(path, "unexpected structure")
    return None


def _write_cache(path: str, payload: dict[str, Any]) -> None:
    """Crash-safe cache write: serialise to a tmp file, fsync, then rename.

    ``os.replace`` is atomic on POSIX, so a reader (or a resumed sweep) only
    ever sees the old entry or the complete new one — never the torn write
    the old in-place ``json.dump`` could leave behind on a crash.
    """
    fault_point("batch.cache_write", path=path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        fault_point("batch.cache_replace", path=path)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def run_batch(
    specs: Sequence[RunSpec],
    cache_dir: Optional[str] = None,
    jobs: int = 1,
    force: bool = False,
    root_seed: int = 0,
    arena_dir: Optional[str] = None,
) -> list[BatchRunResult]:
    """Run a batch of experiment specs with dedup, caching and fan-out.

    Parameters
    ----------
    specs:
        The requested runs; duplicates (same content hash) execute once and
        every occurrence receives the shared result.
    cache_dir:
        Directory for per-spec JSON result files.  ``None`` disables the disk
        cache entirely.
    jobs:
        Worker processes.  ``1`` (default) runs in-process — deterministic,
        and dataset bundles are shared with the caller; ``> 1`` fans the
        scale-groups out over a :class:`ProcessPoolExecutor`.
    force:
        Re-run specs even when a cache entry exists (the entry is rewritten).
    root_seed:
        Root of the per-run RNG streams (see :func:`_resolve_seed`).
    arena_dir:
        Optional directory for a persistent **file-backed** group arena:
        ``process-shm`` filter runs export graph bundles there, and a later
        batch over the same directory re-adopts equal bundles by content
        digest instead of re-exporting (see
        :func:`repro.parallel.shm.arena_scope`).

    Returns
    -------
    One :class:`BatchRunResult` per *input* spec, in input order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    resolved = [_resolve_seed(spec, root_seed) for spec in specs]
    hashes = [spec.spec_hash() for spec in resolved]

    # Deduplicate while preserving first-occurrence order.
    unique: dict[str, RunSpec] = {}
    for spec, h in zip(resolved, hashes):
        unique.setdefault(h, spec)

    results: dict[str, BatchRunResult] = {}
    pending: list[tuple[str, RunSpec]] = []
    if cache_dir is not None:
        os.makedirs(cache_dir, exist_ok=True)
    for h, spec in unique.items():
        path = _cache_file(cache_dir, spec, h) if cache_dir is not None else None
        if path is not None and not force:
            hit = _load_cache(path)
            if hit is not None:
                results[h] = BatchRunResult(
                    spec=spec,
                    spec_hash=h,
                    status="cached",
                    wall_time=float(hit.get("seconds", 0.0)),
                    output=hit["output"],
                    cache_path=path,
                )
                continue
        pending.append((h, spec))

    # Group pending runs by scale so each worker amortises bundle generation
    # (bundles are memoised per (dataset, scale) inside the worker).  When
    # there are more workers than scales, the scale-groups are split
    # round-robin: some bundle work is repeated across chunks, but the sweep
    # actually uses the requested parallelism.
    groups: dict[float, list[tuple[str, RunSpec]]] = {}
    for h, spec in pending:
        groups.setdefault(spec.scale, []).append((h, spec))
    if jobs > len(groups) > 0:
        n_chunks = max(1, jobs // len(groups))
        split: list[list[tuple[str, RunSpec]]] = []
        for group in groups.values():
            chunks = [group[i::n_chunks] for i in range(min(n_chunks, len(group)))]
            split.extend(chunk for chunk in chunks if chunk)
        group_list = split
    else:
        group_list = list(groups.values())

    def _absorb(group: list[tuple[str, RunSpec]], outputs: list[dict[str, Any]]) -> None:
        by_hash = {h: spec for h, spec in group}
        for out in outputs:
            h = out["hash"]
            spec = by_hash[h]
            path = _cache_file(cache_dir, spec, h) if cache_dir is not None else None
            if "error" in out:
                results[h] = BatchRunResult(
                    spec=spec, spec_hash=h, status="failed", error=out["error"]
                )
                continue
            payload = {
                "spec": spec.canonical(),
                "output": out["output"],
                "seconds": out["seconds"],
            }
            if path is not None:
                _write_cache(path, payload)
            results[h] = BatchRunResult(
                spec=spec,
                spec_hash=h,
                status="ran",
                wall_time=out["seconds"],
                output=out["output"],
                cache_path=path,
            )

    if jobs == 1:
        # _run_group shuts the shared filter worker pool down per group; the
        # in-process path keeps it alive across groups (one pool per batch)
        # and releases it once at the end instead.
        try:
            for group in group_list:
                _absorb(group, _run_group_keep_pool([spec for _, spec in group], arena_dir))
        finally:
            shutdown_worker_pool()
    elif group_list:
        with ProcessPoolExecutor(max_workers=min(jobs, len(group_list))) as pool:
            futures = [
                (group, pool.submit(_run_group, [spec for _, spec in group], arena_dir))
                for group in group_list
            ]
            for group, future in futures:
                _absorb(group, future.result())

    return [results[h] for h in hashes]
