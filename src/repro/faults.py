"""Deterministic fault-injection plane.

The runtime threads named *injection sites* through its failure-prone
operations — worker-pool dispatch, SPMD rank spawn, shared-memory
export/attach, communicator send/recv/barrier, serve admission/execution,
batch cache read/write.  Each site is one :func:`fault_point` call; with no
plan installed (production) the call is a module-global ``None`` check and
returns immediately, so the sites cost nothing.  The chaos test tier installs
a seeded :class:`FaultPlan` that schedules faults *by occurrence count* —
"raise ``ArenaError`` on the first export", "kill the worker holding a task
of the second dispatch", "SIGKILL rank 1 of the next SPMD round" — so every
failure is reproducible: the same plan against the same workload fires the
same faults at the same points, and once a rule's budget is spent the
workload proceeds cleanly (which is what lets the chaos tier pin that the
*supervised* output is byte-identical to the fault-free run).

Sites (see ``docs/ARCHITECTURE.md`` for the full table):

==================== =========================================================
``pool.spawn``       shared process-pool creation / growth
``pool.dispatch``    each checked map dispatch (supports ``kill_task``)
``spmd.ranks``       each SPMD process-backend round (supports ``kill_rank``)
``arena.export``     each :meth:`SharedArena.export_bundle` call
``arena.attach``     each attach-side segment mapping
``comm.send``        each communicator send
``comm.recv``        each communicator receive (supports ``hook`` delays)
``comm.barrier``     each barrier entry
``comm.connect``     each socket worker's hub connect (process-sock)
``sock.send``        each TCP frame written (hub routing and worker sends)
``sock.recv``        each TCP frame read off a socket
``serve.admit``      each work-request admission on the daemon
``serve.execute``    each cache-miss execution on an admission worker
``serve.worker``     each ticket pickup by an admission worker thread
``serve.rebuild``    each dataset bundle (re)build on the daemon
``serve.update``     each warm dataset update absorbed on the daemon
``incremental.delta`` each delta-update application (:mod:`repro.incremental`)
``batch.cache_read`` each batch disk-cache entry read
``batch.cache_write`` each batch disk-cache entry write (before the tmp file)
``batch.cache_replace`` the publish step (between tmp write and rename)
==================== =========================================================

Faults only fire in the process that installed the plan.  Failures *inside*
worker processes are injected from the parent side instead: ``kill_task``
poisons one payload of a dispatch so the pool worker executing it SIGKILLs
itself mid-task (deterministically losing that task), and ``kill_rank``
marks one rank of an SPMD round to SIGKILL itself at startup — both without
racing an external kill against scheduler timing.
"""

from __future__ import annotations

import os
import random
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "FaultError",
    "FaultRule",
    "FaultFire",
    "FaultPlan",
    "fault_point",
    "install_plan",
    "clear_plan",
    "active_plan",
    "current_plan",
]


class FaultError(RuntimeError):
    """Default exception raised by an injected ``fail`` rule."""


@dataclass
class FaultRule:
    """One scheduled fault: fire at site ``site`` on hits ``at .. at+times-1``."""

    site: str
    action: str  # "raise" | "kill_task" | "kill_rank" | "hook"
    at: int = 1
    times: int = 1
    exc: type[BaseException] = FaultError
    message: Optional[str] = None
    index: int = 0
    hook: Optional[Callable[[str, dict[str, Any]], None]] = None

    def matches(self, hit: int) -> bool:
        return self.at <= hit < self.at + self.times


@dataclass(frozen=True)
class FaultFire:
    """History record of one fired fault (for test assertions)."""

    site: str
    hit: int
    action: str


class FaultPlan:
    """A seeded, reproducible schedule of faults over named injection sites.

    The plan owns one occurrence counter per site (thread-safe: concurrent
    serve workers may cross the same site) and a list of rules.  ``seed``
    feeds :attr:`rng`, which chaos schedules use to derive *which* occurrence
    or victim to target — the plan itself stays fully deterministic given the
    seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.rules: list[FaultRule] = []
        self.fires: list[FaultFire] = []
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # schedule builders (all return self for chaining)
    # ------------------------------------------------------------------
    def fail(
        self,
        site: str,
        at: int = 1,
        times: int = 1,
        exc: type[BaseException] = FaultError,
        message: Optional[str] = None,
    ) -> "FaultPlan":
        """Raise ``exc`` on the ``at``-th (1-based) hit of ``site`` (``times`` hits)."""
        self.rules.append(
            FaultRule(site=site, action="raise", at=at, times=times, exc=exc, message=message)
        )
        return self

    def kill_task(self, site: str = "pool.dispatch", at: int = 1, index: int = 0) -> "FaultPlan":
        """Poison payload ``index`` of the ``at``-th dispatch: its worker SIGKILLs itself."""
        self.rules.append(FaultRule(site=site, action="kill_task", at=at, index=index))
        return self

    def kill_rank(self, site: str = "spmd.ranks", at: int = 1, rank: int = 0) -> "FaultPlan":
        """SIGKILL rank ``rank`` at startup of the ``at``-th SPMD round."""
        self.rules.append(FaultRule(site=site, action="kill_rank", at=at, index=rank))
        return self

    def hook(
        self,
        site: str,
        fn: Callable[[str, dict[str, Any]], None],
        at: int = 1,
        times: int = 1,
    ) -> "FaultPlan":
        """Run ``fn(site, context)`` on matching hits — a deterministic delay/sync point."""
        self.rules.append(FaultRule(site=site, action="hook", at=at, times=times, hook=fn))
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def hits(self, site: str) -> int:
        """How many times ``site`` has been crossed while this plan was active."""
        with self._lock:
            return self._hits.get(site, 0)

    def fired(self, site: Optional[str] = None) -> list[FaultFire]:
        """The faults fired so far (optionally filtered by site)."""
        with self._lock:
            fires = list(self.fires)
        return fires if site is None else [f for f in fires if f.site == site]

    def exhausted(self) -> bool:
        """``True`` when every rule's budget has been spent."""
        with self._lock:
            fired_by_rule = {}
            for fire in self.fires:
                fired_by_rule[(fire.site, fire.action)] = (
                    fired_by_rule.get((fire.site, fire.action), 0) + 1
                )
        return all(
            sum(1 for f in self.fired(r.site) if f.action == r.action) >= r.times
            for r in self.rules
        )

    # ------------------------------------------------------------------
    # firing (called from fault_point)
    # ------------------------------------------------------------------
    def _trigger(self, site: str, context: dict[str, Any]) -> None:
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            matched = [r for r in self.rules if r.site == site and r.matches(hit)]
            for rule in matched:
                self.fires.append(FaultFire(site=site, hit=hit, action=rule.action))
        for rule in matched:
            self._execute(rule, site, hit, context)

    def _execute(self, rule: FaultRule, site: str, hit: int, context: dict[str, Any]) -> None:
        if rule.action == "raise":
            message = rule.message or f"injected fault at {site!r} (hit {hit})"
            raise rule.exc(message)
        if rule.action == "kill_task":
            payloads = context.get("payloads")
            if payloads:
                idx = rule.index % len(payloads)
                fn, item_args = payloads[idx]
                payloads[idx] = (_die_in_worker, item_args)
            return
        if rule.action == "kill_rank":
            kill_ranks = context.get("kill_ranks")
            if kill_ranks is not None:
                n_ranks = context.get("n_ranks") or 1
                kill_ranks.add(rule.index % n_ranks)
            return
        if rule.action == "hook" and rule.hook is not None:
            rule.hook(site, context)


def _die_in_worker(*_args: Any, **_kwargs: Any) -> None:
    """Poisoned pool payload: SIGKILL the executing worker (never returns)."""
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# the (single) active plan
# ----------------------------------------------------------------------
_plan: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (returns it)."""
    global _plan
    _plan = plan
    return plan


def clear_plan() -> None:
    """Deactivate fault injection (sites return to their zero-cost path)."""
    global _plan
    _plan = None


def current_plan() -> Optional[FaultPlan]:
    """The active plan, or ``None`` when injection is disabled."""
    return _plan


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope ``plan`` to a ``with`` block (always clears, even on error)."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


def fault_point(site: str, **context: Any) -> None:
    """One injection site.  No active plan → a ``None`` check and out.

    ``context`` carries the mutable hooks some actions need (``payloads`` for
    ``kill_task``, ``kill_ranks`` for ``kill_rank``); ``raise`` rules need
    none and simply raise here, in the caller's stack.
    """
    plan = _plan
    if plan is None:
        return
    plan._trigger(site, context)
