"""Test-only hooks for the kernel registry.

The jit tier's bodies are plain Python when numba is absent
(:mod:`repro.kernels.jit_kernels` degrades ``@njit`` to the identity
decorator).  :func:`pure_python_jit` marks the jit tier as *available* in
that state, so the equivalence suite can drive the exact jit code paths —
dispatch, array packing, tie-break logic — and pin their outputs
bit-identically against the ``numpy`` tier on machines without numba.
numba compiles exactly these bodies, so the pin transfers to the compiled
form; CI additionally runs the whole grid with numba installed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from . import _lock


@contextmanager
def pure_python_jit() -> Iterator[None]:
    """Force the jit tier available (uncompiled bodies) for the duration."""
    import repro.kernels as registry

    with _lock:
        registry._force_pure_jit += 1
    try:
        yield
    finally:
        with _lock:
            registry._force_pure_jit -= 1
