"""Typed-array kernel bodies for the ``jit`` tier.

Every kernel here is written in the numba-compilable subset of Python over
plain ``int64``/``uint64``/``float64`` arrays: explicit loops, preallocated
scratch buffers, no Python objects.  When numba imports cleanly each body is
wrapped in ``@njit(cache=True)`` (compiled once per machine, disk-cached);
when it does not, ``_jit`` degrades to the identity decorator and the bodies
remain ordinary Python functions.  That degradation is load-bearing twice
over: the registry can fall back to the ``numpy`` tier without this module
failing to import, and the equivalence suite can execute the *uncompiled*
bodies to pin their outputs bit-identically against the ``numpy`` tier even
on machines without numba (numba compiles exactly these semantics, so the
pin transfers to the compiled form).

Tie-break contracts (must match ``core/chordal.py`` / ``clustering/mcode.py``
exactly — the equivalence grid enforces this):

* MCS selects max ``(weight, -index)``; here a binary **min**-heap over the
  packed key ``(n - weight) * n + v`` — weight descending, index ascending —
  with the same lazy stale-entry skip as the numpy heap.
* DSW greedy selects max ``(|S(v)|, -rank(v))`` where ``rank`` is the
  caller-normalised unique priority permutation; packed min-key
  ``(n - |S(v)|) * n + rank(v)``, vertex recovered through the inverse rank.
  Accepted partners of a processed vertex are emitted in ascending index
  order (``np.sort``), matching ``for w in sorted(su)``.
* MCODE weights preserve the exact expression order
  ``float(kmax) * (2.0 * e / (s * (s - 1)))`` for IEEE bit-identity.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "KERNELS",
    "mcs_order_kernel",
    "dsw_greedy_kernel",
    "dsw_strict_kernel",
    "peel_kernel",
    "subset_edge_count_kernel",
    "mcode_weights_kernel",
    "bitset_bfs_kernel",
]

try:  # pragma: no cover - exercised indirectly via the registry probe
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION: "str | None" = numba.__version__
    _jit = numba.njit(cache=True)
except Exception:  # ImportError normally; any failure means "no jit"
    HAVE_NUMBA = False
    NUMBA_VERSION = None

    def _jit(fn):
        return fn


# ----------------------------------------------------------------------
# packed-key binary min-heap (backing store provided by the caller)
# ----------------------------------------------------------------------
@_jit
def _heap_push(heap, size, key):
    i = size
    heap[i] = key
    while i > 0:
        parent = (i - 1) >> 1
        if heap[parent] <= heap[i]:
            break
        heap[parent], heap[i] = heap[i], heap[parent]
        i = parent
    return size + 1


@_jit
def _heap_pop(heap, size):
    top = heap[0]
    size -= 1
    heap[0] = heap[size]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        child = left
        right = left + 1
        if right < size and heap[right] < heap[left]:
            child = right
        if heap[i] <= heap[child]:
            break
        heap[i], heap[child] = heap[child], heap[i]
        i = child
    return top, size


# ----------------------------------------------------------------------
# Maximum Cardinality Search
# ----------------------------------------------------------------------
@_jit
def mcs_order_kernel(indptr, indices, start):
    """MCS ordering over raw CSR arrays; ``start < 0`` means no start vertex.

    Packed lazy heap: pushes are bounded by n (seeding) + 2E (one per weight
    increment), so the preallocated backing array never overflows.
    """
    n = indptr.shape[0] - 1
    order = np.empty(n, np.int64)
    weight = np.zeros(n, np.int64)
    visited = np.zeros(n, np.uint8)
    heap = np.empty(n + indices.shape[0] + 1, np.int64)
    size = 0
    n_done = 0
    if start >= 0:
        visited[start] = 1
        order[0] = start
        n_done = 1
        for e in range(indptr[start], indptr[start + 1]):
            weight[indices[e]] += 1
    # Lazy seeding: only still-unvisited vertices enter the heap, at their
    # current weights — the start vertex never sits around as a stale entry.
    for v in range(n):
        if visited[v] == 0:
            size = _heap_push(heap, size, (n - weight[v]) * n + v)
    while n_done < n:
        key, size = _heap_pop(heap, size)
        u = key % n
        if visited[u] == 1 or n - key // n != weight[u]:
            continue
        visited[u] = 1
        order[n_done] = u
        n_done += 1
        for e in range(indptr[u], indptr[u + 1]):
            w = indices[e]
            if visited[w] == 0:
                weight[w] += 1
                size = _heap_push(heap, size, (n - weight[w]) * n + w)
    return order


# ----------------------------------------------------------------------
# Dearing–Shier–Warner maximal chordal subgraph
# ----------------------------------------------------------------------
@_jit
def _dsw_process(u, step, indptr, indices, processed, s_len, s_flat, stamp, us, vs, n_acc):
    """Process one vertex: emit its accepted edges, apply the S-update rule.

    ``S(v)`` lives in ``s_flat[indptr[v] : indptr[v] + s_len[v]]`` — S(v) only
    ever holds processed *neighbours* of v, so the CSR row span is a safe
    upper bound.  The subset test ``S(v) ⊆ S(u)`` stamps S(u)'s members with
    the (unique per processed vertex) ``step`` and checks every member of
    S(v) carries the stamp — O(|S(u)| + Σ|S(v)|) per step, the same bound as
    the set implementation.
    """
    processed[u] = 1
    base = indptr[u]
    su_len = s_len[u]
    if su_len > 0:
        partners = np.sort(s_flat[base : base + su_len])
        for t in range(su_len):
            us[n_acc] = u
            vs[n_acc] = partners[t]
            n_acc += 1
        for t in range(su_len):
            stamp[s_flat[base + t]] = step
    for e in range(indptr[u], indptr[u + 1]):
        v = indices[e]
        if processed[v] == 1:
            continue
        sv_len = s_len[v]
        ok = sv_len <= su_len
        if ok:
            vb = indptr[v]
            for t in range(sv_len):
                if stamp[s_flat[vb + t]] != step:
                    ok = False
                    break
        if ok:
            s_flat[indptr[v] + sv_len] = u
            s_len[v] = sv_len + 1
    return n_acc


@_jit
def dsw_greedy_kernel(indptr, indices, rank, start):
    """Greedy DSW; ``rank`` must be a permutation of ``0..n-1`` (0 = first).

    Selection pops max ``(|S|, -rank)`` via the packed min-key
    ``(n - |S(v)|) * n + rank(v)``; after each processed vertex every
    unprocessed neighbour is re-pushed at its *current* size.  That is a
    superset of the reference's grown-only pushes, but every extra entry is
    current at push time and packed keys are value-identical for identical
    (size, rank) states, so the pop sequence — and therefore the accepted
    edge set — is unchanged.
    """
    n = indptr.shape[0] - 1
    m = indices.shape[0]
    processed = np.zeros(n, np.uint8)
    s_len = np.zeros(n, np.int64)
    s_flat = np.empty(m + 1, np.int64)
    stamp = np.full(n, -1, np.int64)
    inv_rank = np.empty(n, np.int64)
    for v in range(n):
        inv_rank[rank[v]] = v
    us = np.empty(m // 2 + 1, np.int64)
    vs = np.empty(m // 2 + 1, np.int64)
    heap = np.empty(n + m + 1, np.int64)
    hsize = 0
    n_acc = _dsw_process(start, 0, indptr, indices, processed, s_len, s_flat, stamp, us, vs, 0)
    for v in range(n):
        if processed[v] == 0:
            hsize = _heap_push(heap, hsize, (n - s_len[v]) * n + rank[v])
    n_proc = 1
    step = 0
    while n_proc < n:
        key, hsize = _heap_pop(heap, hsize)
        u = inv_rank[key % n]
        if processed[u] == 1 or n - key // n != s_len[u]:
            continue
        step += 1
        n_acc = _dsw_process(
            u, step, indptr, indices, processed, s_len, s_flat, stamp, us, vs, n_acc
        )
        n_proc += 1
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            if processed[v] == 0:
                hsize = _heap_push(heap, hsize, (n - s_len[v]) * n + rank[v])
    return us[:n_acc], vs[:n_acc]


@_jit
def dsw_strict_kernel(indptr, indices, sequence):
    """Strict-order DSW: process vertices exactly in ``sequence``."""
    n = indptr.shape[0] - 1
    m = indices.shape[0]
    processed = np.zeros(n, np.uint8)
    s_len = np.zeros(n, np.int64)
    s_flat = np.empty(m + 1, np.int64)
    stamp = np.full(n, -1, np.int64)
    us = np.empty(m // 2 + 1, np.int64)
    vs = np.empty(m // 2 + 1, np.int64)
    n_acc = 0
    for i in range(n):
        n_acc = _dsw_process(
            sequence[i], i, indptr, indices, processed, s_len, s_flat, stamp, us, vs, n_acc
        )
    return us[:n_acc], vs[:n_acc]


# ----------------------------------------------------------------------
# MCODE: k-core peel, induced edge count, stage-1 vertex weights
# ----------------------------------------------------------------------
@_jit
def peel_kernel(indptr, indices, members, k):
    """k-core peel restricted to ``members``; returns the alive mask.

    The fixpoint (the k-core of the induced subgraph) is unique, so removal
    order cannot matter — this LIFO stack reaches the same survivors as the
    set-based ``_peel_subset``.  Each vertex is queued at most once (either
    seeded below k, or exactly when its degree first crosses k-1), bounding
    the stack by ``len(members)``.
    """
    n = indptr.shape[0] - 1
    nm = members.shape[0]
    alive = np.zeros(n, np.uint8)
    for t in range(nm):
        alive[members[t]] = 1
    deg = np.zeros(n, np.int64)
    for t in range(nm):
        u = members[t]
        d = 0
        for e in range(indptr[u], indptr[u + 1]):
            if alive[indices[e]] == 1:
                d += 1
        deg[u] = d
    stack = np.empty(nm + 1, np.int64)
    sp = 0
    for t in range(nm):
        u = members[t]
        if deg[u] < k:
            stack[sp] = u
            sp += 1
    while sp > 0:
        sp -= 1
        u = stack[sp]
        if alive[u] == 0:
            continue
        alive[u] = 0
        for e in range(indptr[u], indptr[u + 1]):
            w = indices[e]
            if alive[w] == 1:
                deg[w] -= 1
                if deg[w] == k - 1:
                    stack[sp] = w
                    sp += 1
    return alive


@_jit
def subset_edge_count_kernel(indptr, indices, members):
    """Edge count of the subgraph induced by ``members``."""
    n = indptr.shape[0] - 1
    in_set = np.zeros(n, np.uint8)
    nm = members.shape[0]
    for t in range(nm):
        in_set[members[t]] = 1
    count = 0
    for t in range(nm):
        u = members[t]
        for e in range(indptr[u], indptr[u + 1]):
            if in_set[indices[e]] == 1:
                count += 1
    return count // 2


@_jit
def mcode_weights_kernel(indptr, indices):
    """MCODE stage 1: weight = k × density of each neighbourhood's top core.

    Per vertex: map its neighbours to local ids through one reusable ``pos``
    scratch array, build the local adjacency rows, level-peel to the highest
    non-empty core, and score it.  The weight expression preserves the
    ``numpy`` tier's evaluation order exactly, so the float64 results are
    bit-identical.
    """
    n = indptr.shape[0] - 1
    weights = np.zeros(n, np.float64)
    pos = np.full(n, -1, np.int64)
    for v in range(n):
        base = indptr[v]
        d = indptr[v + 1] - base
        if d < 2:
            continue
        for li in range(d):
            pos[indices[base + li]] = li
        cap = 0
        for li in range(d):
            u = indices[base + li]
            cap += indptr[u + 1] - indptr[u]
        ladj = np.empty(cap, np.int64)
        lptr = np.zeros(d + 1, np.int64)
        cnt = 0
        for li in range(d):
            u = indices[base + li]
            for e in range(indptr[u], indptr[u + 1]):
                lw = pos[indices[e]]
                if lw >= 0:
                    ladj[cnt] = lw
                    cnt += 1
            lptr[li + 1] = cnt
        # Highest non-empty k-core by level peeling (mirrors _top_core).
        alive = np.ones(d, np.uint8)
        deg = np.empty(d, np.int64)
        for li in range(d):
            deg[li] = lptr[li + 1] - lptr[li]
        best = np.zeros(d, np.uint8)
        best_k = 0
        alive_count = d
        stack = np.empty(d + 1, np.int64)
        k = 0
        while alive_count > 0:
            k += 1
            sp = 0
            for li in range(d):
                if alive[li] == 1 and deg[li] < k:
                    stack[sp] = li
                    sp += 1
            while sp > 0:
                sp -= 1
                li = stack[sp]
                if alive[li] == 0:
                    continue
                alive[li] = 0
                alive_count -= 1
                for e in range(lptr[li], lptr[li + 1]):
                    w = ladj[e]
                    if alive[w] == 1:
                        deg[w] -= 1
                        if deg[w] == k - 1:
                            stack[sp] = w
                            sp += 1
            if alive_count > 0:
                best_k = k
                for li in range(d):
                    best[li] = alive[li]
        if best_k > 0:
            s = 0
            for li in range(d):
                if best[li] == 1:
                    s += 1
            if s >= 2:
                e2 = 0
                for li in range(d):
                    if best[li] == 1:
                        for e in range(lptr[li], lptr[li + 1]):
                            if best[ladj[e]] == 1:
                                e2 += 1
                ec = e2 // 2
                weights[v] = float(best_k) * (2.0 * ec / (s * (s - 1)))
        for li in range(d):
            pos[indices[base + li]] = -1
    return weights


# ----------------------------------------------------------------------
# multi-source bitset BFS (enrichment distance engine)
# ----------------------------------------------------------------------
@_jit
def bitset_bfs_kernel(indptr, indices, src, dst):
    """Answer ``(src, dst)`` distance queries with one multi-source bitset BFS.

    Same plane layout as ``_bitset_distance_queries``: each distinct source
    owns one bit across ``ceil(S / 64)`` uint64 words per vertex.  The level
    expansion is the explicit vertex × neighbour × word triple loop (what
    ``bitwise_or.reduceat`` computes in C), answering every still-pending
    query at the level its source bit first reaches the destination; ``-1``
    for unreachable pairs.
    """
    nq = src.shape[0]
    out = np.full(nq, -1, np.int64)
    n = indptr.shape[0] - 1
    pending = np.empty(nq, np.int64)
    n_pending = 0
    for q in range(nq):
        if src[q] == dst[q]:
            out[q] = 0
        else:
            pending[n_pending] = q
            n_pending += 1
    if n_pending == 0 or indices.shape[0] == 0:
        return out
    sources = np.unique(src)
    s_count = sources.shape[0]
    s_idx = np.searchsorted(sources, src)
    word = np.empty(nq, np.int64)
    bit = np.empty(nq, np.uint64)
    for q in range(nq):
        word[q] = s_idx[q] // 64
        bit[q] = np.uint64(s_idx[q] % 64)
    n_words = (s_count + 63) // 64
    reached = np.zeros((n, n_words), np.uint64)
    for i in range(s_count):
        reached[sources[i], i // 64] |= np.uint64(1) << np.uint64(i % 64)
    frontier = reached.copy()
    new = np.zeros((n, n_words), np.uint64)
    d = 0
    while n_pending > 0:
        d += 1
        any_new = False
        for v in range(n):
            lo = indptr[v]
            hi = indptr[v + 1]
            for w in range(n_words):
                acc = np.uint64(0)
                for e in range(lo, hi):
                    acc |= frontier[indices[e], w]
                acc = acc & ~reached[v, w]
                new[v, w] = acc
                if acc != np.uint64(0):
                    reached[v, w] |= acc
                    any_new = True
        if not any_new:
            break
        kept = 0
        for t in range(n_pending):
            q = pending[t]
            if (new[dst[q], word[q]] >> bit[q]) & np.uint64(1) != np.uint64(0):
                out[q] = d
            else:
                pending[kept] = q
                kept += 1
        n_pending = kept
        tmp = frontier
        frontier = new
        new = tmp
    return out


#: Kernel table the registry dispatches through (``jit_impl(name)``).
KERNELS = {
    "mcs_order": mcs_order_kernel,
    "dsw_greedy": dsw_greedy_kernel,
    "dsw_strict": dsw_strict_kernel,
    "peel": peel_kernel,
    "subset_edge_count": subset_edge_count_kernel,
    "mcode_weights": mcode_weights_kernel,
    "bitset_bfs": bitset_bfs_kernel,
}
