"""Kernel backend registry: ``reference`` / ``numpy`` / ``jit`` tiers.

Modeled on :func:`repro.parallel.runner.available_backends`: every hot kernel
(MCS ordering, DSW extraction, MCODE peel/weights, bitset BFS) is available
in three behaviourally identical tiers —

* ``reference`` — the retained seed bodies (label-and-set implementations);
  dispatched at the public label-level functions, where the seed semantics
  live.  At the index-kernel level reference is served by the ``numpy`` tier
  (the seed bodies do not speak indices).
* ``numpy`` — the CSR/array implementations grown in PRs 1–5 (the default).
* ``jit`` — numba ``@njit(cache=True)`` ports of the same loops
  (:mod:`repro.kernels.jit_kernels`).  Auto-selected only when numba imports
  cleanly; requesting it without numba warns once and falls back to
  ``numpy``.  There is **no hard numba dependency** — install it via the
  ``repro[kernels]`` extra.

Resolution order, first match wins:

1. per-call ``kernels=`` argument,
2. an active :func:`kernel_backend` context (how ``apply_filter`` /
   ``analyze_filter`` scope a per-call tier across their internal helpers),
3. the process default set by :func:`set_kernel_backend`,
4. the ``REPRO_KERNELS`` environment variable (how spawned workers inherit
   the CLI's ``--kernels`` choice),
5. ``auto``: ``jit`` when available, else ``numpy``.

All tiers produce byte-identical outputs (the equivalence grid in
``tests/test_kernels.py`` pins this), so the selection is purely a
performance knob.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "KERNEL_TIERS",
    "available_kernel_tiers",
    "set_kernel_backend",
    "get_kernel_backend",
    "resolve_kernels",
    "kernel_backend",
    "jit_available",
    "jit_impl",
    "kernel_tier_info",
    "warm_kernels",
    "warm_worker",
]

KERNEL_TIERS = ("reference", "numpy", "jit")

_lock = threading.Lock()
_process_default: Optional[str] = None
# Context-override stack.  Deliberately process-global rather than
# thread-local: the thread backends run rank bodies in worker threads that
# must see the tier `apply_filter` scoped for the call.  Tiers are
# output-identical, so a concurrent overlap (two serve requests with
# different per-call tiers) can only shift *where* time is spent, never what
# is computed.
_override: list[str] = []
_jit_probe: Optional[bool] = None
_force_pure_jit = 0
_warned_jit_unavailable = False


def available_kernel_tiers() -> list[str]:
    """The selectable kernel tiers, in escalation order."""
    return list(KERNEL_TIERS)


def _validate(name: str) -> str:
    label = str(name).strip().lower()
    if label != "auto" and label not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel tier {name!r}; expected one of "
            f"{available_kernel_tiers()} (or 'auto')"
        )
    return label


def _jit_ready() -> bool:
    """Can the jit tier serve? (numba importable, or forced pure-python)."""
    global _jit_probe
    if _force_pure_jit > 0:
        return True
    if _jit_probe is None:
        try:
            from . import jit_kernels

            _jit_probe = bool(jit_kernels.HAVE_NUMBA)
        except Exception:  # pragma: no cover - defensive: import must not raise
            _jit_probe = False
    return _jit_probe


def set_kernel_backend(name: Optional[str]) -> str:
    """Set the process-default kernel tier; returns the tier now active.

    ``None`` or ``"auto"`` restores automatic selection (jit when available,
    numpy otherwise).
    """
    global _process_default
    label = "auto" if name is None else _validate(name)
    with _lock:
        _process_default = None if label == "auto" else label
    return resolve_kernels()


def get_kernel_backend() -> str:
    """The *requested* process default (``"auto"`` when unset)."""
    return _process_default or "auto"


def resolve_kernels(explicit: Optional[str] = None) -> str:
    """Resolve a kernel request to the tier that will actually serve.

    Raises :class:`ValueError` for unknown names; a ``jit`` request without
    numba warns once per process and resolves to ``numpy``.
    """
    global _warned_jit_unavailable
    if explicit is not None:
        label = _validate(explicit)
    elif _override:
        label = _override[-1]
    elif _process_default is not None:
        label = _process_default
    else:
        label = _validate(os.environ.get("REPRO_KERNELS") or "auto")
    if label == "auto":
        return "jit" if _jit_ready() else "numpy"
    if label == "jit" and not _jit_ready():
        with _lock:
            if not _warned_jit_unavailable:
                _warned_jit_unavailable = True
                warnings.warn(
                    "kernel tier 'jit' requested but numba is not available; "
                    "falling back to 'numpy' (install the repro[kernels] "
                    "extra to enable jit)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return "numpy"
    return label


@contextmanager
def kernel_backend(name: Optional[str]) -> Iterator[None]:
    """Scope a kernel tier for the duration of a call (``None`` = no-op).

    This is how the per-call ``kernels=`` of ``apply_filter`` /
    ``analyze_filter`` reaches every kernel the call touches without
    threading a keyword through all the samplers.
    """
    if name is None:
        yield
        return
    label = _validate(name)
    with _lock:
        _override.append(label)
    try:
        yield
    finally:
        with _lock:
            _override.remove(label)


def jit_available() -> bool:
    """``True`` when the jit tier can serve (numba importable)."""
    return _jit_ready()


def jit_impl(name: str) -> Callable[..., Any]:
    """The jit-tier callable for a registered kernel name."""
    from . import jit_kernels

    return jit_kernels.KERNELS[name]


def kernel_tier_info() -> dict[str, Any]:
    """Operator-facing report: requested/active tier, numba availability."""
    numba_version: Optional[str] = None
    pure_python = False
    try:
        from . import jit_kernels

        numba_version = jit_kernels.NUMBA_VERSION
        pure_python = _force_pure_jit > 0 and not jit_kernels.HAVE_NUMBA
    except Exception:  # pragma: no cover - defensive
        pass
    return {
        "tiers": available_kernel_tiers(),
        "requested": get_kernel_backend(),
        "active": resolve_kernels(),
        "jit_available": _jit_ready(),
        "numba": numba_version,
        "pure_python_jit": pure_python,
    }


def warm_kernels() -> dict[str, float]:
    """Compile (and disk-cache) every jit kernel on tiny inputs.

    Returns per-kernel wall seconds — the compile cost when numba is present
    and cold, near-zero afterwards (``cache=True``) or in pure-python mode.
    Returns an empty dict when the jit tier cannot serve, so callers can
    invoke it unconditionally.
    """
    if not _jit_ready():
        return {}
    import numpy as np

    from . import jit_kernels

    # A 4-cycle plus chord: exercises every loop at least once.
    indptr = np.array([0, 3, 5, 8, 10], dtype=np.int64)
    indices = np.array([1, 2, 3, 0, 2, 0, 1, 3, 0, 2], dtype=np.int64)
    members = np.arange(4, dtype=np.int64)
    rank = np.arange(4, dtype=np.int64)
    seq = np.arange(4, dtype=np.int64)
    pairs = np.array([0, 3], dtype=np.int64), np.array([2, 1], dtype=np.int64)
    calls: list[tuple[str, tuple]] = [
        ("mcs_order", (indptr, indices, np.int64(-1))),
        ("dsw_greedy", (indptr, indices, rank, np.int64(0))),
        ("dsw_strict", (indptr, indices, seq)),
        ("peel", (indptr, indices, members, np.int64(2))),
        ("subset_edge_count", (indptr, indices, members)),
        ("mcode_weights", (indptr, indices)),
        ("bitset_bfs", (indptr, indices) + pairs),
    ]
    timings: dict[str, float] = {}
    for name, args in calls:
        t0 = time.perf_counter()
        jit_kernels.KERNELS[name](*args)
        timings[name] = time.perf_counter() - t0
    return timings


def warm_worker() -> None:
    """Best-effort jit warm-up for pool workers; never raises.

    Installed as the worker-pool initializer so each spawned worker compiles
    (or loads from the shared ``cache=True`` disk cache) before its first
    task instead of stalling mid-map.  A no-op unless the ambient tier
    resolves to ``jit``.
    """
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            if resolve_kernels() == "jit":
                warm_kernels()
    except Exception:
        pass


def _reset_for_tests() -> None:
    """Clear all mutable registry state (tests only)."""
    global _process_default, _jit_probe, _warned_jit_unavailable
    with _lock:
        _process_default = None
        _jit_probe = None
        _warned_jit_unavailable = False
        _override.clear()
