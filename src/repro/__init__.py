"""repro — parallel adaptive (chordal-subgraph) sampling for biological networks.

A reproduction of Cooper (Dempsey), Duraisamy, Bhowmick & Ali,
*"The Development of Parallel Adaptive Sampling Algorithms for Analyzing
Biological Networks"* (IPPS/IPDPSW 2012).

The package is organised as one sub-package per subsystem:

``repro.graph``
    graph data structure, generators, vertex orderings, partitioners.
``repro.parallel``
    simulated MPI communicator, SPMD runner, scalability cost model.
``repro.expression``
    synthetic microarray studies and Pearson correlation networks.
``repro.ontology``
    GO-like DAG, annotations and edge-enrichment (AEES) scoring.
``repro.clustering``
    MCODE complex detection, cluster overlap and quadrant evaluation.
``repro.core``
    the paper's contribution — sequential and parallel maximal chordal
    subgraph filters plus the random-walk control, behind ``apply_filter``.
``repro.kernels``
    the kernel backend registry — ``reference`` / ``numpy`` / ``jit``
    execution tiers for the hot loops, selected per call, per process or
    via ``REPRO_KERNELS``.
``repro.pipeline``
    end-to-end experiments and the per-figure drivers used by the benchmarks.

Quickstart
----------
>>> from repro import make_study, apply_filter, mcode_clusters
>>> study = make_study("CRE", scale=0.05)
>>> network = study.network()
>>> filtered = apply_filter(network, method="chordal", ordering="high_degree", n_partitions=4)
>>> clusters = mcode_clusters(filtered.graph)
"""

from .clustering import Cluster, MCODEParams, mcode_clusters
from .core import (
    FilterResult,
    apply_filter,
    is_chordal,
    maximal_chordal_subgraph,
    parallel_chordal_comm_filter,
    parallel_chordal_nocomm_filter,
    parallel_random_walk_filter,
    sequential_chordal_filter,
)
from .expression import CorrelationThreshold, ExpressionMatrix, build_correlation_network, make_study
from .faults import FaultError, FaultPlan, FaultRule, active_plan, clear_plan, current_plan, fault_point, install_plan
from .graph import Graph
from .kernels import (
    available_kernel_tiers,
    kernel_backend,
    kernel_tier_info,
    set_kernel_backend,
)
from .ontology import AnnotationTable, EnrichmentScorer, GODag
from .pipeline import analyze_filter, prepare_dataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "is_chordal",
    "maximal_chordal_subgraph",
    "FilterResult",
    "apply_filter",
    "sequential_chordal_filter",
    "parallel_chordal_nocomm_filter",
    "parallel_chordal_comm_filter",
    "parallel_random_walk_filter",
    "ExpressionMatrix",
    "CorrelationThreshold",
    "build_correlation_network",
    "make_study",
    "GODag",
    "AnnotationTable",
    "EnrichmentScorer",
    "Cluster",
    "MCODEParams",
    "mcode_clusters",
    "prepare_dataset",
    "analyze_filter",
    "available_kernel_tiers",
    "kernel_backend",
    "kernel_tier_info",
    "set_kernel_backend",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear_plan",
    "current_plan",
    "fault_point",
    "install_plan",
]
