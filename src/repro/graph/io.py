"""Edge-list and adjacency I/O for :class:`repro.graph.Graph`.

Correlation networks are conventionally exchanged as whitespace- or
tab-separated edge lists (optionally with a weight column holding the Pearson
correlation).  These helpers read and write that format plus a trivial
adjacency-list format, so example scripts can persist intermediate networks.
"""

from __future__ import annotations

import io
import os
from collections.abc import Hashable
from pathlib import Path
from typing import TextIO, Union

from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_adjacency",
    "read_adjacency",
    "edge_list_string",
    "graph_from_string",
]

PathLike = Union[str, os.PathLike]
Vertex = Hashable


def _open_for_write(target: Union[PathLike, TextIO]):
    if hasattr(target, "write"):
        return target, False
    return open(Path(target), "w", encoding="utf-8"), True


def _open_for_read(source: Union[PathLike, TextIO]):
    if hasattr(source, "read"):
        return source, False
    return open(Path(source), "r", encoding="utf-8"), True


def write_edge_list(
    graph: Graph,
    target: Union[PathLike, TextIO],
    weight_attr: str | None = None,
    delimiter: str = "\t",
    include_isolated: bool = True,
) -> None:
    """Write the graph as an edge list, one ``u<delim>v[<delim>weight]`` line per edge.

    Isolated vertices are emitted as single-column lines when
    ``include_isolated`` is true so that the vertex set round-trips.
    """
    handle, should_close = _open_for_write(target)
    try:
        written: set[Vertex] = set()
        for u, v in graph.iter_edges():
            if weight_attr is not None:
                w = graph.edge_attr(u, v, weight_attr, "")
                handle.write(f"{u}{delimiter}{v}{delimiter}{w}\n")
            else:
                handle.write(f"{u}{delimiter}{v}\n")
            written.add(u)
            written.add(v)
        if include_isolated:
            for v in graph.vertices():
                if v not in written and graph.degree(v) == 0:
                    handle.write(f"{v}\n")
    finally:
        if should_close:
            handle.close()


def read_edge_list(
    source: Union[PathLike, TextIO],
    weight_attr: str | None = None,
    delimiter: str | None = None,
    comment: str = "#",
) -> Graph:
    """Read an edge list written by :func:`write_edge_list`.

    ``delimiter=None`` splits on arbitrary whitespace.  Lines with a single
    token declare isolated vertices; a third column is parsed as a float and
    attached as ``weight_attr`` (default attribute name ``"weight"``).
    """
    attr = weight_attr or "weight"
    handle, should_close = _open_for_read(source)
    g = Graph()
    try:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(delimiter) if delimiter else line.split()
            if len(parts) == 1:
                g.add_vertex(parts[0])
            elif len(parts) == 2:
                g.add_edge(parts[0], parts[1])
            else:
                try:
                    w = float(parts[2])
                except ValueError:
                    w = parts[2]
                g.add_edge(parts[0], parts[1], **{attr: w})
    finally:
        if should_close:
            handle.close()
    return g


def write_adjacency(graph: Graph, target: Union[PathLike, TextIO], delimiter: str = "\t") -> None:
    """Write one line per vertex: ``v<delim>nbr1<delim>nbr2…``."""
    handle, should_close = _open_for_write(target)
    try:
        for v in graph.vertices():
            nbrs = delimiter.join(str(n) for n in graph.neighbors(v))
            handle.write(f"{v}{delimiter}{nbrs}\n" if nbrs else f"{v}\n")
    finally:
        if should_close:
            handle.close()


def read_adjacency(source: Union[PathLike, TextIO], delimiter: str | None = None, comment: str = "#") -> Graph:
    """Read the adjacency format written by :func:`write_adjacency`."""
    handle, should_close = _open_for_read(source)
    g = Graph()
    try:
        for raw in handle:
            line = raw.rstrip("\n")
            if not line.strip() or line.lstrip().startswith(comment):
                continue
            parts = line.split(delimiter) if delimiter else line.split()
            v = parts[0]
            g.add_vertex(v)
            for nbr in parts[1:]:
                g.add_edge(v, nbr)
    finally:
        if should_close:
            handle.close()
    return g


def edge_list_string(graph: Graph, weight_attr: str | None = None) -> str:
    """Return the edge-list serialisation as a string (convenience for tests)."""
    buf = io.StringIO()
    write_edge_list(graph, buf, weight_attr=weight_attr)
    return buf.getvalue()


def graph_from_string(text: str, weight_attr: str | None = None) -> Graph:
    """Parse an edge-list string produced by :func:`edge_list_string`."""
    return read_edge_list(io.StringIO(text), weight_attr=weight_attr)
