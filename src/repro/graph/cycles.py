"""Cycle and triangle utilities.

The chordal filter's correctness arguments revolve around cycles: a chordal
graph has no induced (chordless) cycle longer than a triangle, the parallel
algorithms can create a few long cycles across partition boundaries
("quasi-chordal subgraphs"), and the C3 (triangle) motif is the biological
signal the filter is designed to preserve.  This module provides the
machinery for measuring all of that.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable
from typing import Optional

from .graph import Graph, edge_key

__all__ = [
    "count_triangles",
    "triangles_of_edge",
    "edge_in_triangle",
    "local_clustering",
    "average_clustering",
    "has_cycle",
    "cycle_basis_sizes",
    "find_chordless_cycle",
    "girth_at_least",
    "break_cycles",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def count_triangles(graph: Graph) -> int:
    """Return the number of distinct triangles in the graph.

    Uses the standard neighbour-intersection method with degree-based edge
    orientation so every triangle is counted exactly once.
    """
    # Orient each edge from lower-rank to higher-rank endpoint (rank = (degree, label)).
    rank = {v: (graph.degree(v), repr(v)) for v in graph.vertices()}
    higher: dict[Vertex, set[Vertex]] = {v: set() for v in graph.vertices()}
    for u, v in graph.iter_edges():
        if rank[u] <= rank[v]:
            higher[u].add(v)
        else:
            higher[v].add(u)
    total = 0
    for u in graph.vertices():
        hu = higher[u]
        for v in hu:
            total += len(hu & higher[v])
    return total


def triangles_of_edge(graph: Graph, u: Vertex, v: Vertex) -> list[Vertex]:
    """Return the vertices ``w`` such that ``{u, v, w}`` is a triangle."""
    if not graph.has_edge(u, v):
        return []
    nu = graph.neighbor_set(u)
    nv = graph.neighbor_set(v)
    return sorted(nu & nv, key=repr)


def edge_in_triangle(graph: Graph, u: Vertex, v: Vertex) -> bool:
    """Return ``True`` when the edge ``{u, v}`` participates in at least one triangle."""
    if not graph.has_edge(u, v):
        return False
    nu = graph.neighbor_set(u)
    for w in graph.neighbors(v):
        if w in nu:
            return True
    return False


def local_clustering(graph: Graph, v: Vertex) -> float:
    """Return the local clustering coefficient of ``v`` (0.0 for degree < 2)."""
    nbrs = graph.neighbors(v)
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    nbr_set = set(nbrs)
    for i, a in enumerate(nbrs):
        adj_a = graph.neighbor_set(a)
        for b in nbrs[i + 1 :]:
            if b in adj_a:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Return the mean local clustering coefficient over all vertices."""
    n = graph.n_vertices
    if n == 0:
        return 0.0
    return sum(local_clustering(graph, v) for v in graph.vertices()) / n


def has_cycle(graph: Graph) -> bool:
    """Return ``True`` when the graph contains any cycle (i.e. it is not a forest)."""
    visited: set[Vertex] = set()
    for start in graph.vertices():
        if start in visited:
            continue
        parent: dict[Vertex, Optional[Vertex]] = {start: None}
        stack = [start]
        visited.add(start)
        while stack:
            u = stack.pop()
            for w in graph.neighbors(u):
                if w not in visited:
                    visited.add(w)
                    parent[w] = u
                    stack.append(w)
                elif parent.get(u) != w:
                    return True
    return False


def cycle_basis_sizes(graph: Graph) -> list[int]:
    """Return the lengths of the cycles in a fundamental cycle basis.

    A spanning forest is built; every non-tree edge closes exactly one
    fundamental cycle whose length is the tree distance between its endpoints
    plus one.  The multiset of lengths gives a quick fingerprint of how far a
    quasi-chordal subgraph is from being triangulated (a chordal graph still
    has cycles, but chordless ones no longer than 3).
    """
    sizes: list[int] = []
    visited: set[Vertex] = set()
    parent: dict[Vertex, Optional[Vertex]] = {}
    depth: dict[Vertex, int] = {}
    tree_edges: set[Edge] = set()
    for start in graph.vertices():
        if start in visited:
            continue
        visited.add(start)
        parent[start] = None
        depth[start] = 0
        queue: deque[Vertex] = deque([start])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if w not in visited:
                    visited.add(w)
                    parent[w] = u
                    depth[w] = depth[u] + 1
                    tree_edges.add(edge_key(u, w))
                    queue.append(w)
    for u, v in graph.iter_edges():
        if edge_key(u, v) in tree_edges:
            continue
        # tree path length between u and v
        a, b = u, v
        length = 0
        while a != b:
            if depth[a] < depth[b]:
                a, b = b, a
            a = parent[a]  # type: ignore[assignment]
            length += 1
        sizes.append(length + 1)
    return sorted(sizes)


def find_chordless_cycle(graph: Graph, min_length: int = 4) -> Optional[list[Vertex]]:
    """Return one chordless (induced) cycle of length ``>= min_length`` or ``None``.

    The search examines, for every edge ``(u, v)``, the shortest alternative
    path from ``u`` to ``v`` in the graph with the edge removed and all common
    neighbours of ``u`` and ``v`` excluded; if such a path exists the edge plus
    the path form a cycle of length ≥ 4 with no chord between ``u`` and the
    path interior adjacent to both endpoints.  The cycle returned is then
    shrunk to an induced cycle by repeatedly short-cutting chords.  This is a
    verification helper for tests (exponential worst cases are avoided because
    it is only used on small graphs / counterexample hunting).
    """
    if min_length < 4:
        raise ValueError("chordless cycles of interest have length >= 4")
    for u, v in graph.edges():
        banned = (graph.neighbor_set(u) & graph.neighbor_set(v)) | {u, v}
        # BFS from u to v avoiding the edge and common neighbours
        parent: dict[Vertex, Vertex] = {}
        queue: deque[Vertex] = deque()
        for w in graph.neighbors(u):
            if w != v and w not in banned:
                parent[w] = u
                queue.append(w)
        found: Optional[Vertex] = None
        while queue and found is None:
            x = queue.popleft()
            for y in graph.neighbors(x):
                if y == v:
                    found = x
                    break
                if y in banned or y in parent or y == u:
                    continue
                parent[y] = x
                queue.append(y)
        if found is None:
            continue
        path = [found]
        while path[-1] != u:
            path.append(parent[path[-1]])
        cycle = [v] + path  # v, ..., u
        induced = _shrink_to_induced_cycle(graph, cycle)
        if induced is not None and len(induced) >= min_length:
            return induced
    return None


def _shrink_to_induced_cycle(graph: Graph, cycle: list[Vertex]) -> Optional[list[Vertex]]:
    """Shrink a simple cycle to an induced one by short-cutting across chords."""
    current = list(cycle)
    changed = True
    while changed and len(current) >= 4:
        changed = False
        n = len(current)
        for i in range(n):
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue  # consecutive around the cycle
                a, b = current[i], current[j]
                if graph.has_edge(a, b):
                    # keep the shorter arc plus the chord
                    arc1 = current[i : j + 1]
                    arc2 = current[j:] + current[: i + 1]
                    current = arc1 if len(arc1) <= len(arc2) else arc2
                    changed = True
                    break
            if changed:
                break
    return current if len(current) >= 4 else None


def girth_at_least(graph: Graph, k: int) -> bool:
    """Return ``True`` when the graph has no cycle shorter than ``k``.

    Uses per-vertex BFS truncated at depth ``k // 2``; intended for the small
    graphs used in tests.
    """
    if k <= 3:
        return True
    for s in graph.vertices():
        dist = {s: 0}
        parent = {s: None}
        queue: deque[Vertex] = deque([s])
        while queue:
            u = queue.popleft()
            if dist[u] >= k // 2:
                continue
            for w in graph.neighbors(u):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    parent[w] = u
                    queue.append(w)
                elif parent[u] != w:
                    cycle_len = dist[u] + dist[w] + 1
                    if cycle_len < k:
                        return False
    return True


def break_cycles(graph: Graph, protected: Optional[Iterable[Edge]] = None) -> tuple[Graph, list[Edge]]:
    """Return a forest-inducing subgraph obtained by deleting one edge per fundamental cycle.

    ``protected`` edges are never deleted (when possible).  Returns the new
    graph together with the list of removed edges.  Used by the optional
    cycle-repair pass on border-edge-induced subgraphs (Section III.A of the
    paper discusses copying the border subgraph to one processor and deleting
    edges to break the large cycles).
    """
    protected_set = {edge_key(*e) for e in (protected or [])}
    g = graph.copy()
    removed: list[Edge] = []
    while True:
        cycle_edge = _find_cycle_edge(g, protected_set)
        if cycle_edge is None:
            break
        g.remove_edge(*cycle_edge)
        removed.append(cycle_edge)
    return g, removed


def _find_cycle_edge(graph: Graph, protected: set[Edge]) -> Optional[Edge]:
    """Find a non-tree (cycle-closing) edge, preferring unprotected edges.

    The spanning forest is grown depth-first with protected edges explored
    first, so protected edges become tree edges whenever possible and the
    cycle-closing edge reported is unprotected whenever the cycle contains at
    least one unprotected edge.
    """
    visited: set[Vertex] = set()
    parent: dict[Vertex, Optional[Vertex]] = {}
    fallback: Optional[Edge] = None
    for start in graph.vertices():
        if start in visited:
            continue
        stack: list[tuple[Optional[Vertex], Vertex]] = [(None, start)]
        while stack:
            p, u = stack.pop()
            if u in visited:
                # (p, u) closes a cycle unless it is the tree edge seen from the
                # other side.
                if p is None or parent.get(u) == p or parent.get(p) == u:
                    continue
                key = edge_key(p, u)
                if key not in protected:
                    return key
                if fallback is None:
                    fallback = key
                continue
            visited.add(u)
            parent[u] = p
            nbrs = [w for w in graph.neighbors(u) if w != p]
            # LIFO stack: push unprotected edges first so protected edges are
            # explored first and join the spanning tree whenever possible.
            nbrs.sort(key=lambda w: (edge_key(u, w) in protected, repr(w)))
            for w in nbrs:
                stack.append((u, w))
    return fallback
