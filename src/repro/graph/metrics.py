"""Structural metrics for comparing original and sampled networks.

The graph-sampling literature the paper positions itself against (Leskovec &
Faloutsos 2006; Maiya & Berger-Wolf 2011) evaluates samplers by how well they
preserve structural properties — degree distribution, clustering, reach.  The
paper argues structural preservation is the wrong goal for noisy correlation
networks, but the benchmark harness still reports these metrics so the two
filters can be contrasted on both axes.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from .cycles import average_clustering, count_triangles
from .graph import Graph
from .traversal import connected_components, shortest_path_lengths

__all__ = [
    "degree_histogram",
    "degree_statistics",
    "component_size_distribution",
    "edge_retention",
    "vertex_coverage",
    "average_path_length_sampled",
    "GraphSummary",
    "summarize_graph",
    "compare_summaries",
]

Vertex = Hashable


def _degree_array(graph: Graph) -> np.ndarray:
    """All vertex degrees as one array (insertion order), no per-vertex calls."""
    return np.fromiter(
        (len(nbrs) for nbrs in graph._adj.values()),
        dtype=np.int64,
        count=graph.n_vertices,
    )


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Return a mapping degree → number of vertices with that degree."""
    if graph.n_vertices == 0:
        return {}
    counts = np.bincount(_degree_array(graph))
    return {int(d): int(c) for d, c in enumerate(counts) if c}


def degree_statistics(graph: Graph) -> dict[str, float]:
    """Return mean / max / median degree and degree variance."""
    if graph.n_vertices == 0:
        return {"mean": 0.0, "max": 0.0, "median": 0.0, "variance": 0.0}
    degs = _degree_array(graph).astype(float)
    return {
        "mean": float(degs.mean()),
        "max": float(degs.max()),
        "median": float(np.median(degs)),
        "variance": float(degs.var()),
    }


def component_size_distribution(graph: Graph) -> list[int]:
    """Return the sorted (descending) sizes of the connected components."""
    return sorted((len(c) for c in connected_components(graph)), reverse=True)


def edge_retention(original: Graph, sampled: Graph) -> float:
    """Return the fraction of original edges present in the sampled graph.

    Counted by per-vertex adjacency-set intersection (each shared undirected
    edge is seen from both endpoints) — no canonical edge keys, no per-edge
    membership calls.
    """
    if original.n_edges == 0:
        return 1.0
    sampled_adj = sampled._adj
    shared_directed = 0
    for u, nbrs in original._adj.items():
        sampled_nbrs = sampled_adj.get(u)
        if sampled_nbrs:
            shared_directed += len(nbrs.keys() & sampled_nbrs.keys())
    return (shared_directed // 2) / original.n_edges


def vertex_coverage(original: Graph, sampled: Graph) -> float:
    """Return the fraction of original vertices that are non-isolated in the sample."""
    if original.n_vertices == 0:
        return 1.0
    sampled_adj = sampled._adj
    covered = sum(1 for v in original._adj if sampled_adj.get(v))
    return covered / original.n_vertices


def average_path_length_sampled(graph: Graph, n_sources: int = 32, seed: int = 0) -> float:
    """Estimate the average shortest-path length by BFS from sampled sources.

    Pairs in different components are ignored.  Returns 0.0 for graphs with
    fewer than two vertices or no finite pairs.
    """
    verts = graph.vertices()
    if len(verts) < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    k = min(n_sources, len(verts))
    sources = [verts[int(i)] for i in rng.choice(len(verts), size=k, replace=False)]
    total = 0
    count = 0
    for s in sources:
        dist = shortest_path_lengths(graph, s)
        for v, d in dist.items():
            if v != s:
                total += d
                count += 1
    return total / count if count else 0.0


@dataclass(frozen=True)
class GraphSummary:
    """A compact structural fingerprint of a network."""

    n_vertices: int
    n_edges: int
    density: float
    max_degree: int
    mean_degree: float
    n_components: int
    largest_component: int
    n_triangles: int
    avg_clustering: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "density": self.density,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "n_components": self.n_components,
            "largest_component": self.largest_component,
            "n_triangles": self.n_triangles,
            "avg_clustering": self.avg_clustering,
        }


def summarize_graph(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    comps = component_size_distribution(graph)
    stats = degree_statistics(graph)
    return GraphSummary(
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        density=graph.density(),
        max_degree=graph.max_degree(),
        mean_degree=stats["mean"],
        n_components=len(comps),
        largest_component=comps[0] if comps else 0,
        n_triangles=count_triangles(graph),
        avg_clustering=average_clustering(graph),
    )


def compare_summaries(original: GraphSummary, sampled: GraphSummary) -> dict[str, float]:
    """Return relative-retention ratios (sampled / original) for each summary field.

    Fields whose original value is zero report 1.0 when the sampled value is
    also zero and ``inf`` otherwise, which keeps the comparison total.
    """
    out: dict[str, float] = {}
    orig = original.as_dict()
    samp = sampled.as_dict()
    for key, o in orig.items():
        s = samp[key]
        if o == 0:
            out[key] = 1.0 if s == 0 else float("inf")
        else:
            out[key] = s / o
    return out
