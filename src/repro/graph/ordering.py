"""Vertex orderings studied by the paper.

The size and composition of a *maximal* chordal subgraph depends on the order
in which the extraction algorithm visits vertices.  Section III.A of the paper
evaluates four orderings:

``natural``
    the order vertices appear in the input network (gene nomenclature order),
``high_degree``
    descending degree — hubs are processed first,
``low_degree``
    ascending degree — leaves are processed first,
``rcm``
    Reverse Cuthill–McKee, which numbers closely connected vertices
    consecutively to reduce the bandwidth of the adjacency matrix.

Since the index-native pipeline rewrite the orderings are *computed on the
CSR kernel*: each has a ``*_order_indices`` function that takes a
:class:`~repro.graph.csr.CSRGraph` and returns an ``int64`` permutation of
``0 .. n-1`` (vectorised ``np.argsort``/``np.lexsort`` for the degree
orders, an array-queue Cuthill–McKee for RCM).  The label-level functions
(``high_degree_order`` …) are thin boundary wrappers — convert, permute,
map back — and the original label-and-dict implementations are retained as
``reference_*`` so the property suite can pin the index kernels to the seed
semantics, including their ``repr``/``str`` tie-breaking.

Every function returns all vertices of the graph exactly once; callers apply
the ordering either by permuting the graph (:func:`permute_graph`) or by
feeding the order directly to the samplers.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from typing import Callable, Optional

import numpy as np

from .csr import CSRGraph
from .graph import Graph
from .traversal import pseudo_peripheral_vertex

__all__ = [
    "natural_order",
    "high_degree_order",
    "low_degree_order",
    "rcm_order",
    "reverse_order",
    "random_order",
    "ORDERINGS",
    "get_ordering",
    "ordering_names",
    "permute_graph",
    "is_permutation_of_vertices",
    "natural_order_indices",
    "high_degree_order_indices",
    "low_degree_order_indices",
    "rcm_order_indices",
    "ordering_indices",
    "label_sort_ranks",
    "reference_high_degree_order",
    "reference_low_degree_order",
    "reference_rcm_order",
]

Vertex = Hashable
OrderingFn = Callable[[Graph], list[Vertex]]


def _stable_key(v: Vertex) -> str:
    """Deterministic tie-break key for vertices of arbitrary type."""
    return repr(v)


def label_sort_ranks(csr: CSRGraph, key: Callable[[Vertex], str] = repr) -> np.ndarray:
    """Rank of every vertex when the labels are sorted by ``key`` (default ``repr``).

    The seed orderings break degree ties by ``repr`` (and the RCM
    pseudo-peripheral step by ``str``); the index kernels reproduce those
    label-dependent tie-breaks by consuming this precomputed rank array —
    one ``key`` call per vertex at the boundary instead of one per
    comparison inside the loops.
    """
    n = csr.n_vertices
    labels = csr.labels
    order = sorted(range(n), key=lambda i: key(labels[i]))
    ranks = np.empty(n, dtype=np.int64)
    ranks[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return ranks


# ----------------------------------------------------------------------
# index-native orderings (CSR in, int64 permutation out)
# ----------------------------------------------------------------------
def natural_order_indices(csr: CSRGraph) -> np.ndarray:
    """Vertices in their insertion ("nomenclature") order: ``0 .. n-1``."""
    return np.arange(csr.n_vertices, dtype=np.int64)


def high_degree_order_indices(csr: CSRGraph, tie: Optional[np.ndarray] = None) -> np.ndarray:
    """Indices sorted by descending degree (ties broken by label ``repr``)."""
    if tie is None:
        tie = label_sort_ranks(csr)
    return np.lexsort((tie, -csr.degrees())).astype(np.int64)


def low_degree_order_indices(csr: CSRGraph, tie: Optional[np.ndarray] = None) -> np.ndarray:
    """Indices sorted by ascending degree (ties broken by label ``repr``)."""
    if tie is None:
        tie = label_sort_ranks(csr)
    return np.lexsort((tie, csr.degrees())).astype(np.int64)


def _gather_rows(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenated neighbour rows of ``rows`` as one array (vectorised gather)."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    base = np.zeros(rows.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=base[1:])
    take = np.repeat(starts - base, counts) + np.arange(total, dtype=np.int64)
    return indices[take]


def _bfs_level_structure(
    indptr: np.ndarray, indices: np.ndarray, n: int, source: int
) -> list[np.ndarray]:
    """BFS levels from ``source`` as index arrays (level *content* only).

    Within a level the vertices are in sorted index order — level membership
    is what the pseudo-peripheral heuristic consumes, and distance sets are
    iteration-order independent.
    """
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    while True:
        nbrs = _gather_rows(indptr, indices, frontier)
        nxt = np.unique(nbrs[~visited[nbrs]]) if nbrs.size else nbrs
        if not nxt.size:
            return levels
        visited[nxt] = True
        levels.append(nxt)
        frontier = nxt


def _pseudo_peripheral_index(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    start: int,
    deg: np.ndarray,
    str_ranks: np.ndarray,
) -> int:
    """George–Liu pseudo-peripheral vertex on indices.

    Mirrors :func:`repro.graph.traversal.pseudo_peripheral_vertex` exactly:
    the minimum-degree vertex of the last BFS level (ties by label ``str``,
    via ``str_ranks``) until the eccentricity stops growing.
    """
    levels = _bfs_level_structure(indptr, indices, n, start)
    ecc = len(levels) - 1
    while True:
        last = levels[-1]
        candidate = int(last[np.lexsort((str_ranks[last], deg[last]))[0]])
        new_levels = _bfs_level_structure(indptr, indices, n, candidate)
        new_ecc = len(new_levels) - 1
        if new_ecc <= ecc:
            return candidate
        levels, ecc = new_levels, new_ecc


def rcm_order_indices(csr: CSRGraph, start: Optional[int] = None) -> np.ndarray:
    """Reverse Cuthill–McKee on the CSR kernel; returns an ``int64`` permutation.

    Each connected component is numbered from a pseudo-peripheral vertex with
    the classic Cuthill–McKee array-queue BFS (unvisited neighbours appended
    in ascending ``(degree, repr-rank)`` order) and the concatenated numbering
    is reversed.  Isolated vertices keep their relative natural order in the
    CM numbering, exactly as the seed implementation
    (:func:`reference_rcm_order`) treats them.  ``start``, when given, is the
    *index* of a preferred starting vertex: it short-circuits the
    pseudo-peripheral search for its component iff it is that component's
    first natural vertex (seed semantics).
    """
    n = csr.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    indptr, indices = csr.indptr, csr.indices
    deg = csr.degrees()
    repr_ranks = label_sort_ranks(csr, repr)
    str_ranks = label_sort_ranks(csr, str)
    visited = np.zeros(n, dtype=bool)
    cm = np.empty(n, dtype=np.int64)
    queue = np.empty(n, dtype=np.int64)
    out = 0
    for v in range(n):
        if visited[v]:
            continue
        if deg[v] == 0:
            visited[v] = True
            cm[out] = v
            out += 1
            continue
        if start is not None and not visited[start] and start == v:
            comp_start = v
        else:
            comp_start = _pseudo_peripheral_index(indptr, indices, n, v, deg, str_ranks)
        # Cuthill–McKee numbering of the component, array queue, no deque.
        visited[comp_start] = True
        cm[out] = comp_start
        out += 1
        queue[0] = comp_start
        head, tail = 0, 1
        while head < tail:
            u = queue[head]
            head += 1
            row = indices[indptr[u] : indptr[u + 1]]
            fresh = row[~visited[row]]
            if fresh.size:
                fresh = fresh[np.lexsort((repr_ranks[fresh], deg[fresh]))]
                visited[fresh] = True
                cm[out : out + fresh.size] = fresh
                out += fresh.size
                queue[tail : tail + fresh.size] = fresh
                tail += fresh.size
    return cm[::-1].copy()


#: Index-native counterparts of :data:`ORDERINGS` (CSR in, permutation out).
ORDERING_INDEX_FNS: dict[str, Callable[[CSRGraph], np.ndarray]] = {
    "natural": natural_order_indices,
    "high_degree": high_degree_order_indices,
    "low_degree": low_degree_order_indices,
    "rcm": rcm_order_indices,
}


def ordering_indices(name: str, csr: CSRGraph) -> np.ndarray:
    """Compute the named ordering directly on a CSR view (no label round-trip)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        fn = ORDERING_INDEX_FNS[key]
    except KeyError:
        raise KeyError(
            f"unknown ordering {name!r}; valid names: {sorted(ORDERING_INDEX_FNS)} "
            f"and aliases {sorted(_ALIASES)}"
        ) from None
    return fn(csr)


# ----------------------------------------------------------------------
# label-level API (thin boundary wrappers over the index kernels)
# ----------------------------------------------------------------------
def natural_order(graph: Graph) -> list[Vertex]:
    """Return vertices in their insertion ("nomenclature") order."""
    return graph.vertices()


def high_degree_order(graph: Graph) -> list[Vertex]:
    """Return vertices sorted by descending degree (ties broken by label)."""
    csr = CSRGraph.from_graph(graph)
    return csr.to_labels(high_degree_order_indices(csr))


def low_degree_order(graph: Graph) -> list[Vertex]:
    """Return vertices sorted by ascending degree (ties broken by label)."""
    csr = CSRGraph.from_graph(graph)
    return csr.to_labels(low_degree_order_indices(csr))


def rcm_order(graph: Graph, start: Optional[Vertex] = None) -> list[Vertex]:
    """Return the Reverse Cuthill–McKee ordering of the graph.

    Each connected component is numbered from a pseudo-peripheral vertex using
    the classic Cuthill–McKee breadth-first scheme (neighbours visited in
    ascending degree), and the concatenated numbering is reversed.  Isolated
    vertices keep their relative natural order at the end of the CM numbering
    (hence the front of the reversed ordering mirrors the original algorithm's
    treatment of singletons).  Computed by :func:`rcm_order_indices` on the
    CSR kernel.
    """
    csr = CSRGraph.from_graph(graph)
    start_idx = None if start is None else csr.label_index.get(start)
    return csr.to_labels(rcm_order_indices(csr, start=start_idx))


def reverse_order(graph: Graph) -> list[Vertex]:
    """Return the natural order reversed (useful as an extra perturbation)."""
    return list(reversed(graph.vertices()))


def random_order(graph: Graph, seed: int = 0) -> list[Vertex]:
    """Return a seeded uniformly random permutation of the vertices."""
    rng = np.random.default_rng(seed)
    verts = graph.vertices()
    perm = rng.permutation(len(verts))
    return [verts[i] for i in perm]


# ----------------------------------------------------------------------
# seed label-level implementations (behavioural references for the kernels)
# ----------------------------------------------------------------------
def reference_high_degree_order(graph: Graph) -> list[Vertex]:
    """The seed label-level high-degree ordering (reference for the kernel)."""
    return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), _stable_key(v)))


def reference_low_degree_order(graph: Graph) -> list[Vertex]:
    """The seed label-level low-degree ordering (reference for the kernel)."""
    return sorted(graph.vertices(), key=lambda v: (graph.degree(v), _stable_key(v)))


def _cuthill_mckee_component(graph: Graph, start: Vertex) -> list[Vertex]:
    """Cuthill–McKee numbering of the component containing ``start``."""
    order = [start]
    visited = {start}
    queue: deque[Vertex] = deque([start])
    while queue:
        u = queue.popleft()
        nbrs = [v for v in graph.neighbors(u) if v not in visited]
        nbrs.sort(key=lambda v: (graph.degree(v), _stable_key(v)))
        for v in nbrs:
            visited.add(v)
            order.append(v)
            queue.append(v)
    return order


def _component(graph: Graph, v: Vertex) -> list[Vertex]:
    """Vertices of the connected component containing ``v`` (deterministic)."""
    visited = {v}
    order = [v]
    queue: deque[Vertex] = deque([v])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in visited:
                visited.add(w)
                order.append(w)
                queue.append(w)
    return order


def reference_rcm_order(graph: Graph, start: Optional[Vertex] = None) -> list[Vertex]:
    """The seed label-level RCM implementation (reference for the kernel)."""
    remaining = set(graph.vertices())
    cm: list[Vertex] = []
    # Process components in natural order of their first vertex for determinism.
    for v in graph.vertices():
        if v not in remaining:
            continue
        if graph.degree(v) == 0:
            cm.append(v)
            remaining.discard(v)
            continue
        component_start: Vertex
        if start is not None and start in remaining and start == v:
            component_start = start
        else:
            component_start = pseudo_peripheral_vertex(graph.subgraph(_component(graph, v)), v)
        comp_order = _cuthill_mckee_component(graph, component_start)
        cm.extend(comp_order)
        remaining.difference_update(comp_order)
    cm.reverse()
    return cm


#: Registry of the orderings evaluated in the paper, keyed by the short names
#: used in its figures (NO, HD, LD, RCM).
ORDERINGS: dict[str, OrderingFn] = {
    "natural": natural_order,
    "high_degree": high_degree_order,
    "low_degree": low_degree_order,
    "rcm": rcm_order,
}

#: Abbreviations used in the paper's figures mapped onto registry names.
_ALIASES = {
    "no": "natural",
    "hd": "high_degree",
    "ld": "low_degree",
    "rcm": "rcm",
    "natural_order": "natural",
    "high": "high_degree",
    "low": "low_degree",
}


def ordering_names() -> list[str]:
    """Return the canonical ordering names in the paper's presentation order."""
    return list(ORDERINGS)


def get_ordering(name: str) -> OrderingFn:
    """Look up an ordering function by name or paper abbreviation (case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return ORDERINGS[key]
    except KeyError:
        raise KeyError(
            f"unknown ordering {name!r}; valid names: {sorted(ORDERINGS)} "
            f"and aliases {sorted(_ALIASES)}"
        ) from None


def is_permutation_of_vertices(graph: Graph, order: Sequence[Vertex]) -> bool:
    """Return ``True`` when ``order`` contains every graph vertex exactly once."""
    return len(order) == graph.n_vertices and set(order) == set(graph.vertices())


def permute_graph(graph: Graph, order: Sequence[Vertex]) -> Graph:
    """Return a copy of ``graph`` whose insertion order follows ``order``.

    The returned graph has identical vertex labels, edges and edge attributes,
    only the internal iteration order differs — which is exactly the
    perturbation the paper's ordering study applies before running the
    samplers under their default (natural) traversal.
    """
    if not is_permutation_of_vertices(graph, order):
        raise ValueError("order must be a permutation of the graph's vertex set")
    g = Graph()
    for v in order:
        g.add_vertex(v)
    for u, v in graph.iter_edges():
        g.add_edge(u, v, **graph.edge_attrs(u, v))
    return g
