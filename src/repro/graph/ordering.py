"""Vertex orderings studied by the paper.

The size and composition of a *maximal* chordal subgraph depends on the order
in which the extraction algorithm visits vertices.  Section III.A of the paper
evaluates four orderings:

``natural``
    the order vertices appear in the input network (gene nomenclature order),
``high_degree``
    descending degree — hubs are processed first,
``low_degree``
    ascending degree — leaves are processed first,
``rcm``
    Reverse Cuthill–McKee, which numbers closely connected vertices
    consecutively to reduce the bandwidth of the adjacency matrix.

Every function returns a list containing *all* vertices of the graph exactly
once; callers apply the ordering either by permuting the graph
(:func:`permute_graph`) or by feeding the order directly to the samplers.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from typing import Callable, Optional

from .graph import Graph
from .traversal import pseudo_peripheral_vertex

__all__ = [
    "natural_order",
    "high_degree_order",
    "low_degree_order",
    "rcm_order",
    "reverse_order",
    "random_order",
    "ORDERINGS",
    "get_ordering",
    "ordering_names",
    "permute_graph",
    "is_permutation_of_vertices",
]

Vertex = Hashable
OrderingFn = Callable[[Graph], list[Vertex]]


def natural_order(graph: Graph) -> list[Vertex]:
    """Return vertices in their insertion ("nomenclature") order."""
    return graph.vertices()


def _stable_key(v: Vertex) -> str:
    """Deterministic tie-break key for vertices of arbitrary type."""
    return repr(v)


def high_degree_order(graph: Graph) -> list[Vertex]:
    """Return vertices sorted by descending degree (ties broken by label)."""
    return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), _stable_key(v)))


def low_degree_order(graph: Graph) -> list[Vertex]:
    """Return vertices sorted by ascending degree (ties broken by label)."""
    return sorted(graph.vertices(), key=lambda v: (graph.degree(v), _stable_key(v)))


def _cuthill_mckee_component(graph: Graph, start: Vertex) -> list[Vertex]:
    """Cuthill–McKee numbering of the component containing ``start``."""
    order = [start]
    visited = {start}
    queue: deque[Vertex] = deque([start])
    while queue:
        u = queue.popleft()
        nbrs = [v for v in graph.neighbors(u) if v not in visited]
        nbrs.sort(key=lambda v: (graph.degree(v), _stable_key(v)))
        for v in nbrs:
            visited.add(v)
            order.append(v)
            queue.append(v)
    return order


def rcm_order(graph: Graph, start: Optional[Vertex] = None) -> list[Vertex]:
    """Return the Reverse Cuthill–McKee ordering of the graph.

    Each connected component is numbered from a pseudo-peripheral vertex using
    the classic Cuthill–McKee breadth-first scheme (neighbours visited in
    ascending degree), and the concatenated numbering is reversed.  Isolated
    vertices keep their relative natural order at the end of the CM numbering
    (hence the front of the reversed ordering mirrors the original algorithm's
    treatment of singletons).
    """
    remaining = set(graph.vertices())
    cm: list[Vertex] = []
    # Process components in natural order of their first vertex for determinism.
    for v in graph.vertices():
        if v not in remaining:
            continue
        if graph.degree(v) == 0:
            cm.append(v)
            remaining.discard(v)
            continue
        component_start: Vertex
        if start is not None and start in remaining and start == v:
            component_start = start
        else:
            component_start = pseudo_peripheral_vertex(graph.subgraph(_component(graph, v)), v)
        comp_order = _cuthill_mckee_component(graph, component_start)
        cm.extend(comp_order)
        remaining.difference_update(comp_order)
    cm.reverse()
    return cm


def _component(graph: Graph, v: Vertex) -> list[Vertex]:
    """Vertices of the connected component containing ``v`` (deterministic)."""
    visited = {v}
    order = [v]
    queue: deque[Vertex] = deque([v])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in visited:
                visited.add(w)
                order.append(w)
                queue.append(w)
    return order


def reverse_order(graph: Graph) -> list[Vertex]:
    """Return the natural order reversed (useful as an extra perturbation)."""
    return list(reversed(graph.vertices()))


def random_order(graph: Graph, seed: int = 0) -> list[Vertex]:
    """Return a seeded uniformly random permutation of the vertices."""
    import numpy as np

    rng = np.random.default_rng(seed)
    verts = graph.vertices()
    perm = rng.permutation(len(verts))
    return [verts[i] for i in perm]


#: Registry of the orderings evaluated in the paper, keyed by the short names
#: used in its figures (NO, HD, LD, RCM).
ORDERINGS: dict[str, OrderingFn] = {
    "natural": natural_order,
    "high_degree": high_degree_order,
    "low_degree": low_degree_order,
    "rcm": rcm_order,
}

#: Abbreviations used in the paper's figures mapped onto registry names.
_ALIASES = {
    "no": "natural",
    "hd": "high_degree",
    "ld": "low_degree",
    "rcm": "rcm",
    "natural_order": "natural",
    "high": "high_degree",
    "low": "low_degree",
}


def ordering_names() -> list[str]:
    """Return the canonical ordering names in the paper's presentation order."""
    return list(ORDERINGS)


def get_ordering(name: str) -> OrderingFn:
    """Look up an ordering function by name or paper abbreviation (case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return ORDERINGS[key]
    except KeyError:
        raise KeyError(
            f"unknown ordering {name!r}; valid names: {sorted(ORDERINGS)} "
            f"and aliases {sorted(_ALIASES)}"
        ) from None


def is_permutation_of_vertices(graph: Graph, order: Sequence[Vertex]) -> bool:
    """Return ``True`` when ``order`` contains every graph vertex exactly once."""
    return len(order) == graph.n_vertices and set(order) == set(graph.vertices())


def permute_graph(graph: Graph, order: Sequence[Vertex]) -> Graph:
    """Return a copy of ``graph`` whose insertion order follows ``order``.

    The returned graph has identical vertex labels, edges and edge attributes,
    only the internal iteration order differs — which is exactly the
    perturbation the paper's ordering study applies before running the
    samplers under their default (natural) traversal.
    """
    if not is_permutation_of_vertices(graph, order):
        raise ValueError("order must be a permutation of the graph's vertex set")
    g = Graph()
    for v in order:
        g.add_vertex(v)
    for u, v in graph.iter_edges():
        g.add_edge(u, v, **graph.edge_attrs(u, v))
    return g
