"""Graph substrate: data structure, generators, orderings, partitioning, metrics.

This package provides everything the sampling algorithms need that is *not*
specific to chordal graphs: the :class:`Graph` container, traversal and cycle
utilities, the four vertex orderings studied by the paper, graph partitioners
for the parallel algorithms, synthetic generators and structural metrics.
"""

from .centrality import (
    betweenness_centrality,
    centrality_spearman,
    closeness_centrality,
    degree_centrality,
    hub_retention,
    top_k_vertices,
)
from .cycles import (
    average_clustering,
    break_cycles,
    count_triangles,
    cycle_basis_sizes,
    edge_in_triangle,
    find_chordless_cycle,
    has_cycle,
    local_clustering,
    triangles_of_edge,
)
from .generators import (
    barabasi_albert_graph,
    complete_graph,
    correlation_like_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    random_tree,
    star_graph,
)
from .csr import CSRGraph
from .graph import Graph, edge_key
from .io import (
    edge_list_string,
    graph_from_string,
    read_adjacency,
    read_edge_list,
    write_adjacency,
    write_edge_list,
)
from .metrics import (
    GraphSummary,
    compare_summaries,
    component_size_distribution,
    degree_histogram,
    degree_statistics,
    edge_retention,
    summarize_graph,
    vertex_coverage,
)
from .ordering import (
    ORDERINGS,
    get_ordering,
    high_degree_order,
    low_degree_order,
    natural_order,
    ordering_names,
    permute_graph,
    random_order,
    rcm_order,
    reverse_order,
)
from .partition import (
    PARTITIONERS,
    Partition,
    bfs_partition,
    block_partition,
    get_partitioner,
    greedy_edge_cut_partition,
    hash_partition,
    partition_graph,
)
from .traversal import (
    bfs_levels,
    bfs_order,
    bfs_tree_edges,
    connected_components,
    dfs_order,
    is_connected,
    pseudo_peripheral_vertex,
    shortest_path,
    shortest_path_lengths,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "edge_key",
    # centrality
    "degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "top_k_vertices",
    "hub_retention",
    "centrality_spearman",
    # traversal
    "bfs_order",
    "bfs_levels",
    "bfs_tree_edges",
    "dfs_order",
    "connected_components",
    "is_connected",
    "shortest_path",
    "shortest_path_lengths",
    "pseudo_peripheral_vertex",
    # cycles
    "count_triangles",
    "triangles_of_edge",
    "edge_in_triangle",
    "local_clustering",
    "average_clustering",
    "has_cycle",
    "cycle_basis_sizes",
    "find_chordless_cycle",
    "break_cycles",
    # orderings
    "ORDERINGS",
    "get_ordering",
    "ordering_names",
    "natural_order",
    "high_degree_order",
    "low_degree_order",
    "rcm_order",
    "reverse_order",
    "random_order",
    "permute_graph",
    # partitioning
    "Partition",
    "PARTITIONERS",
    "partition_graph",
    "get_partitioner",
    "block_partition",
    "hash_partition",
    "bfs_partition",
    "greedy_edge_cut_partition",
    # generators
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "random_tree",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "planted_partition_graph",
    "correlation_like_graph",
    # metrics
    "GraphSummary",
    "summarize_graph",
    "compare_summaries",
    "degree_histogram",
    "degree_statistics",
    "component_size_distribution",
    "edge_retention",
    "vertex_coverage",
    # io
    "write_edge_list",
    "read_edge_list",
    "write_adjacency",
    "read_adjacency",
    "edge_list_string",
    "graph_from_string",
]
