"""Graph traversal primitives: BFS, DFS, connected components, distances.

These are the building blocks for the level-structure partitioner, the
Reverse Cuthill–McKee ordering and the cycle analysis used on quasi-chordal
subgraphs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable
from typing import Optional

from .graph import Graph

__all__ = [
    "bfs_order",
    "bfs_levels",
    "bfs_tree_edges",
    "dfs_order",
    "connected_components",
    "component_of",
    "is_connected",
    "shortest_path_lengths",
    "shortest_path",
    "eccentricity",
    "pseudo_peripheral_vertex",
]

Vertex = Hashable


def bfs_order(graph: Graph, source: Vertex) -> list[Vertex]:
    """Return vertices reachable from ``source`` in breadth-first order.

    Neighbours are visited in the graph's insertion order, making the
    traversal deterministic.
    """
    if source not in graph:
        raise KeyError(f"source vertex {source!r} not in graph")
    visited = {source}
    order = [source]
    queue: deque[Vertex] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in visited:
                visited.add(v)
                order.append(v)
                queue.append(v)
    return order


def bfs_levels(graph: Graph, source: Vertex) -> list[list[Vertex]]:
    """Return the BFS level structure rooted at ``source``.

    ``result[k]`` contains every vertex at distance exactly ``k`` from the
    source, in deterministic order.
    """
    if source not in graph:
        raise KeyError(f"source vertex {source!r} not in graph")
    visited = {source}
    levels = [[source]]
    frontier = [source]
    while frontier:
        nxt: list[Vertex] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in visited:
                    visited.add(v)
                    nxt.append(v)
        if nxt:
            levels.append(nxt)
        frontier = nxt
    return levels


def bfs_tree_edges(graph: Graph, source: Vertex) -> list[tuple[Vertex, Vertex]]:
    """Return the (parent, child) edges of a deterministic BFS tree from ``source``."""
    if source not in graph:
        raise KeyError(f"source vertex {source!r} not in graph")
    visited = {source}
    edges: list[tuple[Vertex, Vertex]] = []
    queue: deque[Vertex] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in visited:
                visited.add(v)
                edges.append((u, v))
                queue.append(v)
    return edges


def dfs_order(graph: Graph, source: Vertex) -> list[Vertex]:
    """Return vertices reachable from ``source`` in (iterative) depth-first order."""
    if source not in graph:
        raise KeyError(f"source vertex {source!r} not in graph")
    visited: set[Vertex] = set()
    order: list[Vertex] = []
    stack = [source]
    while stack:
        u = stack.pop()
        if u in visited:
            continue
        visited.add(u)
        order.append(u)
        # reversed() keeps left-to-right neighbour exploration order.
        for v in reversed(graph.neighbors(u)):
            if v not in visited:
                stack.append(v)
    return order


def connected_components(graph: Graph) -> list[list[Vertex]]:
    """Return the connected components as lists of vertices (deterministic order)."""
    seen: set[Vertex] = set()
    components: list[list[Vertex]] = []
    for v in graph.vertices():
        if v in seen:
            continue
        comp = bfs_order(graph, v)
        seen.update(comp)
        components.append(comp)
    return components


def component_of(graph: Graph, v: Vertex) -> set[Vertex]:
    """Return the vertex set of the component containing ``v``."""
    return set(bfs_order(graph, v))


def is_connected(graph: Graph) -> bool:
    """Return ``True`` when the graph has at most one connected component."""
    if graph.n_vertices == 0:
        return True
    first = graph.vertices()[0]
    return len(bfs_order(graph, first)) == graph.n_vertices


def shortest_path_lengths(graph: Graph, source: Vertex) -> dict[Vertex, int]:
    """Return unweighted shortest-path lengths from ``source`` to every reachable vertex."""
    dist = {source: 0}
    queue: deque[Vertex] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def shortest_path(graph: Graph, source: Vertex, target: Vertex) -> Optional[list[Vertex]]:
    """Return one unweighted shortest path from ``source`` to ``target``.

    Returns ``None`` when the two vertices are disconnected.
    """
    if source not in graph or target not in graph:
        raise KeyError("both endpoints must be in the graph")
    if source == target:
        return [source]
    parent: dict[Vertex, Vertex] = {source: source}
    queue: deque[Vertex] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in parent:
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(v)
    return None


def eccentricity(graph: Graph, v: Vertex) -> int:
    """Return the eccentricity of ``v`` within its connected component."""
    dist = shortest_path_lengths(graph, v)
    return max(dist.values())


def pseudo_peripheral_vertex(graph: Graph, start: Optional[Vertex] = None) -> Vertex:
    """Find a pseudo-peripheral vertex using the George–Liu heuristic.

    Used as the RCM starting vertex: repeatedly move to a minimum-degree
    vertex in the last BFS level until the eccentricity stops growing.
    """
    if graph.n_vertices == 0:
        raise ValueError("graph is empty")
    v = start if start is not None else graph.vertices()[0]
    if v not in graph:
        raise KeyError(f"start vertex {v!r} not in graph")
    levels = bfs_levels(graph, v)
    ecc = len(levels) - 1
    while True:
        last = levels[-1]
        candidate = min(last, key=lambda u: (graph.degree(u), str(u)))
        new_levels = bfs_levels(graph, candidate)
        new_ecc = len(new_levels) - 1
        if new_ecc <= ecc:
            return candidate
        v, levels, ecc = candidate, new_levels, new_ecc


def induced_neighborhood(graph: Graph, vertices: Iterable[Vertex]) -> Graph:
    """Return the subgraph induced by ``vertices`` plus all of their neighbours.

    This is the "neighbourhood expansion" used when repairing cycles created
    by border edges: deleting a border edge may expose cycles that involve the
    immediate neighbourhood of its endpoints.
    """
    base = list(vertices)
    expanded: list[Vertex] = []
    seen: set[Vertex] = set()
    for v in base:
        if v not in seen and v in graph:
            seen.add(v)
            expanded.append(v)
    for v in base:
        if v not in graph:
            continue
        for nbr in graph.neighbors(v):
            if nbr not in seen:
                seen.add(nbr)
                expanded.append(nbr)
    return graph.subgraph(expanded)
