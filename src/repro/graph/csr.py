"""Compressed sparse row (CSR) graph kernel.

:class:`~repro.graph.graph.Graph` stores adjacency as insertion-ordered
dict-of-dicts keyed by arbitrary hashable labels.  That is the right shape for
building networks (gene identifiers in, deterministic iteration out), but it
is the wrong shape for the chordality hot loops: every neighbour access hashes
a label, every neighbour list is a fresh allocation, and every edge test walks
a dictionary.  On the multi-thousand-vertex correlation networks of the
scalability study those constants dominate the measured time.

:class:`CSRGraph` is the compact counterpart the kernels run on instead:

* vertices are renumbered ``0 .. n-1`` in ``Graph`` insertion order, with the
  original labels retained so results can be mapped back at the boundary;
* adjacency is the classic CSR pair ``(indptr, indices)`` of numpy ``int64``
  arrays — the neighbours of vertex ``i`` are ``indices[indptr[i]:indptr[i+1]]``
  in the same order the :class:`Graph` would iterate them;
* degrees are one vectorised ``diff``, edge membership is a binary search over
  a packed sorted edge array, and bulk membership (:meth:`has_edges`) is fully
  vectorised.

A ``CSRGraph`` is *frozen*: all mutation happens on :class:`Graph`, and code
converts at the boundary with :meth:`from_graph` / :meth:`to_graph`.  Edge
attributes are intentionally not carried over — the samplers re-attach them by
building their result with ``Graph.spanning_subgraph`` on the original graph.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Optional

import numpy as np

from .graph import Graph

__all__ = ["CSRGraph"]

Vertex = Hashable


class CSRGraph:
    """A frozen, int-indexed CSR view of a simple undirected graph.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; row ``i`` spans
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64`` array of neighbour indices (each undirected edge appears in
        both endpoint rows).
    labels:
        The original vertex labels, ``labels[i]`` naming vertex ``i``.
    """

    __slots__ = (
        "indptr",
        "indices",
        "labels",
        "_label_index",
        "_packed",
        "_rows",
        "_row_sets",
        "_edge_arr",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Sequence[Vertex],
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        labels = tuple(labels)
        n = len(labels)
        if indptr.ndim != 1 or indptr.shape[0] != n + 1:
            raise ValueError(f"indptr must have length n+1 = {n + 1}, got {indptr.shape}")
        if indptr[0] != 0 or (np.diff(indptr) < 0).any():
            raise ValueError("indptr must start at 0 and be non-decreasing")
        if indices.ndim != 1 or indices.shape[0] != int(indptr[-1]):
            raise ValueError("indices length must equal indptr[-1]")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices contain out-of-range vertex ids")
        indptr.setflags(write=False)
        indices.setflags(write=False)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "_label_index", None)
        object.__setattr__(self, "_packed", None)
        object.__setattr__(self, "_rows", None)
        object.__setattr__(self, "_row_sets", None)
        object.__setattr__(self, "_edge_arr", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CSRGraph is frozen; build a new one instead of mutating")

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Build the CSR view of ``graph``.

        Vertex ``i`` is the ``i``-th vertex of ``graph.vertices()`` and row
        ``i`` lists its neighbours in the graph's (insertion) iteration order,
        so every deterministic traversal of the :class:`Graph` has an exact
        int-indexed counterpart here.
        """
        adj = graph._adj  # package-internal fast path; Graph owns the invariants
        labels = tuple(adj)
        index = {v: i for i, v in enumerate(labels)}
        n = len(labels)
        indptr = np.zeros(n + 1, dtype=np.int64)
        flat: list[int] = []
        extend = flat.extend
        lookup = index.__getitem__
        rows: list[list[int]] = []
        for i, v in enumerate(labels):
            row = list(map(lookup, adj[v]))
            rows.append(row)
            indptr[i + 1] = indptr[i] + len(row)
            extend(row)
        csr = cls(indptr, np.asarray(flat, dtype=np.int64), labels)
        object.__setattr__(csr, "_label_index", index)
        object.__setattr__(csr, "_rows", rows)
        return csr

    @classmethod
    def from_edge_arrays(
        cls,
        labels: Sequence[Vertex],
        us: np.ndarray,
        vs: np.ndarray,
    ) -> "CSRGraph":
        """Build a CSR graph straight from aligned undirected edge arrays.

        ``us[k]`` and ``vs[k]`` are the endpoint *indices* of edge ``k`` into
        ``labels``; each undirected edge must appear exactly once (either
        orientation) with no self loops or duplicates.  Rows of the result are
        sorted ascending — for an edge list that is globally sorted by
        ``(min, max)`` endpoint this is exactly the CSR that
        :meth:`from_graph` would produce for a :class:`Graph` built by adding
        those edges in order, because each vertex then meets its neighbours in
        ascending-index order.  Construction is fully vectorised (one
        ``argsort`` over the symmetrised arrays), no per-edge Python loop.
        """
        labels = tuple(labels)
        n = len(labels)
        us = np.ascontiguousarray(us, dtype=np.int64)
        vs = np.ascontiguousarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise ValueError("us and vs must be equal-length 1-D arrays")
        if us.size:
            lo, hi = min(us.min(), vs.min()), max(us.max(), vs.max())
            if lo < 0 or hi >= n:
                raise ValueError("edge endpoints contain out-of-range vertex ids")
            if (us == vs).any():
                raise ValueError("self loops are not allowed")
        src = np.concatenate([us, vs])
        dst = np.concatenate([vs, us])
        # Stable sort by (row, column): gives sorted rows and deterministic
        # layout; n_vertices+1 bins keeps searchsorted-free row offsets.
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if src.size and (
            (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
        ).any():
            raise ValueError("duplicate edges in input arrays")
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(indptr, dst, labels)

    @classmethod
    def from_edge_stream(
        cls,
        labels: "Sequence[Vertex] | int",
        chunks: object,
        *,
        out: Optional[str] = None,
    ) -> "CSRGraph":
        """Build a CSR graph from a *stream* of edge chunks with bounded memory.

        The out-of-core counterpart of :meth:`from_edge_arrays` for graphs
        whose edge list should never be materialised at once: ``chunks``
        yields ``(us, vs)`` pairs of aligned ``int64`` endpoint-index arrays,
        and the build makes **two passes** (degree counting, then scatter),
        so its peak working set beyond the output buffers is ``O(n_vertices
        + chunk)`` — far below the ``O(n_edges)`` temporaries (symmetrised
        copies plus a lexsort permutation) of the in-RAM path.  The result
        is identical to ``from_edge_arrays(labels, concat(us), concat(vs))``:
        rows sorted ascending, duplicates and self loops rejected.

        ``chunks`` is either a zero-argument callable returning a fresh
        iterator per pass (the streaming form — required when chunks are
        generated on the fly) or a re-iterable collection of pairs.  A
        one-shot generator is detected (the two passes see different edge
        counts) and rejected.  ``labels`` may be an ``int`` *n* as shorthand
        for the identity labelling ``range(n)``.

        ``out`` names a file to back the ``indices`` buffer with a writable
        ``np.memmap`` instead of process memory — the escape hatch for
        graphs whose adjacency alone exceeds RAM; the mapped buffer feeds
        straight into the zero-copy :meth:`from_buffers` path.
        """
        label_tuple = tuple(range(labels)) if isinstance(labels, int) else tuple(labels)
        n = len(label_tuple)
        factory = chunks if callable(chunks) else (lambda: chunks)

        def _coerce(us: np.ndarray, vs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            us = np.ascontiguousarray(us, dtype=np.int64)
            vs = np.ascontiguousarray(vs, dtype=np.int64)
            if us.shape != vs.shape or us.ndim != 1:
                raise ValueError("each chunk must be a pair of equal-length 1-D arrays")
            return us, vs

        # Pass 1: per-vertex degrees (and full validation of endpoints).
        deg = np.zeros(n, dtype=np.int64)
        n_edges = 0
        for us, vs in factory():
            us, vs = _coerce(us, vs)
            if us.size == 0:
                continue
            lo, hi = min(us.min(), vs.min()), max(us.max(), vs.max())
            if lo < 0 or hi >= n:
                raise ValueError("edge endpoints contain out-of-range vertex ids")
            if (us == vs).any():
                raise ValueError("self loops are not allowed")
            n_edges += us.size
            deg += np.bincount(us, minlength=n)
            deg += np.bincount(vs, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        del deg
        total = int(indptr[-1])
        if out is not None and total:
            indices = np.memmap(out, dtype=np.int64, mode="w+", shape=(total,))
        else:
            # mmap rejects zero-length files: an empty stream with out=...
            # degrades to the (trivially small) in-memory buffer.
            indices = np.empty(total, dtype=np.int64)

        # Pass 2: scatter each chunk's half-edges behind per-row cursors.
        # Within a chunk, repeats of the same row land at consecutive slots:
        # sort the chunk by row (stable), then rank-within-run is just
        # position minus the run's first position (searchsorted on itself).
        cursors = indptr[:-1].copy()
        seen = 0
        for us, vs in factory():
            us, vs = _coerce(us, vs)
            if us.size == 0:
                continue
            seen += us.size
            src = np.concatenate([us, vs])
            dst = np.concatenate([vs, us])
            order = np.argsort(src, kind="stable")
            src_sorted = src[order]
            first = np.searchsorted(src_sorted, src_sorted, side="left")
            pos = cursors[src_sorted] + (np.arange(src_sorted.size) - first)
            indices[pos] = dst[order]
            cursors += np.bincount(src, minlength=n)
        if seen != n_edges:
            raise ValueError(
                "edge stream yielded different edges on the second pass — "
                "pass a zero-argument callable (fresh iterator per pass), "
                "not a one-shot generator"
            )
        del cursors

        # Rows arrive in stream order; sort each ascending to match the
        # canonical from_edge_arrays layout (cheap: rows, not the edge list).
        for i in range(n):
            s, e = int(indptr[i]), int(indptr[i + 1])
            if e - s > 1:
                indices[s:e].sort()
        if total:
            dup = indices[1:] == indices[:-1]
            starts = indptr[1:-1]
            starts = starts[(starts > 0) & (starts < total)]
            dup[starts - 1] = False  # row boundaries are not duplicates
            if dup.any():
                raise ValueError("duplicate edges in edge stream")
        if isinstance(indices, np.memmap):
            indices.flush()
        return cls.from_buffers(indptr, indices, label_tuple)

    def export_buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw CSR buffers ``(indptr, indices)`` — zero-copy, read-only.

        These are the exact arrays the graph is built on (no copy), suitable
        for placement into shared memory (:class:`repro.parallel.shm.SharedArena`)
        and reconstruction with :meth:`from_buffers`.
        """
        return self.indptr, self.indices

    @classmethod
    def from_buffers(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Optional[Sequence[Vertex]] = None,
    ) -> "CSRGraph":
        """Rebuild a graph around existing CSR buffers **without copying them**.

        This is the attach-side counterpart of :meth:`export_buffers`: the
        result's ``indptr``/``indices`` are views pinned to the given arrays
        (``np.shares_memory`` holds), so a worker that maps a shared-memory
        segment pays zero copies.  Only O(1) shape/dtype consistency is
        checked — the buffers are trusted to describe a valid symmetric CSR
        (they came out of a validated graph); hand-built arrays should go
        through the validating constructor instead.  ``labels`` defaults to
        ``range(n)``, the index-native identity labelling.
        """
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        if (
            indptr.ndim != 1
            or indices.ndim != 1
            or indptr.dtype != np.int64
            or indices.dtype != np.int64
            or not indptr.flags.c_contiguous
            or not indices.flags.c_contiguous
        ):
            # Non-conforming buffers take the validating (copying) path.
            n = max(int(indptr.shape[0]) - 1, 0)
            return cls(indptr, indices, tuple(labels) if labels is not None else range(n))
        if indptr.shape[0] < 1 or int(indptr[0]) != 0 or int(indptr[-1]) != indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        n = int(indptr.shape[0]) - 1
        label_tuple = tuple(range(n)) if labels is None else tuple(labels)
        if len(label_tuple) != n:
            raise ValueError(f"labels must have length n = {n}, got {len(label_tuple)}")
        ip = indptr.view()
        ip.setflags(write=False)
        ix = indices.view()
        ix.setflags(write=False)
        csr = object.__new__(cls)
        object.__setattr__(csr, "indptr", ip)
        object.__setattr__(csr, "indices", ix)
        object.__setattr__(csr, "labels", label_tuple)
        object.__setattr__(csr, "_label_index", None)
        object.__setattr__(csr, "_packed", None)
        object.__setattr__(csr, "_rows", None)
        object.__setattr__(csr, "_row_sets", None)
        object.__setattr__(csr, "_edge_arr", None)
        return csr

    def to_graph(self) -> Graph:
        """Convert back to a :class:`Graph`.

        The result compares equal to the source graph (same vertex set,
        iteration order and edge set).  Edges are inserted in row-major order,
        so per-vertex *neighbour* order may differ from an arbitrarily
        interleaved construction sequence; edge attributes are not carried by
        the CSR form at all (re-attach them via ``Graph.spanning_subgraph`` on
        the original graph).
        """
        g = Graph(vertices=self.labels)
        indptr, indices, labels = self.indptr, self.indices, self.labels
        for i in range(self.n_vertices):
            for j in indices[indptr[i] : indptr[i + 1]]:
                if j > i:
                    g.add_edge(labels[i], labels[int(j)])
        return g

    # ------------------------------------------------------------------
    # label <-> index mapping
    # ------------------------------------------------------------------
    @property
    def label_index(self) -> dict:
        """Mapping label → vertex index (built lazily, then cached)."""
        idx = self._label_index
        if idx is None:
            idx = {v: i for i, v in enumerate(self.labels)}
            object.__setattr__(self, "_label_index", idx)
        return idx

    def index_of(self, label: Vertex) -> int:
        """Return the index of ``label``; raises ``KeyError`` when absent."""
        return self.label_index[label]

    def label_of(self, index: int) -> Vertex:
        """Return the label of vertex ``index``."""
        return self.labels[index]

    def to_indices(self, labels: Iterable[Vertex]) -> list[int]:
        """Map an iterable of labels to vertex indices."""
        idx = self.label_index
        return [idx[v] for v in labels]

    def to_labels(self, indices: Iterable[int]) -> list[Vertex]:
        """Map an iterable of vertex indices back to labels."""
        labels = self.labels
        return [labels[i] for i in indices]

    def __contains__(self, label: Vertex) -> bool:
        return label in self.label_index

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self.labels)

    @property
    def n_edges(self) -> int:
        return int(self.indices.shape[0]) // 2

    def degree(self, i: int) -> int:
        return int(self.indptr[i + 1] - self.indptr[i])

    def degrees(self) -> np.ndarray:
        """All vertex degrees as one vectorised ``int64`` array."""
        return np.diff(self.indptr)

    def degree_sum(self) -> int:
        """``sum(deg(v))`` = ``2 |E|`` (the chordality-check work counter)."""
        return int(self.indices.shape[0])

    def max_degree(self) -> int:
        if self.n_vertices == 0:
            return 0
        return int(self.degrees().max())

    def neighbors(self, i: int) -> np.ndarray:
        """Neighbours of vertex ``i`` as a read-only array view (row order)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def neighbor_lists(self) -> list[list[int]]:
        """All adjacency rows as plain Python ``list[int]`` (kernel-loop form).

        Built once and cached on the frozen graph, so chained kernels (MCS →
        PEO → DSW) share the rows.  Treat the result as read-only.
        """
        rows = self._rows
        if rows is None:
            indptr, indices = self.indptr, self.indices
            rows = [
                indices[indptr[i] : indptr[i + 1]].tolist() for i in range(self.n_vertices)
            ]
            object.__setattr__(self, "_rows", rows)
        return rows

    def neighbor_sets(self) -> list[set[int]]:
        """All adjacency rows as ``set[int]`` (O(1) membership; cached, read-only)."""
        sets = self._row_sets
        if sets is None:
            sets = [set(row) for row in self.neighbor_lists()]
            object.__setattr__(self, "_row_sets", sets)
        return sets

    @property
    def _packed_edges(self) -> np.ndarray:
        """Sorted array of ``u * n + v`` for every directed edge (lazy)."""
        packed = self._packed
        if packed is None:
            n = self.n_vertices
            rows = np.repeat(np.arange(n, dtype=np.int64), self.degrees())
            packed = np.sort(rows * n + self.indices)
            packed.setflags(write=False)
            object.__setattr__(self, "_packed", packed)
        return packed

    def has_edge(self, i: int, j: int) -> bool:
        """O(log E) membership test for the undirected edge ``{i, j}``."""
        n = self.n_vertices
        if not (0 <= i < n and 0 <= j < n):
            return False
        packed = self._packed_edges
        key = i * n + j
        pos = int(np.searchsorted(packed, key))
        return pos < packed.shape[0] and int(packed[pos]) == key

    def has_edges(self, us: Sequence[int], vs: Sequence[int]) -> np.ndarray:
        """Vectorised membership test: one bool per ``(us[k], vs[k])`` pair."""
        n = self.n_vertices
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("us and vs must have the same shape")
        packed = self._packed_edges
        keys = us * n + vs
        pos = np.searchsorted(packed, keys)
        valid = pos < packed.shape[0]
        out = np.zeros(keys.shape, dtype=bool)
        if packed.shape[0]:
            out[valid] = packed[pos[valid]] == keys[valid]
        in_range = (us >= 0) & (us < n) & (vs >= 0) & (vs < n)
        return out & in_range

    def edge_indices(self) -> Iterator[tuple[int, int]]:
        """Iterate every undirected edge once as ``(i, j)`` with row-major order.

        Each edge is reported from the endpoint whose row mentions it first,
        mirroring :meth:`Graph.iter_edges` determinism (but on indices).

        A CSR built from a simple :class:`Graph` stores every undirected edge
        in *both* endpoint rows, so in a row-major scan the first mention of
        ``{i, j}`` is always in the row of the smaller endpoint — the ``j > i``
        filter reports exactly the first mentions, no O(E) dedup set needed.
        (Hand-built non-symmetric ``indptr/indices`` break this invariant the
        same way they already break :attr:`n_edges`.)
        """
        indptr, indices = self.indptr, self.indices
        for i in range(self.n_vertices):
            for j in indices[indptr[i] : indptr[i + 1]]:
                if j > i:
                    yield (i, int(j))

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """All undirected edges as two aligned ``int64`` arrays ``(us, vs)``.

        Each edge appears exactly once with ``us[k] < vs[k]``, in the same
        order :meth:`edge_indices` yields (row-major by smaller endpoint).
        Built once and cached; treat the arrays as read-only.  Relies on the
        symmetric-CSR invariant described in :meth:`edge_indices`.
        """
        cached = self._edge_arr
        if cached is None:
            rows = np.repeat(np.arange(self.n_vertices, dtype=np.int64), self.degrees())
            mask = rows < self.indices
            cached = (rows[mask], self.indices[mask])
            cached[0].setflags(write=False)
            cached[1].setflags(write=False)
            object.__setattr__(self, "_edge_arr", cached)
        return cached

    def gather_rows(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate the neighbour rows of ``rows`` with one fancy index.

        Returns ``(neighbors, row_of)``: the neighbour indices of every listed
        row back to back, and for each entry the position (into ``rows``) of
        the row it came from.  This is the shared gather behind
        :meth:`induced_subgraph` slicing and frontier-expansion BFS loops.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        # out[t] comes from indices[starts[r] + offset-within-row].
        row_base = np.zeros(rows.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=row_base[1:])
        take = np.repeat(starts - row_base, counts) + np.arange(total, dtype=np.int64)
        row_of = np.repeat(np.arange(rows.shape[0], dtype=np.int64), counts)
        return self.indices[take], row_of

    def induced_subgraph(self, part_indices: Sequence[int]) -> "CSRGraph":
        """Slice the CSR arrays down to the subgraph induced by ``part_indices``.

        ``part_indices`` must be distinct, in-range vertex indices; the result
        renumbers them ``0 .. k-1`` *in the given order* and keeps each row's
        surviving neighbours in their original row order — exactly the CSR that
        ``CSRGraph.from_graph(graph.subgraph(...))`` would describe, but built
        by pure array slicing so per-rank code never rebuilds a :class:`Graph`
        and re-converts.
        """
        sub = np.ascontiguousarray(part_indices, dtype=np.int64)
        n = self.n_vertices
        k = int(sub.shape[0])
        if k and (sub.min() < 0 or sub.max() >= n):
            raise ValueError("part_indices contain out-of-range vertex ids")
        if np.unique(sub).shape[0] != k:
            raise ValueError("part_indices contain duplicates")
        new_id = np.full(n, -1, dtype=np.int64)
        new_id[sub] = np.arange(k, dtype=np.int64)
        neighbors, row_of = self.gather_rows(sub)
        if neighbors.size:
            mapped = new_id[neighbors]
            keep = mapped >= 0
            new_counts = np.bincount(row_of[keep], minlength=k)
            new_indices = mapped[keep]
        else:
            new_counts = np.zeros(k, dtype=np.int64)
            new_indices = np.empty(0, dtype=np.int64)
        new_indptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(new_counts, out=new_indptr[1:])
        labels = tuple(self.labels[int(i)] for i in sub)
        return CSRGraph(new_indptr, new_indices, labels)

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_vertices

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.labels == other.labels
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self.labels, self.indptr.tobytes(), self.indices.tobytes()))
