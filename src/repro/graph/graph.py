"""Core undirected graph data structure used throughout :mod:`repro`.

The paper's algorithms (maximal chordal subgraph extraction, random-walk
sampling, MCODE clustering) all operate on simple undirected graphs whose
vertices carry stable, hashable labels (gene identifiers).  The standard
library / networkx graphs are convenient but the sampling kernels need a
compact adjacency-set representation with

* deterministic iteration order (insertion order of vertices and neighbours),
  because the paper studies the effect of *vertex orderings* on the filter and
  reproducibility requires that iterating a graph twice yields the same order;
* cheap induced-subgraph and edge-subgraph construction (partitions, border
  edge sets, filtered networks);
* O(1) edge membership tests, used heavily by the chordality kernels.

:class:`Graph` implements exactly that.  It intentionally supports only simple
undirected graphs without self loops — parallel edges and self correlations
are meaningless in a gene correlation network.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any, Optional

__all__ = ["Graph", "edge_key"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def edge_key(u: Vertex, v: Vertex) -> Edge:
    """Return a canonical (order independent) key for the undirected edge ``{u, v}``.

    Endpoints that support ``<`` are ordered directly.  Mixed-type endpoints
    (e.g. an int and a string in the same graph) raise ``TypeError`` on ``<``,
    so a fallback total order is used instead.

    **Fallback contract.**  Incomparable endpoints are ordered by the tuple
    ``(type module, type qualname, repr)``.  This is canonical —
    ``edge_key(u, v) == edge_key(v, u)`` — whenever unequal endpoints differ
    in type or in ``repr``, which covers every mixed built-in type (the seed
    implementation compared ``repr`` alone, so two unequal vertices of
    *different* types whose reprs matched would silently produce two distinct
    keys for the same edge).  If unequal endpoints agree on all three
    components the edge has no canonical form and ``ValueError`` is raised
    rather than corrupting attribute lookups: give such vertex classes an
    ordering or a distinguishing ``repr``.

    >>> edge_key("b", "a")
    ('a', 'b')
    >>> edge_key(2, 1)
    (1, 2)
    >>> edge_key(1, "x") == edge_key("x", 1)
    True
    """
    if u == v:
        raise ValueError(f"self loop {u!r} has no canonical edge key")
    try:
        swap = v < u  # type: ignore[operator]
    except TypeError:
        ku = (type(u).__module__, type(u).__qualname__, repr(u))
        kv = (type(v).__module__, type(v).__qualname__, repr(v))
        if ku == kv:
            raise ValueError(
                f"vertices {u!r} and {v!r} are unequal but unorderable and "
                "indistinguishable by (type, repr); no canonical edge key exists"
            )
        swap = kv < ku
    return (v, u) if swap else (u, v)


class Graph:
    """A simple undirected graph with insertion-ordered adjacency sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs used to initialise the graph.
    vertices:
        Optional iterable of vertices added (in order) before the edges.

    Notes
    -----
    * Vertices are kept in insertion order; ``graph.vertices()`` therefore
      reflects the *natural order* of the network (the order genes appeared in
      the input data), which is one of the orderings studied by the paper.
    * Neighbour dictionaries preserve insertion order as well, so edge
      iteration is deterministic.
    * Edge attributes (e.g. correlation weight) are stored per canonical edge
      key and survive subgraph extraction.
    """

    __slots__ = ("_adj", "_edge_attrs", "_n_edges")

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        self._adj: dict[Vertex, dict[Vertex, None]] = {}
        self._edge_attrs: dict[Edge, dict[str, Any]] = {}
        self._n_edges = 0
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add ``v`` to the graph (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = {}

    def add_vertices(self, vs: Iterable[Vertex]) -> None:
        """Add every vertex in ``vs``."""
        for v in vs:
            self.add_vertex(v)

    def add_edge(self, u: Vertex, v: Vertex, **attrs: Any) -> None:
        """Add the undirected edge ``{u, v}``; endpoints are created if needed.

        Self loops are rejected.  Re-adding an existing edge merges the
        supplied attributes into the existing attribute dict.
        """
        if u == v:
            raise ValueError(f"self loops are not allowed: {u!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u][v] = None
            self._adj[v][u] = None
            self._n_edges += 1
        if attrs:
            self._edge_attrs.setdefault(edge_key(u, v), {}).update(attrs)

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``.  Raises ``KeyError`` if absent."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._edge_attrs.pop(edge_key(u, v), None)
        self._n_edges -= 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and every incident edge.  Raises ``KeyError`` if absent."""
        if v not in self._adj:
            raise KeyError(f"vertex {v!r} not in graph")
        for nbr in list(self._adj[v]):
            self.remove_edge(v, nbr)
        del self._adj[v]

    def discard_edge(self, u: Vertex, v: Vertex) -> bool:
        """Remove the edge if present; return ``True`` if something was removed."""
        if self.has_edge(u, v):
            self.remove_edge(u, v)
            return True
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, v: Vertex) -> list[Vertex]:
        """Return the neighbours of ``v`` in insertion order."""
        return list(self._adj[v])

    def neighbor_set(self, v: Vertex) -> set[Vertex]:
        """Return the neighbours of ``v`` as a set (copy)."""
        return set(self._adj[v])

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def degrees(self) -> dict[Vertex, int]:
        """Return a mapping vertex → degree for every vertex."""
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    def max_degree(self) -> int:
        """Return the maximum degree (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def vertices(self) -> list[Vertex]:
        """Return all vertices in insertion order."""
        return list(self._adj)

    def edges(self) -> list[Edge]:
        """Return every edge exactly once, as canonical keys, deterministically."""
        out: list[Edge] = []
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over canonical edges without materialising a list."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def edge_attr(self, u: Vertex, v: Vertex, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` of edge ``{u, v}`` or ``default``."""
        return self._edge_attrs.get(edge_key(u, v), {}).get(name, default)

    def set_edge_attr(self, u: Vertex, v: Vertex, name: str, value: Any) -> None:
        """Set attribute ``name`` on the existing edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._edge_attrs.setdefault(edge_key(u, v), {})[name] = value

    def edge_attrs(self, u: Vertex, v: Vertex) -> Mapping[str, Any]:
        """Return (a copy of) the attribute dict of edge ``{u, v}``."""
        return dict(self._edge_attrs.get(edge_key(u, v), {}))

    @property
    def n_vertices(self) -> int:
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def density(self) -> float:
        """Return ``2m / (n (n-1))`` — 0.0 for graphs with fewer than 2 vertices."""
        n = self.n_vertices
        if n < 2:
            return 0.0
        return 2.0 * self._n_edges / (n * (n - 1))

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Graph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        """Two graphs are equal when they have the same vertex and edge sets."""
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            set(self._adj) == set(other._adj)
            and set(self.iter_edges()) == set(other.iter_edges())
        )

    def __hash__(self) -> int:  # Graphs are mutable; identity hash like list would be None.
        raise TypeError("Graph objects are mutable and unhashable")

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return an independent copy preserving vertex order and edge attributes."""
        g = Graph()
        for v in self._adj:
            g.add_vertex(v)
        for u, v in self.iter_edges():
            g.add_edge(u, v)
        g._edge_attrs = {k: dict(v) for k, v in self._edge_attrs.items()}
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices`` (attributes preserved)."""
        keep = [v for v in vertices if v in self._adj]
        keep_set = set(keep)
        g = Graph()
        for v in keep:
            g.add_vertex(v)
        for v in keep:
            for nbr in self._adj[v]:
                if nbr in keep_set and not g.has_edge(v, nbr):
                    g.add_edge(v, nbr, **self._edge_attrs.get(edge_key(v, nbr), {}))
        return g

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Return the subgraph containing exactly ``edges`` (and their endpoints).

        Edges absent from the graph are ignored so that callers can pass a
        candidate set without filtering first.
        """
        g = Graph()
        for u, v in edges:
            if self.has_edge(u, v):
                g.add_edge(u, v, **self._edge_attrs.get(edge_key(u, v), {}))
        return g

    def spanning_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Like :meth:`edge_subgraph` but keeps *all* vertices of the original graph.

        Sampling filters remove edges, never vertices: an isolated gene is still
        part of the network even if every incident correlation was filtered
        out.  This constructor captures that convention.
        """
        g = Graph()
        for v in self._adj:
            g.add_vertex(v)
        for u, v in edges:
            if self.has_edge(u, v):
                g.add_edge(u, v, **self._edge_attrs.get(edge_key(u, v), {}))
        return g

    def relabeled(self, mapping: Mapping[Vertex, Vertex]) -> "Graph":
        """Return a copy with every vertex ``v`` renamed to ``mapping[v]``.

        Vertices missing from ``mapping`` keep their label.  The mapping must
        be injective on the vertex set.
        """
        new_labels = [mapping.get(v, v) for v in self._adj]
        if len(set(new_labels)) != len(new_labels):
            raise ValueError("relabeling mapping is not injective on the vertex set")
        g = Graph()
        for v, lab in zip(self._adj, new_labels):
            g.add_vertex(lab)
        for u, v in self.iter_edges():
            g.add_edge(
                mapping.get(u, u), mapping.get(v, v), **self._edge_attrs.get(edge_key(u, v), {})
            )
        return g

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (edge attributes preserved)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        for u, v in self.iter_edges():
            g.add_edge(u, v, **self._edge_attrs.get(edge_key(u, v), {}))
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Build a :class:`Graph` from a networkx graph (self loops dropped)."""
        g = cls()
        for v in nxg.nodes:
            g.add_vertex(v)
        for u, v, data in nxg.edges(data=True):
            if u == v:
                continue
            g.add_edge(u, v, **dict(data))
        return g

    @classmethod
    def from_edge_list(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        return cls(edges=edges)

    def adjacency_lists(self) -> dict[Vertex, list[Vertex]]:
        """Return a plain ``dict`` of adjacency lists (insertion order preserved)."""
        return {v: list(nbrs) for v, nbrs in self._adj.items()}
