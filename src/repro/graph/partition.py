"""Graph partitioning for the parallel samplers.

Both parallel algorithms in the paper begin by dividing the network into ``P``
partitions; each processor extracts a subgraph from the edges that lie
entirely inside its partition and then deals with the *border edges* whose
endpoints fall in different partitions.  The quality of the partition controls
how many border edges exist (and hence communication volume / duplicate work),
so the library ships several partitioners:

``block``
    contiguous slices of the vertex ordering — mirrors distributing a sorted
    gene list across MPI ranks, the strategy used by the authors;
``hash``
    vertices assigned by a deterministic hash — a worst-ish case with many
    border edges, useful to stress the border-edge machinery;
``bfs`` (level / geodesic growing)
    breadth-first layers accumulated until the target partition size is
    reached — keeps tightly connected genes together, few border edges;
``greedy_edge_cut``
    a lightweight linear-time greedy assignment that places each vertex in the
    partition where most of its already-placed neighbours live, subject to a
    balance cap (a simplified LDG / Fennel streaming partitioner).

All partitioners return a :class:`Partition` describing vertex→part
assignment, per-part vertex lists, the *internal* edges of every part and the
global list of border edges.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .csr import CSRGraph
from .graph import Graph, edge_key

__all__ = [
    "Partition",
    "block_partition",
    "hash_partition",
    "bfs_partition",
    "greedy_edge_cut_partition",
    "PARTITIONERS",
    "get_partitioner",
    "partition_graph",
    "IndexPartition",
    "block_partition_indices",
    "hash_partition_indices",
    "bfs_partition_indices",
    "greedy_partition_indices",
    "INDEX_PARTITIONERS",
    "index_partition_graph",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass
class Partition:
    """The result of dividing a graph into ``n_parts`` vertex-disjoint parts.

    Attributes
    ----------
    assignment:
        vertex → part index (0-based).
    parts:
        per-part vertex lists, preserving traversal order within each part.
    internal_edges:
        per-part list of edges whose endpoints both lie in that part.
    border_edges:
        edges whose endpoints lie in different parts, in canonical form.
    graph:
        the partitioned graph (kept for convenience; not copied).
    """

    assignment: dict[Vertex, int]
    parts: list[list[Vertex]]
    internal_edges: list[list[Edge]]
    border_edges: list[Edge]
    graph: Graph = field(repr=False)
    _border_by_part: Optional[list[list[Edge]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_parts(self) -> int:
        return len(self.parts)

    @property
    def n_border_edges(self) -> int:
        return len(self.border_edges)

    def part_of(self, v: Vertex) -> int:
        """Return the part index of ``v``."""
        return self.assignment[v]

    def part_subgraph(self, part: int) -> Graph:
        """Return the subgraph induced by part ``part`` (internal edges only)."""
        return self.graph.subgraph(self.parts[part])

    def border_edges_of(self, part: int) -> list[Edge]:
        """Return the border edges with at least one endpoint in ``part``.

        The per-part lists are built once (lazily) in a single pass over the
        border edges, so asking for every rank's border set — which the
        parallel samplers do on every run — costs O(B + P) in total instead
        of O(B · P).
        """
        cache = self._border_by_part
        if cache is None:
            cache = [[] for _ in range(self.n_parts)]
            assignment = self.assignment
            for u, v in self.border_edges:
                pu, pv = assignment[u], assignment[v]
                cache[pu].append((u, v))
                if pv != pu:
                    cache[pv].append((u, v))
            self._border_by_part = cache
        return list(cache[part])

    def edge_cut(self) -> int:
        """Return the number of border (cut) edges."""
        return len(self.border_edges)

    def balance(self) -> float:
        """Return max part size divided by the ideal part size (1.0 = perfect)."""
        if not self.parts or self.graph.n_vertices == 0:
            return 1.0
        ideal = self.graph.n_vertices / len(self.parts)
        return max(len(p) for p in self.parts) / ideal if ideal else 1.0

    def validate(self) -> None:
        """Raise ``ValueError`` if the partition is inconsistent with its graph."""
        seen: set[Vertex] = set()
        for idx, part in enumerate(self.parts):
            for v in part:
                if v in seen:
                    raise ValueError(f"vertex {v!r} appears in more than one part")
                if self.assignment.get(v) != idx:
                    raise ValueError(f"assignment of {v!r} disagrees with parts listing")
                seen.add(v)
        if seen != set(self.graph.vertices()):
            raise ValueError("partition does not cover the graph's vertex set exactly")
        for idx, edges in enumerate(self.internal_edges):
            for u, v in edges:
                if self.assignment[u] != idx or self.assignment[v] != idx:
                    raise ValueError(f"edge ({u!r},{v!r}) listed internal to part {idx} but crosses parts")
        for u, v in self.border_edges:
            if self.assignment[u] == self.assignment[v]:
                raise ValueError(f"edge ({u!r},{v!r}) listed as border but lies inside a part")
        n_internal = sum(len(e) for e in self.internal_edges)
        if n_internal + len(self.border_edges) != self.graph.n_edges:
            raise ValueError("internal + border edge counts do not add up to |E|")


def _classify_edges(graph: Graph, assignment: dict[Vertex, int], n_parts: int) -> tuple[list[list[Edge]], list[Edge]]:
    """Split the graph's edges into per-part internal lists and global border list."""
    internal: list[list[Edge]] = [[] for _ in range(n_parts)]
    border: list[Edge] = []
    # iter_edges already yields canonical keys; re-canonicalising here would
    # double the edge_key work on the largest loop of every partitioning.
    for u, v in graph.iter_edges():
        pu, pv = assignment[u], assignment[v]
        if pu == pv:
            internal[pu].append((u, v))
        else:
            border.append((u, v))
    return internal, border


def _build_partition(
    graph: Graph,
    assignment: dict[Vertex, int],
    n_parts: int,
    order: Optional[Sequence[Vertex]] = None,
) -> Partition:
    parts: list[list[Vertex]] = [[] for _ in range(n_parts)]
    for v in (order if order is not None else graph.vertices()):
        parts[assignment[v]].append(v)
    internal, border = _classify_edges(graph, assignment, n_parts)
    return Partition(
        assignment=assignment,
        parts=parts,
        internal_edges=internal,
        border_edges=border,
        graph=graph,
    )


def _check_n_parts(graph: object, n_parts: int) -> None:
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")


def _fnv1a(text: str, salt: int = 0) -> int:
    """Deterministic FNV-1a hash shared by the label and index hash partitioners."""
    h = 0xCBF29CE484222325 ^ (salt & 0xFFFFFFFF)
    for ch in text:
        h ^= ord(ch)
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def block_partition(
    graph: Graph, n_parts: int, order: Optional[Sequence[Vertex]] = None
) -> Partition:
    """Split the vertex ordering into ``n_parts`` contiguous, balanced blocks.

    ``order`` defaults to the graph's natural order.  Sizes differ by at most
    one vertex.
    """
    _check_n_parts(graph, n_parts)
    verts = list(order) if order is not None else graph.vertices()
    if set(verts) != set(graph.vertices()) or len(verts) != graph.n_vertices:
        raise ValueError("order must be a permutation of the graph's vertices")
    n = len(verts)
    assignment: dict[Vertex, int] = {}
    base, extra = divmod(n, n_parts) if n_parts else (0, 0)
    idx = 0
    for part in range(n_parts):
        size = base + (1 if part < extra else 0)
        for v in verts[idx : idx + size]:
            assignment[v] = part
        idx += size
    return _build_partition(graph, assignment, n_parts, order=verts)


def hash_partition(graph: Graph, n_parts: int, salt: int = 0) -> Partition:
    """Assign each vertex to ``hash(vertex) % n_parts`` using a stable string hash.

    Python's built-in ``hash`` is randomised per process for strings, so a
    deterministic FNV-1a hash over ``repr(vertex)`` is used instead; results
    are identical across runs and processes.
    """
    _check_n_parts(graph, n_parts)
    assignment = {v: _fnv1a(repr(v), salt) % n_parts for v in graph.vertices()}
    return _build_partition(graph, assignment, n_parts)


def bfs_partition(
    graph: Graph, n_parts: int, source: Optional[Vertex] = None
) -> Partition:
    """Grow parts by accumulating BFS layers until the target size is reached.

    Vertices unreachable from the current seed start a new BFS from the first
    unassigned vertex, so disconnected graphs are handled.  The resulting parts
    are contiguous in the BFS geodesic sense, which minimises border edges on
    networks with community structure.
    """
    _check_n_parts(graph, n_parts)
    n = graph.n_vertices
    if n == 0:
        return _build_partition(graph, {}, n_parts)
    target = max(1, -(-n // n_parts))  # ceil division
    assignment: dict[Vertex, int] = {}
    current_part = 0
    count_in_part = 0
    visited: set[Vertex] = set()
    start = source if source is not None and source in graph else graph.vertices()[0]
    pending = deque([start])
    natural_iter = iter(graph.vertices())

    def next_unvisited() -> Optional[Vertex]:
        for v in natural_iter:
            if v not in visited:
                return v
        return None

    while len(visited) < n:
        if not pending:
            nxt = next_unvisited()
            if nxt is None:
                break
            pending.append(nxt)
        u = pending.popleft()
        if u in visited:
            continue
        visited.add(u)
        if count_in_part >= target and current_part < n_parts - 1:
            current_part += 1
            count_in_part = 0
        assignment[u] = current_part
        count_in_part += 1
        for w in graph.neighbors(u):
            if w not in visited:
                pending.append(w)
    return _build_partition(graph, assignment, n_parts)


def greedy_edge_cut_partition(
    graph: Graph,
    n_parts: int,
    order: Optional[Sequence[Vertex]] = None,
    imbalance: float = 1.1,
) -> Partition:
    """Streaming greedy partitioner (linear deterministic greedy).

    Each vertex (in ``order``, default natural) is placed in the part that
    already holds the most of its neighbours, provided the part has not
    exceeded ``imbalance × ideal_size``; ties and full parts fall back to the
    lightest part.  This approximates an edge-cut-minimising partition without
    external dependencies.
    """
    _check_n_parts(graph, n_parts)
    if imbalance < 1.0:
        raise ValueError("imbalance factor must be >= 1.0")
    verts = list(order) if order is not None else graph.vertices()
    if set(verts) != set(graph.vertices()) or len(verts) != graph.n_vertices:
        raise ValueError("order must be a permutation of the graph's vertices")
    n = len(verts)
    cap = max(1, int(imbalance * -(-n // n_parts))) if n else 1
    sizes = [0] * n_parts
    assignment: dict[Vertex, int] = {}
    for v in verts:
        votes = [0] * n_parts
        for nbr in graph.neighbors(v):
            part = assignment.get(nbr)
            if part is not None:
                votes[part] += 1
        # candidate parts under the balance cap, best neighbour count first,
        # then lightest, then lowest index for determinism
        candidates = [p for p in range(n_parts) if sizes[p] < cap]
        if not candidates:
            candidates = list(range(n_parts))
        best = min(candidates, key=lambda p: (-votes[p], sizes[p], p))
        assignment[v] = best
        sizes[best] += 1
    return _build_partition(graph, assignment, n_parts)


PartitionerFn = Callable[..., Partition]

#: Registry of available partitioners keyed by name.
PARTITIONERS: dict[str, PartitionerFn] = {
    "block": block_partition,
    "hash": hash_partition,
    "bfs": bfs_partition,
    "greedy": greedy_edge_cut_partition,
}


def get_partitioner(name: str) -> PartitionerFn:
    """Return a partitioner function by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return PARTITIONERS[key]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {name!r}; valid names: {sorted(PARTITIONERS)}"
        ) from None


def partition_graph(graph: Graph, n_parts: int, method: str = "block", **kwargs) -> Partition:
    """Partition ``graph`` into ``n_parts`` parts using the named method."""
    return get_partitioner(method)(graph, n_parts, **kwargs)


# ======================================================================
# index-native partitioning (CSR in, numpy assignment out)
# ======================================================================
class IndexPartition:
    """An index-native partition of a :class:`~repro.graph.csr.CSRGraph`.

    The label-level :class:`Partition` materialises dicts and per-part edge
    lists; the parallel samplers only ever need *arrays*: a vertex→part
    ``assignment`` vector, per-part index arrays, and the border mask over
    the CSR edge list.  Everything here is vectorised numpy on the frozen
    CSR view; labels appear only in :meth:`to_partition` (reporting /
    back-compat boundary).

    Parameters
    ----------
    csr:
        The partitioned CSR view (kept, not copied).
    assignment:
        ``int64`` array of length ``n_vertices``; ``assignment[i]`` is the
        part of vertex ``i``.
    n_parts:
        Number of parts (``assignment`` values must lie in ``[0, n_parts)``).
    order:
        Optional traversal order (an index permutation); per-part index
        arrays list vertices in this sequence, mirroring how the label
        partitioners preserve traversal order inside each part.
    """

    __slots__ = ("csr", "assignment", "n_parts", "order", "_parts", "_edge_parts", "_border_mask")

    def __init__(
        self,
        csr: CSRGraph,
        assignment: np.ndarray,
        n_parts: int,
        order: Optional[np.ndarray] = None,
    ) -> None:
        assignment = np.ascontiguousarray(assignment, dtype=np.int64)
        if assignment.shape != (csr.n_vertices,):
            raise ValueError("assignment must have one entry per CSR vertex")
        if n_parts < 1:
            raise ValueError(f"n_parts must be >= 1, got {n_parts}")
        if assignment.size and (assignment.min() < 0 or assignment.max() >= n_parts):
            raise ValueError("assignment contains out-of-range part ids")
        self.csr = csr
        self.assignment = assignment
        self.n_parts = n_parts
        self.order = None if order is None else np.ascontiguousarray(order, dtype=np.int64)
        self._parts: Optional[list[np.ndarray]] = None
        self._edge_parts: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._border_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # vertex side
    # ------------------------------------------------------------------
    @property
    def parts(self) -> list[np.ndarray]:
        """Per-part vertex index arrays, preserving traversal order (lazy)."""
        parts = self._parts
        if parts is None:
            seq = self.order if self.order is not None else np.arange(
                self.csr.n_vertices, dtype=np.int64
            )
            by_part = self.assignment[seq]
            parts = [seq[by_part == p] for p in range(self.n_parts)]
            self._parts = parts
        return parts

    def part_indices(self, part: int) -> np.ndarray:
        """Vertex indices of part ``part`` in traversal order."""
        return self.parts[part]

    def flat_parts(self) -> tuple[np.ndarray, np.ndarray]:
        """All per-part vertex arrays concatenated, plus the part offsets.

        Part ``p`` spans ``flat[offsets[p]:offsets[p + 1]]`` — the
        slice-bounds form the shared-memory rank payloads ship instead of
        per-rank index arrays.
        """
        parts = self.parts
        sizes = np.asarray([p.shape[0] for p in parts], dtype=np.int64)
        offsets = np.zeros(self.n_parts + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        flat = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return flat, offsets

    def part_csr(self, part: int) -> CSRGraph:
        """CSR subgraph induced by part ``part`` (pure array slicing)."""
        return self.csr.induced_subgraph(self.part_indices(part))

    # ------------------------------------------------------------------
    # edge side
    # ------------------------------------------------------------------
    def _edges(self) -> tuple[np.ndarray, np.ndarray]:
        eu, ev = self.csr.edge_array()
        return eu, ev

    @property
    def border_mask(self) -> np.ndarray:
        """Boolean mask over :meth:`CSRGraph.edge_array`: ``True`` = border edge.

        One vectorised comparison of the endpoint assignments — the
        index-native replacement for the per-edge dict lookups of
        ``_classify_edges``.
        """
        mask = self._border_mask
        if mask is None:
            eu, ev = self._edges()
            mask = self.assignment[eu] != self.assignment[ev]
            self._border_mask = mask
        return mask

    def border_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Border edges as aligned index arrays ``(us, vs)`` with ``us < vs``."""
        eu, ev = self._edges()
        mask = self.border_mask
        return eu[mask], ev[mask]

    def internal_edges_of(self, part: int) -> tuple[np.ndarray, np.ndarray]:
        """Edges with both endpoints in ``part``, as aligned index arrays."""
        eu, ev = self._edges()
        mask = (self.assignment[eu] == part) & (self.assignment[ev] == part)
        return eu[mask], ev[mask]

    def border_edges_of(self, part: int) -> tuple[np.ndarray, np.ndarray]:
        """Border edges with at least one endpoint in ``part`` (aligned arrays)."""
        eu, ev = self._edges()
        mask = self.border_mask & (
            (self.assignment[eu] == part) | (self.assignment[ev] == part)
        )
        return eu[mask], ev[mask]

    @property
    def n_border_edges(self) -> int:
        return int(self.border_mask.sum())

    def edge_cut(self) -> int:
        """Return the number of border (cut) edges."""
        return self.n_border_edges

    def balance(self) -> float:
        """Return max part size divided by the ideal part size (1.0 = perfect)."""
        n = self.csr.n_vertices
        if n == 0:
            return 1.0
        ideal = n / self.n_parts
        counts = np.bincount(self.assignment, minlength=self.n_parts)
        return float(counts.max()) / ideal

    def validate(self) -> None:
        """Raise ``ValueError`` if the partition is inconsistent with its CSR."""
        counts = np.bincount(self.assignment, minlength=self.n_parts)
        if int(counts.sum()) != self.csr.n_vertices:
            raise ValueError("assignment does not cover the vertex set exactly")
        sizes = sum(p.shape[0] for p in self.parts)
        if sizes != self.csr.n_vertices:
            raise ValueError("per-part index arrays do not cover the vertex set exactly")
        n_internal = sum(
            self.internal_edges_of(p)[0].shape[0] for p in range(self.n_parts)
        )
        if n_internal + self.n_border_edges != self.csr.n_edges:
            raise ValueError("internal + border edge counts do not add up to |E|")

    # ------------------------------------------------------------------
    # label boundary
    # ------------------------------------------------------------------
    def to_partition(self, graph: Optional[Graph] = None) -> Partition:
        """Materialise the label-level :class:`Partition` view (boundary only).

        ``graph`` defaults to ``csr.to_graph()``; pass the original
        :class:`Graph` to keep edge attributes reachable from the result.
        """
        labels = self.csr.labels
        if graph is None:
            graph = self.csr.to_graph()
        assignment = {labels[i]: int(p) for i, p in enumerate(self.assignment)}
        parts = [[labels[int(i)] for i in idx] for idx in self.parts]
        internal = [
            [edge_key(labels[int(u)], labels[int(v)]) for u, v in zip(*self.internal_edges_of(p))]
            for p in range(self.n_parts)
        ]
        bu, bv = self.border_edges()
        border = [edge_key(labels[int(u)], labels[int(v)]) for u, v in zip(bu, bv)]
        return Partition(
            assignment=assignment,
            parts=parts,
            internal_edges=internal,
            border_edges=border,
            graph=graph,
        )

    @classmethod
    def from_partition(cls, partition: Partition, csr: CSRGraph) -> "IndexPartition":
        """Index view of a label-level :class:`Partition` over the same graph.

        Per-part traversal order is taken from ``partition.parts`` so the
        index pipeline processes vertices in the identical sequence.
        """
        index = csr.label_index
        assignment = np.full(csr.n_vertices, -1, dtype=np.int64)
        for v, p in partition.assignment.items():
            assignment[index[v]] = p
        if (assignment < 0).any():
            raise ValueError("partition does not cover every CSR vertex")
        ipart = cls(csr, assignment, partition.n_parts)
        ipart._parts = [
            np.asarray([index[v] for v in part], dtype=np.int64) for part in partition.parts
        ]
        return ipart

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"IndexPartition(n_vertices={self.csr.n_vertices}, "
            f"n_parts={self.n_parts}, border={self.n_border_edges})"
        )


def block_partition_indices(
    csr: CSRGraph, n_parts: int, order: Optional[np.ndarray] = None
) -> IndexPartition:
    """Index-native :func:`block_partition`: contiguous balanced blocks of ``order``."""
    _check_n_parts(csr, n_parts)
    n = csr.n_vertices
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.ascontiguousarray(order, dtype=np.int64)
        if order.shape[0] != n or np.unique(order).shape[0] != n:
            raise ValueError("order must be a permutation of the CSR vertex indices")
    base, extra = divmod(n, n_parts)
    sizes = np.full(n_parts, base, dtype=np.int64)
    sizes[:extra] += 1
    assignment = np.empty(n, dtype=np.int64)
    assignment[order] = np.repeat(np.arange(n_parts, dtype=np.int64), sizes)
    return IndexPartition(csr, assignment, n_parts, order=order)


def hash_partition_indices(csr: CSRGraph, n_parts: int, salt: int = 0) -> IndexPartition:
    """Index-native :func:`hash_partition` (same FNV-1a over label ``repr``)."""
    _check_n_parts(csr, n_parts)
    assignment = np.fromiter(
        (_fnv1a(repr(v), salt) % n_parts for v in csr.labels),
        dtype=np.int64,
        count=csr.n_vertices,
    )
    return IndexPartition(csr, assignment, n_parts)


def bfs_partition_indices(
    csr: CSRGraph, n_parts: int, source: Optional[int] = None
) -> IndexPartition:
    """Index-native :func:`bfs_partition`: BFS layers accumulated to target size.

    ``source`` is a vertex *index*.  The traversal, restart-at-next-natural
    vertex rule and part-advance rule replicate the label implementation
    exactly, so both produce the identical assignment.
    """
    _check_n_parts(csr, n_parts)
    n = csr.n_vertices
    assignment = np.zeros(n, dtype=np.int64)
    if n == 0:
        return IndexPartition(csr, assignment, n_parts)
    indptr, indices = csr.indptr, csr.indices
    target = max(1, -(-n // n_parts))  # ceil division
    visited = np.zeros(n, dtype=bool)
    current_part = 0
    count_in_part = 0
    n_visited = 0
    start = source if source is not None and 0 <= source < n else 0
    pending: deque[int] = deque([start])
    scan = 0  # persistent natural-order restart pointer
    while n_visited < n:
        if not pending:
            while scan < n and visited[scan]:
                scan += 1
            if scan == n:
                break
            pending.append(scan)
        u = pending.popleft()
        if visited[u]:
            continue
        visited[u] = True
        n_visited += 1
        if count_in_part >= target and current_part < n_parts - 1:
            current_part += 1
            count_in_part = 0
        assignment[u] = current_part
        count_in_part += 1
        row = indices[indptr[u] : indptr[u + 1]]
        pending.extend(row[~visited[row]].tolist())
    return IndexPartition(csr, assignment, n_parts)


def greedy_partition_indices(
    csr: CSRGraph,
    n_parts: int,
    order: Optional[np.ndarray] = None,
    imbalance: float = 1.1,
) -> IndexPartition:
    """Index-native :func:`greedy_edge_cut_partition` (LDG-style streaming)."""
    _check_n_parts(csr, n_parts)
    if imbalance < 1.0:
        raise ValueError("imbalance factor must be >= 1.0")
    n = csr.n_vertices
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.ascontiguousarray(order, dtype=np.int64)
        if order.shape[0] != n or np.unique(order).shape[0] != n:
            raise ValueError("order must be a permutation of the CSR vertex indices")
    indptr, indices = csr.indptr, csr.indices
    cap = max(1, int(imbalance * -(-n // n_parts))) if n else 1
    sizes = np.zeros(n_parts, dtype=np.int64)
    assignment = np.full(n, -1, dtype=np.int64)
    all_parts = np.arange(n_parts, dtype=np.int64)
    for v in order:
        row = indices[indptr[v] : indptr[v + 1]]
        placed = assignment[row]
        votes = np.bincount(placed[placed >= 0], minlength=n_parts)
        under = np.flatnonzero(sizes < cap)
        cand = under if under.size else all_parts
        # min by (-votes, size, part index): lexsort's last key is primary
        best = int(cand[np.lexsort((cand, sizes[cand], -votes[cand]))[0]])
        assignment[v] = best
        sizes[best] += 1
    # No order= here: the label reference builds its parts in natural order
    # even when streaming in a custom order, and the index view must mirror it.
    return IndexPartition(csr, assignment, n_parts)


IndexPartitionerFn = Callable[..., IndexPartition]

#: Index-native counterparts of :data:`PARTITIONERS`, keyed by the same names.
INDEX_PARTITIONERS: dict[str, IndexPartitionerFn] = {
    "block": block_partition_indices,
    "hash": hash_partition_indices,
    "bfs": bfs_partition_indices,
    "greedy": greedy_partition_indices,
}


def index_partition_graph(
    csr: CSRGraph, n_parts: int, method: str = "block", **kwargs
) -> IndexPartition:
    """Partition a CSR view into ``n_parts`` parts using the named method."""
    key = method.strip().lower()
    try:
        fn = INDEX_PARTITIONERS[key]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {method!r}; valid names: {sorted(INDEX_PARTITIONERS)}"
        ) from None
    return fn(csr, n_parts, **kwargs)
