"""Graph partitioning for the parallel samplers.

Both parallel algorithms in the paper begin by dividing the network into ``P``
partitions; each processor extracts a subgraph from the edges that lie
entirely inside its partition and then deals with the *border edges* whose
endpoints fall in different partitions.  The quality of the partition controls
how many border edges exist (and hence communication volume / duplicate work),
so the library ships several partitioners:

``block``
    contiguous slices of the vertex ordering — mirrors distributing a sorted
    gene list across MPI ranks, the strategy used by the authors;
``hash``
    vertices assigned by a deterministic hash — a worst-ish case with many
    border edges, useful to stress the border-edge machinery;
``bfs`` (level / geodesic growing)
    breadth-first layers accumulated until the target partition size is
    reached — keeps tightly connected genes together, few border edges;
``greedy_edge_cut``
    a lightweight linear-time greedy assignment that places each vertex in the
    partition where most of its already-placed neighbours live, subject to a
    balance cap (a simplified LDG / Fennel streaming partitioner).

All partitioners return a :class:`Partition` describing vertex→part
assignment, per-part vertex lists, the *internal* edges of every part and the
global list of border edges.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field
from typing import Callable, Optional

from .graph import Graph

__all__ = [
    "Partition",
    "block_partition",
    "hash_partition",
    "bfs_partition",
    "greedy_edge_cut_partition",
    "PARTITIONERS",
    "get_partitioner",
    "partition_graph",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass
class Partition:
    """The result of dividing a graph into ``n_parts`` vertex-disjoint parts.

    Attributes
    ----------
    assignment:
        vertex → part index (0-based).
    parts:
        per-part vertex lists, preserving traversal order within each part.
    internal_edges:
        per-part list of edges whose endpoints both lie in that part.
    border_edges:
        edges whose endpoints lie in different parts, in canonical form.
    graph:
        the partitioned graph (kept for convenience; not copied).
    """

    assignment: dict[Vertex, int]
    parts: list[list[Vertex]]
    internal_edges: list[list[Edge]]
    border_edges: list[Edge]
    graph: Graph = field(repr=False)
    _border_by_part: Optional[list[list[Edge]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_parts(self) -> int:
        return len(self.parts)

    @property
    def n_border_edges(self) -> int:
        return len(self.border_edges)

    def part_of(self, v: Vertex) -> int:
        """Return the part index of ``v``."""
        return self.assignment[v]

    def part_subgraph(self, part: int) -> Graph:
        """Return the subgraph induced by part ``part`` (internal edges only)."""
        return self.graph.subgraph(self.parts[part])

    def border_edges_of(self, part: int) -> list[Edge]:
        """Return the border edges with at least one endpoint in ``part``.

        The per-part lists are built once (lazily) in a single pass over the
        border edges, so asking for every rank's border set — which the
        parallel samplers do on every run — costs O(B + P) in total instead
        of O(B · P).
        """
        cache = self._border_by_part
        if cache is None:
            cache = [[] for _ in range(self.n_parts)]
            assignment = self.assignment
            for u, v in self.border_edges:
                pu, pv = assignment[u], assignment[v]
                cache[pu].append((u, v))
                if pv != pu:
                    cache[pv].append((u, v))
            self._border_by_part = cache
        return list(cache[part])

    def edge_cut(self) -> int:
        """Return the number of border (cut) edges."""
        return len(self.border_edges)

    def balance(self) -> float:
        """Return max part size divided by the ideal part size (1.0 = perfect)."""
        if not self.parts or self.graph.n_vertices == 0:
            return 1.0
        ideal = self.graph.n_vertices / len(self.parts)
        return max(len(p) for p in self.parts) / ideal if ideal else 1.0

    def validate(self) -> None:
        """Raise ``ValueError`` if the partition is inconsistent with its graph."""
        seen: set[Vertex] = set()
        for idx, part in enumerate(self.parts):
            for v in part:
                if v in seen:
                    raise ValueError(f"vertex {v!r} appears in more than one part")
                if self.assignment.get(v) != idx:
                    raise ValueError(f"assignment of {v!r} disagrees with parts listing")
                seen.add(v)
        if seen != set(self.graph.vertices()):
            raise ValueError("partition does not cover the graph's vertex set exactly")
        for idx, edges in enumerate(self.internal_edges):
            for u, v in edges:
                if self.assignment[u] != idx or self.assignment[v] != idx:
                    raise ValueError(f"edge ({u!r},{v!r}) listed internal to part {idx} but crosses parts")
        for u, v in self.border_edges:
            if self.assignment[u] == self.assignment[v]:
                raise ValueError(f"edge ({u!r},{v!r}) listed as border but lies inside a part")
        n_internal = sum(len(e) for e in self.internal_edges)
        if n_internal + len(self.border_edges) != self.graph.n_edges:
            raise ValueError("internal + border edge counts do not add up to |E|")


def _classify_edges(graph: Graph, assignment: dict[Vertex, int], n_parts: int) -> tuple[list[list[Edge]], list[Edge]]:
    """Split the graph's edges into per-part internal lists and global border list."""
    internal: list[list[Edge]] = [[] for _ in range(n_parts)]
    border: list[Edge] = []
    # iter_edges already yields canonical keys; re-canonicalising here would
    # double the edge_key work on the largest loop of every partitioning.
    for u, v in graph.iter_edges():
        pu, pv = assignment[u], assignment[v]
        if pu == pv:
            internal[pu].append((u, v))
        else:
            border.append((u, v))
    return internal, border


def _build_partition(
    graph: Graph,
    assignment: dict[Vertex, int],
    n_parts: int,
    order: Optional[Sequence[Vertex]] = None,
) -> Partition:
    parts: list[list[Vertex]] = [[] for _ in range(n_parts)]
    for v in (order if order is not None else graph.vertices()):
        parts[assignment[v]].append(v)
    internal, border = _classify_edges(graph, assignment, n_parts)
    return Partition(
        assignment=assignment,
        parts=parts,
        internal_edges=internal,
        border_edges=border,
        graph=graph,
    )


def _check_n_parts(graph: Graph, n_parts: int) -> None:
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")


def block_partition(
    graph: Graph, n_parts: int, order: Optional[Sequence[Vertex]] = None
) -> Partition:
    """Split the vertex ordering into ``n_parts`` contiguous, balanced blocks.

    ``order`` defaults to the graph's natural order.  Sizes differ by at most
    one vertex.
    """
    _check_n_parts(graph, n_parts)
    verts = list(order) if order is not None else graph.vertices()
    if set(verts) != set(graph.vertices()) or len(verts) != graph.n_vertices:
        raise ValueError("order must be a permutation of the graph's vertices")
    n = len(verts)
    assignment: dict[Vertex, int] = {}
    base, extra = divmod(n, n_parts) if n_parts else (0, 0)
    idx = 0
    for part in range(n_parts):
        size = base + (1 if part < extra else 0)
        for v in verts[idx : idx + size]:
            assignment[v] = part
        idx += size
    return _build_partition(graph, assignment, n_parts, order=verts)


def hash_partition(graph: Graph, n_parts: int, salt: int = 0) -> Partition:
    """Assign each vertex to ``hash(vertex) % n_parts`` using a stable string hash.

    Python's built-in ``hash`` is randomised per process for strings, so a
    deterministic FNV-1a hash over ``repr(vertex)`` is used instead; results
    are identical across runs and processes.
    """
    _check_n_parts(graph, n_parts)

    def fnv1a(text: str) -> int:
        h = 0xCBF29CE484222325 ^ (salt & 0xFFFFFFFF)
        for ch in text:
            h ^= ord(ch)
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h

    assignment = {v: fnv1a(repr(v)) % n_parts for v in graph.vertices()}
    return _build_partition(graph, assignment, n_parts)


def bfs_partition(
    graph: Graph, n_parts: int, source: Optional[Vertex] = None
) -> Partition:
    """Grow parts by accumulating BFS layers until the target size is reached.

    Vertices unreachable from the current seed start a new BFS from the first
    unassigned vertex, so disconnected graphs are handled.  The resulting parts
    are contiguous in the BFS geodesic sense, which minimises border edges on
    networks with community structure.
    """
    _check_n_parts(graph, n_parts)
    n = graph.n_vertices
    if n == 0:
        return _build_partition(graph, {}, n_parts)
    target = max(1, -(-n // n_parts))  # ceil division
    assignment: dict[Vertex, int] = {}
    current_part = 0
    count_in_part = 0
    visited: set[Vertex] = set()
    start = source if source is not None and source in graph else graph.vertices()[0]
    pending = deque([start])
    natural_iter = iter(graph.vertices())

    def next_unvisited() -> Optional[Vertex]:
        for v in natural_iter:
            if v not in visited:
                return v
        return None

    while len(visited) < n:
        if not pending:
            nxt = next_unvisited()
            if nxt is None:
                break
            pending.append(nxt)
        u = pending.popleft()
        if u in visited:
            continue
        visited.add(u)
        if count_in_part >= target and current_part < n_parts - 1:
            current_part += 1
            count_in_part = 0
        assignment[u] = current_part
        count_in_part += 1
        for w in graph.neighbors(u):
            if w not in visited:
                pending.append(w)
    return _build_partition(graph, assignment, n_parts)


def greedy_edge_cut_partition(
    graph: Graph,
    n_parts: int,
    order: Optional[Sequence[Vertex]] = None,
    imbalance: float = 1.1,
) -> Partition:
    """Streaming greedy partitioner (linear deterministic greedy).

    Each vertex (in ``order``, default natural) is placed in the part that
    already holds the most of its neighbours, provided the part has not
    exceeded ``imbalance × ideal_size``; ties and full parts fall back to the
    lightest part.  This approximates an edge-cut-minimising partition without
    external dependencies.
    """
    _check_n_parts(graph, n_parts)
    if imbalance < 1.0:
        raise ValueError("imbalance factor must be >= 1.0")
    verts = list(order) if order is not None else graph.vertices()
    if set(verts) != set(graph.vertices()) or len(verts) != graph.n_vertices:
        raise ValueError("order must be a permutation of the graph's vertices")
    n = len(verts)
    cap = max(1, int(imbalance * -(-n // n_parts))) if n else 1
    sizes = [0] * n_parts
    assignment: dict[Vertex, int] = {}
    for v in verts:
        votes = [0] * n_parts
        for nbr in graph.neighbors(v):
            part = assignment.get(nbr)
            if part is not None:
                votes[part] += 1
        # candidate parts under the balance cap, best neighbour count first,
        # then lightest, then lowest index for determinism
        candidates = [p for p in range(n_parts) if sizes[p] < cap]
        if not candidates:
            candidates = list(range(n_parts))
        best = min(candidates, key=lambda p: (-votes[p], sizes[p], p))
        assignment[v] = best
        sizes[best] += 1
    return _build_partition(graph, assignment, n_parts)


PartitionerFn = Callable[..., Partition]

#: Registry of available partitioners keyed by name.
PARTITIONERS: dict[str, PartitionerFn] = {
    "block": block_partition,
    "hash": hash_partition,
    "bfs": bfs_partition,
    "greedy": greedy_edge_cut_partition,
}


def get_partitioner(name: str) -> PartitionerFn:
    """Return a partitioner function by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return PARTITIONERS[key]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {name!r}; valid names: {sorted(PARTITIONERS)}"
        ) from None


def partition_graph(graph: Graph, n_parts: int, method: str = "block", **kwargs) -> Partition:
    """Partition ``graph`` into ``n_parts`` parts using the named method."""
    return get_partitioner(method)(graph, n_parts, **kwargs)
