"""Vertex centrality measures.

The paper's background section motivates the biological reading of network
structure: "nodes with a high degree tend to represent essential genes …
previous studies have identified high centrality nodes (degree, betweenness,
closeness and their combinations) to relate to node essentiality".  The
repository therefore provides the three classic centralities so the benchmark
harness can check how well each sampling filter preserves the identity of the
central (hub) genes — an ablation the structural-sampling literature uses and
the adaptive filter is not optimised for.

All functions operate on unweighted, undirected :class:`repro.graph.Graph`
instances and return plain ``dict`` objects keyed by vertex.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from typing import Optional

from .graph import Graph

__all__ = [
    "degree_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "top_k_vertices",
    "hub_retention",
    "centrality_spearman",
]

Vertex = Hashable


def degree_centrality(graph: Graph) -> dict[Vertex, float]:
    """Return degree / (n − 1) for every vertex (0.0 for graphs with < 2 vertices)."""
    n = graph.n_vertices
    if n < 2:
        return {v: 0.0 for v in graph.vertices()}
    return {v: graph.degree(v) / (n - 1) for v in graph.vertices()}


def closeness_centrality(graph: Graph, wf_improved: bool = True) -> dict[Vertex, float]:
    """Return closeness centrality for every vertex.

    Uses the Wasserman–Faust correction by default so vertices in small
    components are not over-rewarded: ``C(v) = ((r−1)/(n−1)) · ((r−1)/Σd)``
    where ``r`` is the size of ``v``'s component and ``Σd`` the sum of
    distances within it.  Isolated vertices score 0.
    """
    n = graph.n_vertices
    out: dict[Vertex, float] = {}
    for v in graph.vertices():
        dist = _bfs_distances(graph, v)
        total = sum(dist.values())
        reachable = len(dist)  # includes v itself at distance 0
        if total == 0 or reachable <= 1 or n <= 1:
            out[v] = 0.0
            continue
        closeness = (reachable - 1) / total
        if wf_improved:
            closeness *= (reachable - 1) / (n - 1)
        out[v] = closeness
    return out


def _bfs_distances(graph: Graph, source: Vertex) -> dict[Vertex, int]:
    dist = {source: 0}
    queue: deque[Vertex] = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist


def betweenness_centrality(graph: Graph, normalized: bool = True) -> dict[Vertex, float]:
    """Return shortest-path betweenness centrality (Brandes' algorithm).

    Endpoint pairs are not counted.  With ``normalized`` the values are divided
    by ``(n−1)(n−2)/2`` — the number of vertex pairs that could route through a
    vertex — so scores are comparable across graphs of different size.
    """
    betweenness: dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
    for s in graph.vertices():
        # single-source shortest-path DAG
        stack: list[Vertex] = []
        predecessors: dict[Vertex, list[Vertex]] = {v: [] for v in graph.vertices()}
        sigma: dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
        sigma[s] = 1.0
        dist: dict[Vertex, int] = {s: 0}
        queue: deque[Vertex] = deque([s])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in graph.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        # accumulation
        delta: dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != s:
                betweenness[w] += delta[w]
        # each undirected pair counted twice (once per endpoint as source)
    n = graph.n_vertices
    scale = 0.5
    if normalized and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))
    return {v: b * scale for v, b in betweenness.items()}


def top_k_vertices(centrality: dict[Vertex, float], k: int) -> list[Vertex]:
    """Return the ``k`` highest-scoring vertices (ties broken by label for determinism)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ranked = sorted(centrality.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [v for v, _ in ranked[:k]]


def hub_retention(
    original: Graph,
    sampled: Graph,
    k: int = 20,
    measure: str = "degree",
) -> float:
    """Fraction of the original network's top-``k`` central vertices that remain
    among the sampled network's top-``k``.

    ``measure`` is one of ``degree``, ``closeness``, ``betweenness``.  This is
    the "are the essential genes still recognisable as hubs after filtering?"
    question raised by the paper's background section.
    """
    fns = {
        "degree": degree_centrality,
        "closeness": closeness_centrality,
        "betweenness": betweenness_centrality,
    }
    if measure not in fns:
        raise KeyError(f"unknown centrality measure {measure!r}; valid: {sorted(fns)}")
    if k <= 0:
        raise ValueError("k must be positive")
    fn = fns[measure]
    top_original = set(top_k_vertices(fn(original), k))
    top_sampled = set(top_k_vertices(fn(sampled), k))
    if not top_original:
        return 1.0
    return len(top_original & top_sampled) / len(top_original)


def centrality_spearman(
    original: Graph,
    sampled: Graph,
    measure: str = "degree",
    vertices: Optional[Sequence[Vertex]] = None,
) -> float:
    """Spearman rank correlation between a centrality in the original and sampled graphs.

    Computed over ``vertices`` (default: the original graph's vertex set, with
    missing vertices in the sample scored 0).  Returns 0.0 when either ranking
    is constant.
    """
    from scipy import stats

    fns = {
        "degree": degree_centrality,
        "closeness": closeness_centrality,
        "betweenness": betweenness_centrality,
    }
    if measure not in fns:
        raise KeyError(f"unknown centrality measure {measure!r}; valid: {sorted(fns)}")
    fn = fns[measure]
    verts = list(vertices) if vertices is not None else original.vertices()
    c_orig = fn(original)
    c_samp = fn(sampled)
    x = [c_orig.get(v, 0.0) for v in verts]
    y = [c_samp.get(v, 0.0) for v in verts]
    if len(set(x)) < 2 or len(set(y)) < 2:
        return 0.0
    rho, _ = stats.spearmanr(x, y)
    return float(rho) if rho == rho else 0.0  # NaN guard
