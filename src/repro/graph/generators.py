"""Synthetic graph generators.

Used for tests, property-based checks and — most importantly — for building
correlation-network-like workloads: graphs with a handful of dense planted
modules (the "biologically real" clusters), a scale-free-ish noisy background
and a sprinkling of random noise edges that create long cycles.  The
benchmark harness uses :func:`correlation_like_graph` when a full microarray
simulation is not needed.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
import numpy as np

from .graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "planted_partition_graph",
    "correlation_like_graph",
    "random_tree",
    "ring_chord_edge_stream",
]

Vertex = Hashable


def path_graph(n: int, prefix: str = "v") -> Graph:
    """Return a path on ``n`` vertices labelled ``{prefix}0 … {prefix}{n-1}``."""
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n)])
    for i in range(n - 1):
        g.add_edge(f"{prefix}{i}", f"{prefix}{i + 1}")
    return g


def cycle_graph(n: int, prefix: str = "v") -> Graph:
    """Return a cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    g = path_graph(n, prefix)
    g.add_edge(f"{prefix}{n - 1}", f"{prefix}0")
    return g


def complete_graph(n: int, prefix: str = "v") -> Graph:
    """Return the complete graph K_n."""
    labels = [f"{prefix}{i}" for i in range(n)]
    g = Graph(vertices=labels)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(labels[i], labels[j])
    return g


def star_graph(n_leaves: int, prefix: str = "v") -> Graph:
    """Return a star with one hub (``{prefix}0``) and ``n_leaves`` leaves."""
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n_leaves + 1)])
    for i in range(1, n_leaves + 1):
        g.add_edge(f"{prefix}0", f"{prefix}{i}")
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """Return a ``rows × cols`` grid graph with tuple-labelled vertices."""
    g = Graph(vertices=[(r, c) for r in range(rows) for c in range(cols)])
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def random_tree(n: int, seed: int = 0, prefix: str = "v") -> Graph:
    """Return a uniformly random labelled tree on ``n`` vertices (Prüfer-free attach)."""
    rng = np.random.default_rng(seed)
    labels = [f"{prefix}{i}" for i in range(n)]
    g = Graph(vertices=labels)
    for i in range(1, n):
        j = int(rng.integers(0, i))
        g.add_edge(labels[i], labels[j])
    return g


def erdos_renyi_graph(n: int, p: float, seed: int = 0, prefix: str = "v") -> Graph:
    """Return a G(n, p) random graph with deterministic seeding."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    labels = [f"{prefix}{i}" for i in range(n)]
    g = Graph(vertices=labels)
    if n < 2 or p == 0.0:
        return g
    # vectorised upper-triangle sampling
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    for i, j in zip(iu[mask], ju[mask]):
        g.add_edge(labels[int(i)], labels[int(j)])
    return g


def barabasi_albert_graph(n: int, m: int, seed: int = 0, prefix: str = "v") -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``m`` existing vertices chosen with
    probability proportional to degree (sampled without replacement from the
    repeated-endpoint urn).  Correlation networks are approximately scale free,
    so this generator provides a realistic noisy background topology.
    """
    if m < 1 or n <= m:
        raise ValueError("need n > m >= 1")
    rng = np.random.default_rng(seed)
    labels = [f"{prefix}{i}" for i in range(n)]
    g = Graph(vertices=labels[: m + 1])
    # start from a star on m+1 vertices so every vertex has degree >= 1
    for i in range(1, m + 1):
        g.add_edge(labels[0], labels[i])
    urn: list[int] = []
    for i in range(m + 1):
        urn.extend([i] * g.degree(labels[i]))
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(urn[int(rng.integers(0, len(urn)))]))
        g.add_vertex(labels[new])
        for t in targets:
            g.add_edge(labels[new], labels[t])
            urn.append(t)
        urn.extend([new] * m)
    return g


def planted_partition_graph(
    module_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
    prefix: str = "g",
) -> Graph:
    """Return a planted-partition graph with dense modules and sparse inter-module noise.

    ``module_sizes[k]`` vertices form module ``k``; edges inside a module
    appear with probability ``p_in`` and edges between modules with
    probability ``p_out``.  Vertex labels are ``{prefix}{index}`` and each
    vertex carries its module index retrievable via the returned graph's
    vertex order (modules are laid out contiguously).
    """
    if not 0.0 <= p_out <= p_in <= 1.0:
        raise ValueError("expect 0 <= p_out <= p_in <= 1")
    rng = np.random.default_rng(seed)
    n = int(sum(module_sizes))
    labels = [f"{prefix}{i}" for i in range(n)]
    module_of = np.empty(n, dtype=int)
    start = 0
    for k, size in enumerate(module_sizes):
        module_of[start : start + size] = k
        start += size
    g = Graph(vertices=labels)
    iu, ju = np.triu_indices(n, k=1)
    same = module_of[iu] == module_of[ju]
    probs = np.where(same, p_in, p_out)
    mask = rng.random(iu.shape[0]) < probs
    for i, j in zip(iu[mask], ju[mask]):
        g.add_edge(labels[int(i)], labels[int(j)])
    return g


def correlation_like_graph(
    n_modules: int = 6,
    module_size: int = 12,
    n_background: int = 120,
    p_in: float = 0.75,
    p_noise: float = 0.01,
    background_attachment: int = 1,
    seed: int = 0,
    prefix: str = "gene",
) -> Graph:
    """Return a graph shaped like a thresholded gene correlation network.

    The construction mirrors what the paper's real networks look like after the
    0.95 correlation threshold: a sparse overall graph (average degree ~2-3)
    containing a few dense modules (cliques / near cliques — the real
    co-expression clusters), a large scale-free-ish periphery of low-degree
    genes, and a small fraction of random noise edges that connect arbitrary
    genes and create long cycles.

    Parameters
    ----------
    n_modules, module_size, p_in:
        number/size/internal density of planted modules.
    n_background:
        number of background genes attached preferentially (low degree).
    p_noise:
        probability of a noise edge between any pair of vertices (kept tiny).
    background_attachment:
        number of attachment edges per background gene.
    """
    rng = np.random.default_rng(seed)
    g = Graph()
    module_members: list[list[str]] = []
    idx = 0
    for m in range(n_modules):
        members = [f"{prefix}{idx + i}" for i in range(module_size)]
        idx += module_size
        module_members.append(members)
        for v in members:
            g.add_vertex(v)
        for i in range(module_size):
            for j in range(i + 1, module_size):
                if rng.random() < p_in:
                    g.add_edge(members[i], members[j])
    # background periphery: preferential attachment onto the existing graph
    existing = g.vertices()
    degrees = np.array([max(g.degree(v), 1) for v in existing], dtype=float)
    for b in range(n_background):
        v = f"{prefix}{idx}"
        idx += 1
        g.add_vertex(v)
        probs = degrees / degrees.sum()
        choices = rng.choice(len(existing), size=min(background_attachment, len(existing)), replace=False, p=probs)
        for c in choices:
            g.add_edge(v, existing[int(c)])
            degrees[int(c)] += 1.0
        existing.append(v)
        degrees = np.append(degrees, float(background_attachment))
    # noise edges: uniform random pairs
    all_vertices = g.vertices()
    n = len(all_vertices)
    n_noise = int(p_noise * n * (n - 1) / 2)
    for _ in range(n_noise):
        i, j = rng.integers(0, n, size=2)
        if i != j:
            g.add_edge(all_vertices[int(i)], all_vertices[int(j)])
    return g


def ring_chord_edge_stream(n: int, seed: int = 0, chunk: int = 65536):
    """Return a re-runnable chunked edge stream for a ring-plus-chords graph.

    The ``huge``-scale workload generator: the in-RAM generators above build
    a :class:`Graph` edge by edge in Python and fall over two orders of
    magnitude before the scale-out tier's targets, so the huge scale is
    defined directly as an **edge stream** consumable by
    :meth:`~repro.graph.csr.CSRGraph.from_edge_stream`.  The topology is a
    cycle ``i — (i+1) mod n`` (connectivity, long cycles) plus one seeded
    chord per vertex ``i — (i + h_i) mod n`` with gap ``h_i ∈ [2, n/2)``
    (cheap local density, average degree 4).  Because every chord's gap is
    below ``n/2``, each chord has a unique short orientation — no chord can
    collide with another chord, a ring edge, or itself, so the stream is
    duplicate- and self-loop-free *by construction* and never needs a global
    uniqueness table.

    Returns a zero-argument callable yielding ``(us, vs)`` ``int64`` chunk
    pairs, deterministic in ``seed`` — the two-pass streaming build can
    re-run it, and equal seeds give bit-identical graphs.  Peak memory per
    chunk is ``O(chunk)``.
    """
    if n < 5:
        raise ValueError("ring_chord_edge_stream needs n >= 5 (gap range [2, n/2) must be non-empty)")

    def chunks():
        rng = np.random.default_rng(seed)
        for start in range(0, n, chunk):
            i = np.arange(start, min(start + chunk, n), dtype=np.int64)
            ring_v = (i + 1) % n
            gaps = rng.integers(2, max(3, n // 2), size=i.size, dtype=np.int64)
            chord_v = (i + gaps) % n
            yield np.concatenate([i, i]), np.concatenate([ring_v, chord_v])

    return chunks
